//! # ultravc — ultra-deep low-frequency variant calling, accelerated
//!
//! Facade crate re-exporting the whole `ultravc` workspace: a from-scratch
//! Rust reproduction of *"Accelerating SARS-CoV-2 low frequency variant
//! calling on ultra deep sequencing datasets"* (Kille et al., 2021).
//!
//! Start with [`core`] for the variant caller (the paper's contribution) and
//! [`readsim`] to generate the ultra-deep synthetic datasets the evaluation
//! runs on. See the repository `README.md` for a guided tour and
//! `DESIGN.md` for the full system inventory.
//!
//! ```
//! use ultravc::prelude::*;
//!
//! // Simulate a tiny ultra-deep dataset and call variants with the
//! // approximation-accelerated caller.
//! let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 7);
//! let dataset = DatasetSpec::new("demo", 400, 42).simulate(&reference);
//! let config = CallerConfig::default();
//! let calls = call_variants(&reference, &dataset.alignments, &config).unwrap();
//! // Spiked truth variants at ≥ 1% frequency are recovered.
//! assert!(!calls.records.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use ultravc_bamlite as bamlite;
pub use ultravc_cachesim as cachesim;
pub use ultravc_core as core;
pub use ultravc_genome as genome;
pub use ultravc_parfor as parfor;
pub use ultravc_pileup as pileup;
pub use ultravc_readsim as readsim;
pub use ultravc_serve as serve;
pub use ultravc_simd as simd;
pub use ultravc_stats as stats;
pub use ultravc_trace as trace;
pub use ultravc_vcf as vcf;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use ultravc_core::analysis::{grade, UpsetTable};
    pub use ultravc_core::caller::{call_variants, CallSet, CallStats};
    pub use ultravc_core::config::{Bonferroni, CallerConfig, PvalueEngine, ShortcutParams};
    pub use ultravc_core::driver::{
        CallDriver, CallOutcome, ParallelMode, PrefetchMode, ResolvedPrefetch,
    };
    pub use ultravc_core::session::CallSession;
    pub use ultravc_core::supervisor::{
        CancelToken, Interrupt, RegionError, RegionFailure, RunBudget,
    };
    pub use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
    pub use ultravc_parfor::Schedule;
    pub use ultravc_readsim::dataset::{paper_tiers, shared_truth_sets, Dataset, DatasetSpec};
    pub use ultravc_serve::{SampleSpec, ServeConfig, Server};
    pub use ultravc_stats::{PoissonBinomial, Rng};
    pub use ultravc_vcf::{write_vcf, FilterParams, VcfRecord, VcfWriter};
}
