//! Intra-host diversity survey: the paper's motivating workload.
//!
//! Five samples of one patient-like population are sequenced at the
//! paper's five depth tiers (scaled); each carries a shared variant core,
//! a partially-shared pool, and private mutations. The example calls all
//! five, grades sensitivity per tier, and prints the cross-sample upset
//! analysis — i.e. it reruns the science of the paper's §III.C on
//! synthetic data.
//!
//! ```sh
//! cargo run --release --example intrahost_diversity
//! ```

use ultravc::prelude::*;

fn main() {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(3_000), 33);
    // Shared structure: 2 core variants (every sample), a 60-variant pool
    // joined with probability 1/2, 30 private variants each.
    let truths = shared_truth_sets(
        &reference,
        5,
        2,
        60,
        0.5,
        30,
        (0.0004, 0.04),
        (0.08, 0.25),
        0xD1CE,
    );

    let tiers = [1_000.0f64, 30_000.0, 100_000.0, 300_000.0, 1_000_000.0];
    let scale = 0.05; // keep the example under ~20 s
    let mut names = Vec::new();
    let mut call_sets = Vec::new();
    println!("tier       depth(sim)  planted  called  sensitivity");
    for (tier, truth) in tiers.iter().zip(truths) {
        let depth = (tier * scale).max(10.0);
        let ds = DatasetSpec::new(format!("{tier}x"), depth, 0xD1CE + *tier as u64)
            .with_truth(truth)
            .simulate(&reference);
        let out = CallDriver::sequential()
            .run(&reference, &ds.alignments)
            .expect("simulated data is well-formed");
        let g = grade(&out.records, &ds.truth);
        println!(
            "{:>9}x {:>10} {:>8} {:>7} {:>11.0}%",
            *tier as u64,
            depth as u64,
            ds.truth.len(),
            out.records.len(),
            g.sensitivity() * 100.0
        );
        names.push(format!("{}x", *tier as u64));
        call_sets.push(out.records);
    }

    let upset = UpsetTable::from_call_sets(names, &call_sets);
    println!("\n{}", upset.render_text());
    println!(
        "SNVs found in every sample: {} (the paper found exactly 2)",
        upset.shared_by_all()
    );
}
