//! Quickstart: simulate an ultra-deep sample, call low-frequency variants
//! with the approximation-accelerated caller, and check the paper's safety
//! invariant (improved ≡ original call set).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ultravc::prelude::*;

fn main() {
    // 1. A SARS-CoV-2-shaped reference (full 29 903 bp takes a moment at
    //    high depth; a 2 kb slice keeps the example instant).
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(2_000), 7);
    println!(
        "reference: {} ({} bp, GC {:.1}%)",
        reference.name,
        reference.len(),
        reference.seq.gc_content() * 100.0
    );

    // 2. Simulate a 5 000× dataset with a dozen low-frequency variants
    //    (0.5–5 % allele frequency) and quality-calibrated errors.
    let dataset = DatasetSpec::new("quickstart", 5_000.0, 42).simulate(&reference);
    println!(
        "simulated {} reads ({} planted variants, {} BAL bytes)",
        dataset.alignments.n_records(),
        dataset.truth.len(),
        dataset.alignments.source().len()
    );

    // 3. Call with the improved caller (Poisson screen + exact fallback)…
    let improved = call_variants(&reference, &dataset.alignments, &CallerConfig::improved())
        .expect("simulated data is well-formed");
    // …and with original LoFreq behaviour (exact everywhere).
    let original = call_variants(&reference, &dataset.alignments, &CallerConfig::original())
        .expect("simulated data is well-formed");

    // 4. The paper's headline safety result: identical call sets, with the
    //    overwhelming majority of columns resolved by the O(d) screen.
    assert_eq!(improved.records, original.records);
    println!(
        "\n{} variants called; {:.1}% of mismatch columns resolved by the \
         Poisson screen; call set identical to exact LoFreq ✓",
        improved.records.len(),
        improved.stats.skip_fraction() * 100.0
    );
    println!(
        "tested columns averaged {:.0} reads in {:.1} quality bins — the {:.0}× \
         compression the binned kernels exploit",
        improved.stats.mean_depth(),
        improved.stats.mean_distinct_quals(),
        improved.stats.mean_depth() / improved.stats.mean_distinct_quals().max(1.0)
    );

    // 5. Grade against the planted truth and emit VCF.
    let grading = grade(&improved.records, &dataset.truth);
    println!(
        "sensitivity {:.0}%  precision {:.0}%",
        grading.sensitivity() * 100.0,
        grading.precision() * 100.0
    );
    let vcf = write_vcf(&reference.name, "ultravc-quickstart", &improved.records);
    println!("\nfirst VCF lines:");
    for line in vcf.lines().filter(|l| !l.starts_with('#')).take(5) {
        println!("  {line}");
    }
}
