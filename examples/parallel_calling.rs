//! Parallel calling: the three execution modes and why the paper replaced
//! the script.
//!
//! Runs one dataset through (a) the sequential caller, (b) the
//! OpenMP-style shared-memory driver at several thread counts, and (c) the
//! legacy script emulation — demonstrating that (b) is deterministic and
//! identical to (a) while (c)'s double filtering makes its output depend
//! on the job count. Finishes with a per-thread trace timeline.
//!
//! ```sh
//! cargo run --release --example parallel_calling
//! ```

use ultravc::prelude::*;

fn main() {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(2_000), 44);
    let dataset = DatasetSpec::new("parallel", 4_000.0, 0xA11E1)
        .with_variants(25, 0.004, 0.05)
        .simulate(&reference);

    // Borderline records are what the script bug corrupts; call at the raw
    // significance level so the set spans the quality range.
    let config = CallerConfig {
        bonferroni: Bonferroni::None,
        ..CallerConfig::default()
    };

    let make = |mode| CallDriver {
        config: config.clone(),
        filter: Some(FilterParams::default()),
        mode,
        trace: false,
        prefetch: PrefetchMode::Auto,
        budget: Some(RunBudget::unbounded()),
    };

    let seq = make(ParallelMode::Sequential)
        .run(&reference, &dataset.alignments)
        .expect("well-formed data");
    println!(
        "sequential: {} filtered calls in {:?}",
        seq.records.len(),
        seq.wall
    );

    for n_threads in [2usize, 4, 8] {
        let out = make(ParallelMode::OpenMp {
            n_threads,
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk_columns: 128,
        })
        .run(&reference, &dataset.alignments)
        .expect("well-formed data");
        assert_eq!(
            out.records, seq.records,
            "parallel output must be identical"
        );
        println!(
            "openmp ×{n_threads}:  {} calls in {:?} — identical to sequential ✓",
            out.records.len(),
            out.wall
        );
    }

    println!();
    for n_jobs in [2usize, 8] {
        let out = make(ParallelMode::ScriptEmulation { n_jobs })
            .run(&reference, &dataset.alignments)
            .expect("well-formed data");
        let marker = if out.records == seq.records {
            "matches (lucky partitioning)"
        } else {
            "DIFFERS — the double-filtering bug"
        };
        println!("script ×{n_jobs}:  {} calls — {marker}", out.records.len());
    }

    // A traced run for the Figure 2 view.
    let mut traced = make(ParallelMode::OpenMp {
        n_threads: 4,
        schedule: Schedule::Dynamic { chunk: 1 },
        chunk_columns: 128,
    });
    traced.trace = true;
    let out = traced
        .run(&reference, &dataset.alignments)
        .expect("well-formed data");
    println!("\nper-thread timeline:");
    print!("{}", out.timeline.expect("trace on").render_ascii(90));
}
