//! Property-based tests of the whole pipeline's invariants — the
//! statements the paper's correctness argument rests on, checked across
//! randomized workloads rather than hand-picked cases.

use proptest::prelude::*;
use ultravc::prelude::*;

fn build(
    genome_len: usize,
    depth: f64,
    n_variants: usize,
    seed: u64,
) -> (ReferenceGenome, Dataset) {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), seed);
    let dataset = DatasetSpec::new("prop", depth, seed)
        .with_variants(n_variants, 0.01, 0.2)
        .simulate(&reference);
    (reference, dataset)
}

proptest! {
    // End-to-end cases are expensive; a modest case count across wide
    // parameter ranges beats thousands of near-identical tiny cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paper's safety claim, as a universally quantified property:
    /// for any workload, the improved caller's calls are exactly the
    /// original caller's calls (the shortcut may only skip columns whose
    /// exact p-value could not have produced a call).
    #[test]
    fn improved_caller_never_changes_the_call_set(
        genome_len in 300usize..900,
        depth in 120.0..2_000.0f64,
        n_variants in 0usize..15,
        seed in 0u64..1_000_000,
    ) {
        let (reference, dataset) = build(genome_len, depth, n_variants, seed);
        let orig = call_variants(&reference, &dataset.alignments, &CallerConfig::original()).unwrap();
        let imp = call_variants(&reference, &dataset.alignments, &CallerConfig::improved()).unwrap();
        prop_assert_eq!(orig.records, imp.records);
        prop_assert_eq!(orig.stats.calls, imp.stats.calls);
    }

    /// Parallel execution is exact: any thread count and chunking yields
    /// the sequential output bit-for-bit.
    #[test]
    fn parallel_equals_sequential(
        genome_len in 300usize..800,
        depth in 100.0..1_000.0f64,
        n_threads in 2usize..6,
        chunk in 16u32..200,
        seed in 0u64..1_000_000,
    ) {
        let (reference, dataset) = build(genome_len, depth, 8, seed);
        let seq = CallDriver::sequential().run(&reference, &dataset.alignments).unwrap();
        let driver = CallDriver {
            config: CallerConfig::default(),
            filter: Some(FilterParams::default()),
            mode: ParallelMode::OpenMp {
                n_threads,
                schedule: Schedule::Dynamic { chunk: 1 },
                chunk_columns: chunk,
            },
            trace: false,
            prefetch: PrefetchMode::Auto,
            budget: Some(RunBudget::unbounded()),
        };
        let par = driver.run(&reference, &dataset.alignments).unwrap();
        prop_assert_eq!(seq.records, par.records);
    }

    /// Decision-path counters always partition the mismatch columns, and
    /// calls never exceed exact completions.
    #[test]
    fn call_stats_are_consistent(
        genome_len in 300usize..800,
        depth in 100.0..3_000.0f64,
        seed in 0u64..1_000_000,
    ) {
        let (reference, dataset) = build(genome_len, depth, 6, seed);
        let out = call_variants(&reference, &dataset.alignments, &CallerConfig::improved()).unwrap();
        let s = out.stats;
        prop_assert_eq!(
            s.mismatch_columns,
            s.skipped_by_approx + s.bailed_early + s.exact_completed
        );
        prop_assert!(s.calls <= s.exact_completed);
        prop_assert!(s.mismatch_columns <= s.columns);
        prop_assert_eq!(s.calls as usize, out.records.len());
    }

    /// Every record the caller emits is internally consistent: DP4 sums
    /// within depth, AF in (0,1], the reference base matches the genome.
    #[test]
    fn records_are_well_formed(
        genome_len in 300usize..800,
        depth in 200.0..1_500.0f64,
        seed in 0u64..1_000_000,
    ) {
        let (reference, dataset) = build(genome_len, depth, 10, seed);
        let out = call_variants(&reference, &dataset.alignments, &CallerConfig::improved()).unwrap();
        let mut prev_pos = None;
        for r in &out.records {
            let (rf, rr, af_, ar) = r.info.dp4;
            prop_assert!(rf + rr + af_ + ar <= r.info.dp);
            prop_assert!(r.info.af > 0.0 && r.info.af <= 1.0);
            prop_assert_eq!(reference.base(r.pos), r.ref_base);
            prop_assert_ne!(r.ref_base, r.alt_base);
            if let Some(p) = prev_pos {
                prop_assert!(r.pos > p, "records must be position-sorted");
            }
            prev_pos = Some(r.pos);
        }
    }
}
