//! Model-checked concurrency protocols (`--features model`).
//!
//! Each test drives a *real* workspace protocol — the shared block
//! cache, the read-ahead pacer, the cost queue, the sample breaker, the
//! worker-pool shutdown drain — under the `ultravc-sync` model
//! scheduler, exploring thread interleavings exhaustively (bounded DFS)
//! and asserting the protocol's safety property in every one. A failure
//! prints a replayable schedule trace (see README "Correctness
//! tooling").
//!
//! The companion test `costqueue_lost_wakeup_detected` (compiled only
//! under `RUSTFLAGS="--cfg ultravc_model_lost_wakeup"`, which drops the
//! queue's push-side `notify_one`) proves the detector would catch the
//! regression these tests guard against.

#![cfg(feature = "model")]

use std::collections::HashSet;
use ultravc_bamlite::{BalFile, BalWriter, Flags, IoPlan, Record, SharedBlockCache};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;
use ultravc_serve::health::{Admission, BreakerConfig, SampleHealth};
use ultravc_serve::sched::{CostQueue, BYPASS_CAP};
use ultravc_sync::model::Explorer;
use ultravc_sync::{thread, Arc, Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> ultravc_sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small in-memory BAL file: `n` records, `block_cap` per block.
fn sample_file(n: usize, block_cap: usize) -> BalFile {
    let mut w = BalWriter::with_block_capacity(block_cap);
    for i in 0..n as u64 {
        let seq = Seq::from_ascii(b"ACGTACGT").expect("fixture seq");
        let quals: Vec<Phred> = (0..8)
            .map(|j| Phred::new(20 + ((i as usize + j) % 20) as u8))
            .collect();
        let rec = Record::full_match(i, (i * 3) as u32, 60, Flags::none(), seq, quals)
            .expect("fixture record");
        w.push(rec).expect("fixture push");
    }
    w.finish()
}

/// Three consumers race for the same cache slot: the block must decode
/// exactly once, every consumer must get the same arena, and the
/// decoded-block counter must agree.
#[test]
fn cache_slot_decodes_exactly_once() {
    let report = Explorer::new("cache_slot_decodes_exactly_once")
        .preemption_bound(2)
        .forbid_leaked(true)
        .explore(|| {
            let cache = Arc::new(SharedBlockCache::new(sample_file(4, 2)));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    thread::spawn(move || {
                        let (batch, performed) = cache.get(0).expect("decode block 0");
                        (batch.len(), performed.is_some())
                    })
                })
                .collect();
            let results: Vec<(usize, bool)> = handles
                .into_iter()
                .map(|h| h.join().expect("consumer"))
                .collect();
            let decodes = results.iter().filter(|(_, performed)| *performed).count();
            assert_eq!(decodes, 1, "slot 0 decoded {decodes} times, want exactly 1");
            assert!(results.iter().all(|(len, _)| *len == 2), "torn batch view");
            assert_eq!(cache.decoded_blocks(), 1);
            assert_eq!(
                cache.progress().requested,
                1,
                "one slot crossed the frontier"
            );
        });
    assert!(
        report.distinct >= 3000,
        "only {} distinct schedules",
        report.distinct
    );
    println!("cache_slot_decodes_exactly_once: {report:?}");
}

/// The bounded read-ahead pacer against a racing consumer: no
/// interleaving may lose a wakeup (`fail_on_stall` turns "the pacing
/// timeout was the only way forward" into a failure) and shutdown via
/// `finish()` must always join the pacer thread promptly.
#[test]
fn readahead_pacer_never_loses_wakeup_or_stalls() {
    let report = Explorer::new("readahead_pacer_never_loses_wakeup_or_stalls")
        .preemption_bound(2)
        .dfs_budget(6_000)
        .fail_on_stall(true)
        .forbid_leaked(true)
        .explore(|| {
            let file = sample_file(6, 2); // 3 blocks
            let n = file.n_blocks();
            let plan = IoPlan::for_regions(&file, &[0..u32::MAX]);
            let cache = Arc::new(SharedBlockCache::new(file));
            // ahead=1: the pacer must park on the watermark condvar as
            // soon as one decoded block sits unrequested.
            let handle = plan.spawn_readahead(Arc::clone(&cache), 1);
            let consumer = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for b in 0..n {
                        cache.get(b).expect("consume block");
                    }
                })
            };
            consumer.join().expect("consumer");
            let report = handle.finish();
            assert!(!report.panicked, "pacer panicked");
            assert_eq!(
                cache.decoded_blocks(),
                n,
                "every block decoded exactly once"
            );
        });
    assert!(
        report.distinct >= 1500,
        "only {} distinct schedules",
        report.distinct
    );
    println!("readahead_pacer_never_loses_wakeup_or_stalls: {report:?}");
}

/// Two workers drain a queue holding a whale and small jobs pushed
/// around it: every job is served exactly once, the whale is never
/// starved past the bypass cap, and close() lets both workers drain and
/// exit in every interleaving.
#[test]
fn costqueue_bypass_is_capped_and_whale_is_served() {
    let report = Explorer::new("costqueue_bypass_is_capped_and_whale_is_served")
        .preemption_bound(2)
        .dfs_budget(6_000)
        .forbid_leaked(true)
        .explore(|| {
            // Budget 96: whale threshold 96/8 = 12, so cost-50 is large
            // and cost-1 jobs are small. All four fit in flight at once.
            let q = Arc::new(CostQueue::<u32>::new(96));
            let popped = Arc::new(Mutex::new(Vec::<u32>::new()));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let popped = Arc::clone(&popped);
                    thread::spawn(move || {
                        while let Some((item, cost)) = q.pop() {
                            lock(&popped).push(item);
                            q.finish(cost);
                        }
                    })
                })
                .collect();
            q.push(1, 1).expect("small #1");
            q.push(100, 50).expect("whale");
            q.push(2, 1).expect("small #2");
            q.close();
            for w in workers {
                w.join().expect("worker");
            }
            let got = lock(&popped);
            let set: HashSet<u32> = got.iter().copied().collect();
            assert_eq!(got.len(), 3, "jobs served != jobs pushed: {got:?}");
            assert_eq!(
                set,
                HashSet::from([1, 2, 100]),
                "lost or duplicated job: {got:?}"
            );
            // Starvation bound: smalls dequeued while the whale queued.
            let whale_at = got.iter().position(|&i| i == 100).expect("whale served");
            assert!(
                (whale_at as u64) <= BYPASS_CAP,
                "whale overtaken {whale_at} times, cap is {BYPASS_CAP}"
            );
        });
    assert!(
        report.distinct >= 4000,
        "only {} distinct schedules",
        report.distinct
    );
    println!("costqueue_bypass_is_capped_and_whale_is_served: {report:?}");
}

/// The per-sample breaker under racing admitters: Closed → Open →
/// HalfOpen never wedges (a request is always admittable once the
/// cooldown lapses and the probe reports) and never admits two
/// concurrent probes.
#[test]
fn breaker_never_wedges_nor_double_probes() {
    let report = Explorer::new("breaker_never_wedges_nor_double_probes")
        .preemption_bound(3)
        .forbid_leaked(true)
        .explore(|| {
            // Threshold 1 trips on the first failure; zero cooldown makes
            // "cooldown elapsed" true immediately, so the model run never
            // waits on wall-clock time.
            let cfg = BreakerConfig {
                threshold: 1,
                cooldown: std::time::Duration::ZERO,
            };
            let h = Arc::new(SampleHealth::default());
            assert!(h.record_failure(&cfg), "threshold 1 must trip immediately");
            let admitters: Vec<_> = (0..2)
                .map(|_| {
                    let h = Arc::clone(&h);
                    thread::spawn(move || match h.admit(&cfg) {
                        Admission::Admit { probe: true } => {
                            // The single half-open probe: report success.
                            assert!(h.record_success(), "probe success must count as recovery");
                            2u32
                        }
                        Admission::Admit { probe: false } => 1,
                        Admission::Quarantined { .. } => 0,
                    })
                })
                .collect();
            let outcomes: Vec<u32> = admitters
                .into_iter()
                .map(|a| a.join().expect("admitter"))
                .collect();
            let probes = outcomes.iter().filter(|&&o| o == 2).count();
            assert_eq!(probes, 1, "exactly one admitter may probe: {outcomes:?}");
            let stats = h.stats();
            assert_eq!(stats.probes, 1, "double probe admitted");
            assert_eq!(stats.recoveries, 1);
            // Not wedged: the breaker is Closed again and admits plainly.
            assert_eq!(h.state_name(), "closed");
            assert_eq!(h.admit(&cfg), Admission::Admit { probe: false });
        });
    assert!(
        report.distinct >= 400,
        "only {} distinct schedules",
        report.distinct
    );
    println!("breaker_never_wedges_nor_double_probes: {report:?}");
}

/// Worker-pool shutdown: close() must wake parked workers, the queue
/// must drain every accepted job, and joining must leave zero model
/// threads behind in every interleaving (`forbid_leaked`).
#[test]
fn shutdown_drains_workers_without_leaks() {
    let report = Explorer::new("shutdown_drains_workers_without_leaks")
        .preemption_bound(2)
        .dfs_budget(6_000)
        .forbid_leaked(true)
        .explore(|| {
            let q = Arc::new(CostQueue::<u32>::new(8));
            let served = Arc::new(Mutex::new(0u32));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let served = Arc::clone(&served);
                    thread::spawn(move || {
                        // The server's worker loop shape: pop, work, finish.
                        while let Some((_, cost)) = q.pop() {
                            *lock(&served) += 1;
                            q.finish(cost);
                        }
                    })
                })
                .collect();
            q.push(7, 1).expect("push #1");
            q.push(8, 1).expect("push #2");
            q.close();
            assert!(q.push(9, 1).is_err(), "push after close must be refused");
            for w in workers {
                w.join().expect("worker must exit after close");
            }
            assert_eq!(*lock(&served), 2, "close() dropped an accepted job");
            assert_eq!(q.stats().depth, 0);
        });
    assert!(
        report.distinct >= 2000,
        "only {} distinct schedules",
        report.distinct
    );
    println!("shutdown_drains_workers_without_leaks: {report:?}");
}

/// Detector proof: with the push-side `notify_one` compiled out
/// (`--cfg ultravc_model_lost_wakeup`), a parked worker misses the job
/// it was woken for and the explorer must catch the hang with a
/// replayable trace. CI runs this as its own leg.
#[cfg(ultravc_model_lost_wakeup)]
#[test]
fn costqueue_lost_wakeup_detected() {
    use ultravc_sync::model::FailureKind;
    let (_, failure) = Explorer::new("costqueue_lost_wakeup_detected")
        .preemption_bound(3)
        .explore_result(|| {
            let q = Arc::new(CostQueue::<u32>::new(8));
            let worker = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop().map(|(item, _)| item))
            };
            q.push(5, 1).expect("push");
            // No close(): the push's notify is the worker's only wakeup,
            // so dropping it strands a worker that parked first.
            let _ = worker.join();
        });
    let failure = failure.expect("dropped notify_one must strand the worker in some schedule");
    assert!(
        matches!(
            failure.kind,
            FailureKind::Deadlock | FailureKind::LostWakeup
        ),
        "unexpected verdict {:?}: {}",
        failure.kind,
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "failure must carry a replayable trace"
    );
}
