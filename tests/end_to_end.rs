//! Cross-crate integration tests: the full pipeline from synthetic genome
//! to filtered VCF, exercised through the facade crate's public API.

use ultravc::prelude::*;
use ultravc_vcf::parse_vcf;

fn standard_setup(depth: f64, seed: u64) -> (ReferenceGenome, Dataset) {
    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(1_200), seed);
    let dataset = DatasetSpec::new("it", depth, seed)
        .with_variants(10, 0.02, 0.08)
        .simulate(&reference);
    (reference, dataset)
}

#[test]
fn pipeline_recovers_planted_variants_and_roundtrips_vcf() {
    let (reference, dataset) = standard_setup(500.0, 0xE2E);
    let outcome = CallDriver::sequential()
        .run(&reference, &dataset.alignments)
        .unwrap();
    let grading = grade(&outcome.records, &dataset.truth);
    assert!(
        grading.sensitivity() >= 0.9,
        "sensitivity {:.2} too low: {:?}",
        grading.sensitivity(),
        grading
    );
    assert!(
        grading.precision() >= 0.9,
        "precision {:.2} too low: {:?}",
        grading.precision(),
        grading
    );
    // VCF text roundtrip preserves the records.
    let text = write_vcf(&reference.name, "it", &outcome.records);
    let parsed = parse_vcf(std::io::Cursor::new(text.into_bytes())).unwrap();
    assert_eq!(parsed.len(), outcome.records.len());
    for (a, b) in parsed.iter().zip(&outcome.records) {
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.alt_base, b.alt_base);
        assert_eq!(a.info.dp, b.info.dp);
    }
}

#[test]
fn improved_caller_is_identical_to_original_across_configs() {
    for (depth, seed) in [(300.0, 1u64), (1_500.0, 2), (5_000.0, 3)] {
        let (reference, dataset) = standard_setup(depth, seed);
        let orig =
            call_variants(&reference, &dataset.alignments, &CallerConfig::original()).unwrap();
        let imp =
            call_variants(&reference, &dataset.alignments, &CallerConfig::improved()).unwrap();
        assert_eq!(orig.records, imp.records, "depth {depth}, seed {seed}");
    }
}

#[test]
fn parallel_modes_are_deterministic_and_equal() {
    let (reference, dataset) = standard_setup(1_000.0, 0xDE7);
    let seq = CallDriver::sequential()
        .run(&reference, &dataset.alignments)
        .unwrap();
    for n_threads in [2usize, 3, 8] {
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let driver = CallDriver {
                config: CallerConfig::default(),
                filter: Some(FilterParams::default()),
                mode: ParallelMode::OpenMp {
                    n_threads,
                    schedule,
                    chunk_columns: 100,
                },
                trace: false,
                prefetch: PrefetchMode::Auto,
                budget: Some(RunBudget::unbounded()),
            };
            let out = driver.run(&reference, &dataset.alignments).unwrap();
            assert_eq!(
                out.records, seq.records,
                "threads={n_threads} schedule={schedule:?}"
            );
        }
    }
}

#[test]
fn bal_file_survives_disk_roundtrip() {
    let (reference, dataset) = standard_setup(200.0, 0xD15C);
    let bytes = dataset
        .alignments
        .as_bytes()
        .expect("simulator output is in-memory")
        .clone();
    let reloaded = ultravc::bamlite::BalFile::from_bytes(bytes).unwrap();
    let a = call_variants(&reference, &dataset.alignments, &CallerConfig::default()).unwrap();
    let b = call_variants(&reference, &reloaded, &CallerConfig::default()).unwrap();
    assert_eq!(a.records, b.records);
}

#[test]
fn depth_cap_limits_reported_depth() {
    let (reference, dataset) = standard_setup(2_000.0, 0xCA9);
    let mut config = CallerConfig::default();
    config.pileup.max_depth = 500;
    let out = call_variants(&reference, &dataset.alignments, &config).unwrap();
    assert!(out.stats.truncated_columns > 0, "cap should bind at 2000x");
    for r in &out.records {
        assert!(r.info.dp <= 500, "depth {} exceeds cap", r.info.dp);
    }
}

#[test]
fn same_seed_same_output_different_seed_different_reads() {
    let (_reference, a) = standard_setup(150.0, 0x5EED);
    let (_, b) = standard_setup(150.0, 0x5EED);
    let bytes_of = |ds: &ultravc::readsim::dataset::Dataset| {
        ds.alignments
            .as_bytes()
            .expect("simulator output is in-memory")
            .clone()
    };
    assert_eq!(bytes_of(&a), bytes_of(&b));
    let (_, c) = standard_setup(150.0, 0x5EED + 1);
    assert_ne!(bytes_of(&a), bytes_of(&c));
}
