//! Parallel-for execution over a worker team.

use crate::schedule::{Dispenser, Schedule};
use std::time::{Duration, Instant};

/// Per-worker context handed to the loop body.
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Dense worker id in `0..n_threads`.
    pub thread_id: usize,
    /// Team size.
    pub n_threads: usize,
}

/// Post-region accounting: what each worker did and for how long — the raw
/// material of the paper's Figure 2 imbalance analysis.
#[derive(Debug, Clone)]
pub struct TeamReport {
    /// Wall-clock duration of the whole region (fork to last join).
    pub wall: Duration,
    /// Per-thread busy time (first claim to last completion).
    pub busy: Vec<Duration>,
    /// Items processed per thread.
    pub items: Vec<usize>,
    /// Per-thread completion time as an offset from region start; the gap
    /// to `wall` is the time the thread idled at the end-of-region barrier.
    pub finished_at: Vec<Duration>,
}

impl TeamReport {
    /// `max(busy) / mean(busy)` — 1.0 is perfect balance. The paper's
    /// Figure 2 shows one straggler thread pushing this well above 1.
    pub fn imbalance(&self) -> f64 {
        let n = self.busy.len().max(1) as f64;
        let total: f64 = self.busy.iter().map(|d| d.as_secs_f64()).sum();
        let mean = total / n;
        if mean == 0.0 {
            return 1.0;
        }
        let max = self
            .busy
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0f64, f64::max);
        max / mean
    }

    /// The thread that stayed busy longest.
    pub fn straggler(&self) -> usize {
        self.busy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Barrier waste: Σ over threads of (max busy − busy), the idle time
    /// spent at the end-of-region barrier.
    pub fn barrier_waste(&self) -> Duration {
        let max = self.busy.iter().max().copied().unwrap_or_default();
        self.busy.iter().map(|b| max.saturating_sub(*b)).sum()
    }
}

/// The fate of one item under [`parallel_for_supervised`].
#[derive(Debug)]
pub enum ItemOutcome<R> {
    /// The body completed and returned a value.
    Done(R),
    /// The body panicked; the payload is the panic message. The worker
    /// survived the panic and kept claiming items, so one bad item never
    /// takes down its siblings.
    Panicked(String),
    /// The item was never run — the stop signal fired before a worker
    /// reached it (or its worker was lost).
    Skipped,
}

impl<R> ItemOutcome<R> {
    /// The result, if the body completed.
    pub fn done(self) -> Option<R> {
        match self {
            ItemOutcome::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Render a caught panic payload for reporting.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `body` over `items` with `n_threads` workers under `schedule`,
/// returning per-item results in input order plus the team report.
///
/// `body(ctx, index, &item) -> R` must be safe to call concurrently on
/// distinct items (enforced by `Sync` bounds). Results are reassembled by
/// index, so output order is deterministic regardless of schedule or thread
/// count.
///
/// # Panics
///
/// Re-raises a worker panic after the whole team has drained (one bad
/// item no longer aborts the process through a poisoned join). Callers
/// that want panics *reported* instead of raised use
/// [`parallel_for_supervised`].
pub fn parallel_for<T, R, F>(
    n_threads: usize,
    items: &[T],
    schedule: Schedule,
    body: F,
) -> (Vec<R>, TeamReport)
where
    T: Sync,
    R: Send,
    F: Fn(WorkerCtx, usize, &T) -> R + Sync,
{
    let (outcomes, report) = parallel_for_supervised(n_threads, items, schedule, || false, body);
    let results = outcomes
        .into_iter()
        .map(|o| match o {
            ItemOutcome::Done(r) => r,
            ItemOutcome::Panicked(msg) => panic!("worker panicked: {msg}"),
            ItemOutcome::Skipped => unreachable!("no stop signal: every item runs"),
        })
        .collect();
    (results, report)
}

/// [`parallel_for`] under supervision: worker panics are contained
/// per-item (`catch_unwind`) and reported as [`ItemOutcome::Panicked`],
/// and `should_stop` is polled before every claim and every item so an
/// external cancel/deadline signal drains the team promptly — unstarted
/// items come back [`ItemOutcome::Skipped`], in input order like
/// everything else.
///
/// The stop poll must be cheap (an atomic load); it is called once per
/// item on the hot path.
pub fn parallel_for_supervised<T, R, F, S>(
    n_threads: usize,
    items: &[T],
    schedule: Schedule,
    should_stop: S,
    body: F,
) -> (Vec<ItemOutcome<R>>, TeamReport)
where
    T: Sync,
    R: Send,
    F: Fn(WorkerCtx, usize, &T) -> R + Sync,
    S: Fn() -> bool + Sync,
{
    assert!(n_threads > 0, "need at least one thread");
    let region_start = Instant::now();
    let dispenser = Dispenser::new(items.len(), n_threads, schedule);

    let run_one = |ctx: WorkerCtx, i: usize| -> ItemOutcome<R> {
        if should_stop() {
            return ItemOutcome::Skipped;
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(ctx, i, &items[i]))) {
            Ok(r) => ItemOutcome::Done(r),
            Err(payload) => ItemOutcome::Panicked(panic_message(payload)),
        }
    };

    // Fast path: one thread needs no thread scope.
    if n_threads == 1 {
        let t0 = Instant::now();
        let ctx = WorkerCtx {
            thread_id: 0,
            n_threads: 1,
        };
        let results: Vec<ItemOutcome<R>> = (0..items.len()).map(|i| run_one(ctx, i)).collect();
        let busy = t0.elapsed();
        return (
            results,
            TeamReport {
                wall: region_start.elapsed(),
                busy: vec![busy],
                items: vec![items.len()],
                finished_at: vec![region_start.elapsed()],
            },
        );
    }

    let mut tagged: Vec<(usize, ItemOutcome<R>)> = Vec::with_capacity(items.len());
    let mut busy = vec![Duration::ZERO; n_threads];
    let mut counts = vec![0usize; n_threads];
    let mut finished_at = vec![Duration::ZERO; n_threads];

    // Deliberately std, not the ultravc-sync facade: scoped threads borrow
    // `items`/`dispenser` from this stack frame, which the model scheduler
    // cannot express. The claim protocol itself (Dispenser) runs on facade
    // atomics, so the model suite exercises it with its own plain spawns.
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_threads);
        for thread_id in 0..n_threads {
            let dispenser = &dispenser;
            let run_one = &run_one;
            let should_stop = &should_stop;
            handles.push(scope.spawn(move || {
                let ctx = WorkerCtx {
                    thread_id,
                    n_threads,
                };
                let mut local: Vec<(usize, ItemOutcome<R>)> = Vec::new();
                let t0 = Instant::now();
                if dispenser.is_static() {
                    if let Some(block) = dispenser.static_block(thread_id) {
                        for i in block {
                            local.push((i, run_one(ctx, i)));
                        }
                    }
                } else {
                    while !should_stop() {
                        let Some(claim) = dispenser.claim() else {
                            break;
                        };
                        for i in claim {
                            local.push((i, run_one(ctx, i)));
                        }
                    }
                }
                (t0.elapsed(), region_start.elapsed(), local)
            }));
        }
        for (thread_id, handle) in handles.into_iter().enumerate() {
            // Worker bodies contain panics per item, so a failed join can
            // only mean the supervision plumbing itself panicked; its
            // claimed items stay Skipped rather than aborting the team.
            if let Ok((elapsed, done_at, local)) = handle.join() {
                busy[thread_id] = elapsed;
                finished_at[thread_id] = done_at;
                counts[thread_id] = local.len();
                tagged.extend(local);
            }
        }
    });

    let mut outcomes: Vec<ItemOutcome<R>> = Vec::with_capacity(items.len());
    outcomes.resize_with(items.len(), || ItemOutcome::Skipped);
    for (i, o) in tagged {
        outcomes[i] = o;
    }
    (
        outcomes,
        TeamReport {
            wall: region_start.elapsed(),
            busy,
            items: counts,
            finished_at,
        },
    )
}

/// Parallel map-reduce: apply `map` to every item and fold the results with
/// `fold` (associative, with `identity`). Reduction order is deterministic
/// (index order), so non-commutative folds are safe.
pub fn parallel_reduce<T, A, F, G>(
    n_threads: usize,
    items: &[T],
    schedule: Schedule,
    identity: A,
    map: F,
    fold: G,
) -> (A, TeamReport)
where
    T: Sync,
    A: Send + Clone,
    F: Fn(WorkerCtx, usize, &T) -> A + Sync,
    G: Fn(A, A) -> A,
{
    let (parts, report) = parallel_for(n_threads, items, schedule, map);
    let acc = parts.into_iter().fold(identity, fold);
    (acc, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_input_order_all_schedules() {
        let items: Vec<u64> = (0..1_000).collect();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 13 },
            Schedule::Guided { min_chunk: 4 },
        ] {
            let (out, report) = parallel_for(4, &items, schedule, |_, i, x| x * 2 + i as u64);
            let want: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, x)| x * 2 + i as u64)
                .collect();
            assert_eq!(out, want, "{schedule:?}");
            assert_eq!(report.items.iter().sum::<usize>(), 1_000);
        }
    }

    #[test]
    fn single_thread_fast_path_matches() {
        let items: Vec<u32> = (0..100).collect();
        let (a, ra) = parallel_for(1, &items, Schedule::Static, |_, _, x| x + 1);
        let (b, _) = parallel_for(3, &items, Schedule::Dynamic { chunk: 2 }, |_, _, x| x + 1);
        assert_eq!(a, b);
        assert_eq!(ra.busy.len(), 1);
        assert_eq!(ra.items, vec![100]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items = vec![(); 5_000];
        let (_, _) = parallel_for(8, &items, Schedule::Dynamic { chunk: 3 }, |_, _, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn worker_ctx_is_consistent() {
        // Items take ~1 ms each so spawned workers reliably join in before
        // the queue drains (a trivial body can be raced through by the
        // first worker alone).
        let items = vec![0u8; 64];
        let (ids, _) = parallel_for(4, &items, Schedule::Dynamic { chunk: 1 }, |ctx, _, _| {
            assert_eq!(ctx.n_threads, 4);
            std::thread::sleep(Duration::from_millis(1));
            ctx.thread_id
        });
        for id in &ids {
            assert!(*id < 4);
        }
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() >= 2, "suspiciously serial execution");
    }

    #[test]
    fn static_schedule_causes_imbalance_on_skewed_work() {
        // All the cost sits in the last quarter: static gives it to one
        // thread; dynamic spreads it.
        let items: Vec<u64> = (0..64)
            .map(|i| if i >= 48 { 400_000 } else { 100 })
            .collect();
        let spin = |n: u64| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            acc
        };
        let (_, stat) = parallel_for(4, &items, Schedule::Static, |_, _, &n| spin(n));
        let (_, dyn_) = parallel_for(4, &items, Schedule::Dynamic { chunk: 1 }, |_, _, &n| {
            spin(n)
        });
        assert!(
            stat.imbalance() > dyn_.imbalance(),
            "static {:.3} should exceed dynamic {:.3}",
            stat.imbalance(),
            dyn_.imbalance()
        );
        // The straggler under static is the thread owning the tail block.
        assert_eq!(stat.straggler(), 3);
    }

    #[test]
    fn reduce_is_deterministic_and_ordered() {
        let items: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let (joined, _) = parallel_reduce(
            4,
            &items,
            Schedule::Dynamic { chunk: 7 },
            String::new(),
            |_, _, s| s.clone(),
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        let want: String = items.concat();
        assert_eq!(joined, want);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let (out, report) = parallel_for(4, &items, Schedule::Dynamic { chunk: 1 }, |_, _, x| *x);
        assert!(out.is_empty());
        assert_eq!(report.items.iter().sum::<usize>(), 0);
    }

    #[test]
    fn supervised_contains_worker_panics() {
        let items: Vec<u32> = (0..100).collect();
        for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 1 }] {
            for n_threads in [1, 4] {
                let (outcomes, _) = parallel_for_supervised(
                    n_threads,
                    &items,
                    schedule,
                    || false,
                    |_, _, &x| {
                        if x == 37 {
                            panic!("injected worker bug on {x}");
                        }
                        x * 2
                    },
                );
                assert_eq!(outcomes.len(), 100);
                for (i, o) in outcomes.into_iter().enumerate() {
                    match o {
                        ItemOutcome::Done(v) => assert_eq!(v, 2 * i as u32),
                        ItemOutcome::Panicked(msg) => {
                            assert_eq!(i, 37, "{schedule:?}/{n_threads}");
                            assert!(msg.contains("injected worker bug"), "{msg}");
                        }
                        ItemOutcome::Skipped => panic!("nothing should be skipped"),
                    }
                }
            }
        }
    }

    #[test]
    fn supervised_stop_skips_the_tail_promptly() {
        use std::sync::atomic::AtomicBool;
        let items = vec![(); 10_000];
        let fired = AtomicBool::new(false);
        let done = AtomicUsize::new(0);
        let (outcomes, _) = parallel_for_supervised(
            4,
            &items,
            Schedule::Dynamic { chunk: 1 },
            || fired.load(Ordering::Relaxed),
            |_, _, _| {
                if done.fetch_add(1, Ordering::Relaxed) >= 50 {
                    fired.store(true, Ordering::Relaxed);
                }
            },
        );
        let skipped = outcomes
            .iter()
            .filter(|o| matches!(o, ItemOutcome::Skipped))
            .count();
        assert!(skipped > 0, "stop signal must leave a skipped tail");
        assert!(
            skipped < items.len(),
            "some items ran before the signal fired"
        );
    }

    #[test]
    fn legacy_parallel_for_reraises_contained_panics() {
        let items: Vec<u32> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_for(2, &items, Schedule::Dynamic { chunk: 1 }, |_, _, &x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err(), "unsupervised callers still see the panic");
    }

    #[test]
    fn report_metrics_sane() {
        let items = vec![1_000u64; 200];
        let (_, report) = parallel_for(4, &items, Schedule::Dynamic { chunk: 1 }, |_, _, &n| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(report.imbalance() >= 1.0);
        assert_eq!(report.busy.len(), 4);
        assert!(report.wall >= *report.busy.iter().max().unwrap() / 2);
        let _ = report.barrier_waste();
        let _ = report.straggler();
    }
}
