//! Loop schedules, mirroring OpenMP's `schedule()` clause.

use ultravc_sync::atomic::{AtomicUsize, Ordering};

/// How loop iterations are handed to worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous equal blocks fixed up-front (OpenMP `static`). Zero
    /// scheduling overhead; worst-case imbalance when work per item varies —
    /// this is effectively what LoFreq's partition script did across
    /// processes.
    Static,
    /// Workers repeatedly grab the next `chunk` items from a shared counter
    /// (OpenMP `dynamic,chunk`). The paper's choice: high-cost columns
    /// (dense variant neighbourhoods) stop stalling whole partitions.
    Dynamic {
        /// Items claimed per grab. 1 maximizes balance, larger amortizes
        /// the atomic traffic.
        chunk: usize,
    },
    /// Chunk size decays with remaining work: `max(remaining / (2·threads),
    /// min_chunk)` (OpenMP `guided`). Large grabs early (low overhead),
    /// small grabs late (tail balance) — the "smaller partitions towards the
    /// end" idea in the paper's discussion.
    Guided {
        /// Floor on the decaying chunk size.
        min_chunk: usize,
    },
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }
}

/// A claim of loop iterations `[start, end)`.
pub type Claim = std::ops::Range<usize>;

/// Shared iteration dispenser implementing the three schedules.
#[derive(Debug)]
pub struct Dispenser {
    n_items: usize,
    n_threads: usize,
    schedule: Schedule,
    cursor: AtomicUsize,
}

impl Dispenser {
    /// Create a dispenser for `n_items` across `n_threads`.
    pub fn new(n_items: usize, n_threads: usize, schedule: Schedule) -> Dispenser {
        assert!(n_threads > 0, "need at least one thread");
        Dispenser {
            n_items,
            n_threads,
            schedule,
            cursor: AtomicUsize::new(0),
        }
    }

    /// The static block for a given thread (`None` for non-static
    /// schedules' callers, and for threads with no work).
    pub fn static_block(&self, thread_id: usize) -> Option<Claim> {
        debug_assert!(matches!(self.schedule, Schedule::Static));
        let n = self.n_items;
        let t = self.n_threads;
        let base = n / t;
        let extra = n % t;
        let start = thread_id * base + thread_id.min(extra);
        let size = base + usize::from(thread_id < extra);
        if size == 0 {
            return None;
        }
        Some(start..start + size)
    }

    /// Claim the next batch of iterations; `None` when the loop is drained.
    pub fn claim(&self) -> Option<Claim> {
        match self.schedule {
            Schedule::Static => unreachable!("static workers use static_block"),
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let start = self.cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= self.n_items {
                    return None;
                }
                Some(start..(start + chunk).min(self.n_items))
            }
            Schedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                loop {
                    let start = self.cursor.load(Ordering::Relaxed);
                    if start >= self.n_items {
                        return None;
                    }
                    let remaining = self.n_items - start;
                    let chunk = (remaining / (2 * self.n_threads)).max(min_chunk);
                    let end = (start + chunk).min(self.n_items);
                    if self
                        .cursor
                        .compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        return Some(start..end);
                    }
                }
            }
        }
    }

    /// Whether this dispenser uses the static schedule.
    pub fn is_static(&self) -> bool {
        matches!(self.schedule, Schedule::Static)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_tile_exactly() {
        let d = Dispenser::new(10, 3, Schedule::Static);
        let blocks: Vec<Claim> = (0..3).filter_map(|t| d.static_block(t)).collect();
        assert_eq!(blocks, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn static_more_threads_than_items() {
        let d = Dispenser::new(2, 5, Schedule::Static);
        let blocks: Vec<Option<Claim>> = (0..5).map(|t| d.static_block(t)).collect();
        assert_eq!(blocks[0], Some(0..1));
        assert_eq!(blocks[1], Some(1..2));
        assert!(blocks[2..].iter().all(|b| b.is_none()));
    }

    #[test]
    fn dynamic_claims_cover_everything_once() {
        let d = Dispenser::new(100, 4, Schedule::Dynamic { chunk: 7 });
        let mut seen = [false; 100];
        while let Some(c) = d.claim() {
            for i in c {
                assert!(!seen[i], "iteration {i} dispensed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dynamic_zero_chunk_normalized() {
        let d = Dispenser::new(3, 2, Schedule::Dynamic { chunk: 0 });
        assert_eq!(d.claim(), Some(0..1));
    }

    #[test]
    fn guided_chunks_decay() {
        let d = Dispenser::new(1_000, 4, Schedule::Guided { min_chunk: 5 });
        let mut sizes = Vec::new();
        while let Some(c) = d.claim() {
            sizes.push(c.len());
        }
        // First chunk is remaining/(2·4) = 125; sizes never grow.
        assert_eq!(sizes[0], 125);
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "guided chunks must not grow: {sizes:?}");
        }
        assert!(*sizes.last().unwrap() <= 5 || sizes.len() == 1);
        assert_eq!(sizes.iter().sum::<usize>(), 1_000);
    }

    #[test]
    fn guided_respects_min_chunk_floor() {
        let d = Dispenser::new(20, 8, Schedule::Guided { min_chunk: 6 });
        let mut total = 0;
        while let Some(c) = d.claim() {
            assert!(!c.is_empty());
            total += c.len();
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn empty_loop_dispenses_nothing() {
        let d = Dispenser::new(0, 2, Schedule::Dynamic { chunk: 3 });
        assert_eq!(d.claim(), None);
        let s = Dispenser::new(0, 2, Schedule::Static);
        assert!(s.static_block(0).is_none());
    }
}
