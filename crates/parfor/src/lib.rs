//! # ultravc-parfor
//!
//! An OpenMP-flavoured parallel runtime built on std scoped threads:
//! the workspace's replacement for the `#pragma omp parallel for
//! schedule(dynamic)` the paper adds to LoFreq (§II.B).
//!
//! The surface is deliberately OpenMP-shaped rather than rayon-shaped:
//!
//! * an explicit **thread count** (the paper benchmarks 64- and 128-thread
//!   machines and studies scaling, so implicit global pools are wrong here);
//! * an explicit **[`Schedule`]** — `Static`, `Dynamic { chunk }` or
//!   `Guided { min_chunk }` — because schedule choice *is* the experiment in
//!   the paper's Figure 2 (dynamic scheduling vs. the script's static
//!   partitioning, and the end-of-run load imbalance);
//! * a **[`TeamReport`]** from every region: per-thread busy time and item
//!   counts, so the tracer can reconstruct the barrier imbalance exactly the
//!   way HPC-Toolkit's timeline view showed it.
//!
//! Workers return their results tagged with item indices; [`parallel_for`]
//! reassembles them in input order, so parallel calling produces
//! byte-identical output to sequential calling — the determinism check the
//! paper applies to its own OpenMP port ("the number of variants called was
//! identical").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schedule;
pub mod team;

pub use schedule::Schedule;
pub use team::{
    parallel_for, parallel_for_supervised, parallel_reduce, ItemOutcome, TeamReport, WorkerCtx,
};
