//! Packed nucleotide sequences.
//!
//! A 29 903 bp reference held at one byte per base would be trivially small,
//! but the *reads* of a 1 000 000× dataset are not: a 150 bp read set at
//! that depth over even a 1 kb slice is ~10⁷ reads. Storing bases 2-bit
//! packed quarters the memory traffic of every pileup pass, which is exactly
//! the kind of cache effect the paper's discussion section dwells on.

use crate::alphabet::Base;
use serde::{Deserialize, Serialize};

/// An immutable-length, 2-bit-packed DNA sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Seq {
    packed: Vec<u8>,
    len: usize,
}

impl Seq {
    /// Empty sequence.
    pub fn new() -> Self {
        Seq::default()
    }

    /// Pre-allocate for `n` bases.
    pub fn with_capacity(n: usize) -> Self {
        Seq {
            packed: Vec::with_capacity(n.div_ceil(4)),
            len: 0,
        }
    }

    /// Build from any iterator of bases.
    pub fn from_bases<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        let mut s = Seq::new();
        for b in iter {
            s.push(b);
        }
        s
    }

    /// Parse from ASCII; returns `None` at the first non-ACGT byte.
    pub fn from_ascii(bytes: &[u8]) -> Option<Self> {
        let mut s = Seq::with_capacity(bytes.len());
        for &c in bytes {
            s.push(Base::from_ascii(c)?);
        }
        Some(s)
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one base.
    #[inline]
    pub fn push(&mut self, b: Base) {
        let bit = (self.len % 4) * 2;
        if bit == 0 {
            self.packed.push(b.code());
        } else {
            let last = self.packed.last_mut().expect("non-empty by invariant");
            *last |= b.code() << bit;
        }
        self.len += 1;
    }

    /// Base at `i`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let byte = self.packed[i / 4];
        Base::from_code((byte >> ((i % 4) * 2)) & 0b11)
    }

    /// Overwrite the base at `i`.
    #[inline]
    pub fn set(&mut self, i: usize, b: Base) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let shift = (i % 4) * 2;
        let byte = &mut self.packed[i / 4];
        *byte = (*byte & !(0b11 << shift)) | (b.code() << shift);
    }

    /// Iterator over bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copy of the sub-sequence `[start, start + len)`.
    pub fn subseq(&self, start: usize, len: usize) -> Seq {
        assert!(
            start + len <= self.len,
            "subseq [{start}, {}) out of bounds (len {})",
            start + len,
            self.len
        );
        Seq::from_bases((start..start + len).map(|i| self.get(i)))
    }

    /// Reverse complement.
    pub fn reverse_complement(&self) -> Seq {
        Seq::from_bases((0..self.len).rev().map(|i| self.get(i).complement()))
    }

    /// Fraction of G/C bases (0 for the empty sequence).
    pub fn gc_content(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let gc = self.iter().filter(|b| b.is_gc()).count();
        gc as f64 / self.len as f64
    }

    /// Uppercase ASCII rendering.
    pub fn to_ascii(&self) -> Vec<u8> {
        self.iter().map(Base::to_ascii).collect()
    }

    /// The raw packed bytes (4 bases per byte, LSB-first).
    pub fn packed_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// Rebuild from packed bytes plus explicit length (inverse of
    /// [`Seq::packed_bytes`]); used by the BAL decoder.
    pub fn from_packed(packed: Vec<u8>, len: usize) -> Self {
        assert!(
            packed.len() == len.div_ceil(4),
            "packed length {} inconsistent with {len} bases",
            packed.len()
        );
        Seq { packed, len }
    }

    /// Hamming distance to another sequence of equal length.
    pub fn hamming(&self, other: &Seq) -> usize {
        assert_eq!(self.len, other.len, "hamming requires equal lengths");
        self.iter()
            .zip(other.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl std::fmt::Display for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for Seq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        Seq::from_bases(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acgt() -> Seq {
        Seq::from_ascii(b"ACGTACGTAC").unwrap()
    }

    #[test]
    fn push_get_roundtrip_across_byte_boundaries() {
        let mut s = Seq::new();
        let pattern = [Base::T, Base::G, Base::C, Base::A, Base::T];
        for i in 0..100 {
            s.push(pattern[i % 5]);
        }
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            assert_eq!(s.get(i), pattern[i % 5], "position {i}");
        }
    }

    #[test]
    fn ascii_roundtrip() {
        let s = acgt();
        assert_eq!(s.to_ascii(), b"ACGTACGTAC");
        assert_eq!(s.to_string(), "ACGTACGTAC");
        assert!(Seq::from_ascii(b"ACGN").is_none());
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut s = acgt();
        s.set(0, Base::T);
        s.set(9, Base::G);
        s.set(4, Base::C);
        assert_eq!(s.to_ascii(), b"TCGTCCGTAG");
    }

    #[test]
    fn subseq_and_bounds() {
        let s = acgt();
        assert_eq!(s.subseq(2, 4).to_ascii(), b"GTAC");
        assert_eq!(s.subseq(0, 0).len(), 0);
        assert_eq!(s.subseq(10, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subseq_past_end_panics() {
        let _ = acgt().subseq(8, 5);
    }

    #[test]
    fn reverse_complement_involution() {
        let s = Seq::from_ascii(b"AACCGGTTACG").unwrap();
        let rc = s.reverse_complement();
        assert_eq!(rc.to_ascii(), b"CGTAACCGGTT");
        assert_eq!(rc.reverse_complement(), s);
    }

    #[test]
    fn gc_content_counts() {
        assert_eq!(Seq::from_ascii(b"GGCC").unwrap().gc_content(), 1.0);
        assert_eq!(Seq::from_ascii(b"AATT").unwrap().gc_content(), 0.0);
        assert_eq!(Seq::from_ascii(b"ACGT").unwrap().gc_content(), 0.5);
        assert_eq!(Seq::new().gc_content(), 0.0);
    }

    #[test]
    fn packed_roundtrip() {
        let s = Seq::from_ascii(b"ACGTTGCAACG").unwrap();
        let packed = s.packed_bytes().to_vec();
        let rebuilt = Seq::from_packed(packed, s.len());
        assert_eq!(rebuilt, s);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_packed_validates_length() {
        let _ = Seq::from_packed(vec![0u8; 2], 12);
    }

    #[test]
    fn hamming_distance() {
        let a = Seq::from_ascii(b"ACGT").unwrap();
        let b = Seq::from_ascii(b"ACGA").unwrap();
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Seq = [Base::A, Base::C].into_iter().collect();
        assert_eq!(s.to_ascii(), b"AC");
    }

    #[test]
    fn memory_is_actually_packed() {
        let mut s = Seq::new();
        for _ in 0..1000 {
            s.push(Base::G);
        }
        assert_eq!(s.packed_bytes().len(), 250);
    }
}
