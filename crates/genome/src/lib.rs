//! # ultravc-genome
//!
//! Genome substrate: nucleotide alphabet, packed sequences, FASTA I/O,
//! deterministic reference-genome generation, variant specifications and
//! Phred-scale conversions.
//!
//! The paper's evaluation runs on SARS-CoV-2 samples; its sequencing data is
//! not redistributable, so [`reference::ReferenceGenome::sars_cov_2_like`]
//! generates a coronavirus-*shaped* reference — 29 903 bp, ~38 % GC, a
//! handful of ORF-like annotated regions — from a seed, and
//! [`variant::TruthSet`] carries the spiked low-frequency variants that the
//! read simulator plants and the caller is graded against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod fasta;
pub mod phred;
pub mod reference;
pub mod sequence;
pub mod variant;

pub use alphabet::Base;
pub use phred::{phred_to_prob, prob_to_phred, Phred};
pub use reference::{GenomeParams, ReferenceGenome};
pub use sequence::Seq;
pub use variant::{Snv, TruthSet, TruthVariant};
