//! Phred quality scores and their probability semantics.
//!
//! A Phred score `Q` asserts the base-call error probability
//! `p = 10^(−Q/10)`. The entire LoFreq model is built on taking that
//! assertion literally: each read contributes a Bernoulli error trial with
//! its own `p_i`, which is why the null distribution is Poisson-binomial
//! rather than plain binomial.

use serde::{Deserialize, Serialize};

/// The standard FASTQ ASCII offset (Sanger / Illumina 1.8+).
pub const PHRED_ASCII_OFFSET: u8 = 33;

/// Highest score the workspace emits; Illumina instruments cap around Q41,
/// and `(126 − 33) = 93` is the representable ceiling.
pub const MAX_PHRED: u8 = 93;

/// A Phred-scaled base quality score.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Phred(pub u8);

impl Phred {
    /// Construct, clamping to the representable range.
    #[inline]
    pub fn new(q: u8) -> Phred {
        Phred(q.min(MAX_PHRED))
    }

    /// The asserted error probability `10^(−Q/10)`.
    #[inline]
    pub fn error_prob(self) -> f64 {
        phred_to_prob(self.0)
    }

    /// FASTQ ASCII character for this score.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        self.0 + PHRED_ASCII_OFFSET
    }

    /// Parse a FASTQ ASCII quality character.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Phred> {
        if (PHRED_ASCII_OFFSET..=PHRED_ASCII_OFFSET + MAX_PHRED).contains(&c) {
            Some(Phred(c - PHRED_ASCII_OFFSET))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Phred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// The compile-time `10^(−q/10)` lookup table backing [`phred_to_prob`]
/// and [`phred_prob_table`].
static PHRED_TABLE: [f64; MAX_PHRED as usize + 1] = build_phred_table();

/// `Q → p`: the error probability asserted by a Phred score.
///
/// Table lookup: this sits on the caller's hottest path (the `O(d)` screen
/// evaluates it once per read per column — hundreds of millions of times on
/// an ultra-deep sample), and a `powf` here would cost as much as the DP
/// work the screen exists to avoid. LoFreq keeps the same table.
#[inline]
pub fn phred_to_prob(q: u8) -> f64 {
    PHRED_TABLE[(q as usize).min(MAX_PHRED as usize)]
}

/// The whole `Q → p` table, indexed by Phred score.
///
/// Quality-binned consumers (the pileup column histogram, the grouped-trial
/// DP kernels) iterate this table once per column instead of calling
/// [`phred_to_prob`] once per read — the representation change that makes
/// per-column cost scale with the number of *distinct* qualities rather
/// than depth.
#[inline]
pub fn phred_prob_table() -> &'static [f64; MAX_PHRED as usize + 1] {
    &PHRED_TABLE
}

/// Compile-time construction of the `10^(−q/10)` table.
const fn build_phred_table() -> [f64; MAX_PHRED as usize + 1] {
    // `powf` is not const; build from the five exact decade values and the
    // ten within-decade multipliers 10^(−j/10), j = 0..9, precomputed to
    // full f64 precision.
    const STEP: [f64; 10] = [
        1.0,
        0.794_328_234_724_281_5,
        0.630_957_344_480_193_2,
        0.501_187_233_627_272_2,
        0.398_107_170_553_497_25,
        0.316_227_766_016_837_94,
        0.251_188_643_150_958,
        0.199_526_231_496_887_96,
        0.158_489_319_246_111_35,
        0.125_892_541_179_416_73,
    ];
    let mut table = [0.0f64; MAX_PHRED as usize + 1];
    let mut q = 0usize;
    while q <= MAX_PHRED as usize {
        let decade = q / 10;
        let within = q % 10;
        // 10^(−decade) exactly, by repeated division.
        let mut scale = 1.0f64;
        let mut i = 0;
        while i < decade {
            scale /= 10.0;
            i += 1;
        }
        table[q] = scale * STEP[within];
        q += 1;
    }
    table
}

/// `p → Q`: the Phred score for an error probability, rounded to the
/// nearest integer and clamped to `[0, MAX_PHRED]`. `p ≤ 0` saturates at the
/// maximum score.
#[inline]
pub fn prob_to_phred(p: f64) -> u8 {
    if p <= 0.0 {
        return MAX_PHRED;
    }
    if p >= 1.0 {
        return 0;
    }
    let q = -10.0 * p.log10();
    q.round().clamp(0.0, MAX_PHRED as f64) as u8
}

/// Phred-scale a p-value for VCF QUAL columns: `−10·log₁₀(p)`, capped so
/// that underflowed p-values still render as a large finite quality.
#[inline]
pub fn phred_scale_pvalue(p: f64) -> f64 {
    const CAP: f64 = 3_000.0; // < −10·log10(f64::MIN_POSITIVE)
    if p <= 0.0 {
        return CAP;
    }
    (-10.0 * p.log10()).clamp(0.0, CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_values() {
        assert!((phred_to_prob(10) - 0.1).abs() < 1e-15);
        assert!((phred_to_prob(20) - 0.01).abs() < 1e-15);
        assert!((phred_to_prob(30) - 0.001).abs() < 1e-15);
        assert_eq!(phred_to_prob(0), 1.0);
    }

    #[test]
    fn prob_phred_roundtrip() {
        for q in 0..=MAX_PHRED {
            assert_eq!(prob_to_phred(phred_to_prob(q)), q, "Q{q}");
        }
    }

    #[test]
    fn prob_to_phred_saturation() {
        assert_eq!(prob_to_phred(0.0), MAX_PHRED);
        assert_eq!(prob_to_phred(-0.5), MAX_PHRED);
        assert_eq!(prob_to_phred(1.0), 0);
        assert_eq!(prob_to_phred(2.0), 0);
    }

    #[test]
    fn ascii_roundtrip() {
        for q in 0..=MAX_PHRED {
            let p = Phred::new(q);
            assert_eq!(Phred::from_ascii(p.to_ascii()), Some(p));
        }
        assert_eq!(Phred::from_ascii(b' '), None); // 32 < offset
        assert_eq!(Phred::from_ascii(127), None);
    }

    #[test]
    fn new_clamps() {
        assert_eq!(Phred::new(200).0, MAX_PHRED);
        assert_eq!(Phred::new(40).0, 40);
    }

    #[test]
    fn qual_char_examples() {
        // 'I' = Q40, '!' = Q0 — the classic FASTQ landmarks.
        assert_eq!(Phred::new(40).to_ascii(), b'I');
        assert_eq!(Phred::new(0).to_ascii(), b'!');
    }

    #[test]
    fn pvalue_scaling() {
        assert!((phred_scale_pvalue(0.01) - 20.0).abs() < 1e-12);
        assert!((phred_scale_pvalue(0.05) - 13.0103).abs() < 1e-3);
        assert_eq!(phred_scale_pvalue(0.0), 3_000.0);
        assert_eq!(phred_scale_pvalue(1.0), 0.0);
        assert_eq!(phred_scale_pvalue(2.0), 0.0);
    }

    #[test]
    fn error_prob_method_agrees() {
        assert_eq!(Phred::new(20).error_prob(), phred_to_prob(20));
    }

    #[test]
    fn table_view_matches_scalar_lookup() {
        let table = phred_prob_table();
        assert_eq!(table.len(), MAX_PHRED as usize + 1);
        for q in 0..=MAX_PHRED {
            assert_eq!(table[q as usize], phred_to_prob(q), "Q{q}");
        }
    }

    #[test]
    fn table_matches_powf_to_ulp() {
        for q in 0..=MAX_PHRED {
            let table = phred_to_prob(q);
            let direct = 10f64.powf(-(q as f64) / 10.0);
            let rel = ((table - direct) / direct).abs();
            assert!(rel < 1e-14, "Q{q}: table {table} vs powf {direct}");
        }
    }
}
