//! Minimal FASTA reading and writing.
//!
//! Enough of the format for the CLI to export synthetic references and for
//! round-trip tests: `>`-headers, wrapped sequence lines, multiple records.
//! Ambiguous bases are rejected on read (this workspace's sequences are
//! strictly ACGT; see [`crate::alphabet::Base`]).

use crate::sequence::Seq;
use std::io::{self, BufRead, Write};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq)]
pub struct FastaRecord {
    /// Header line without the leading `>`.
    pub name: String,
    /// The sequence.
    pub seq: Seq,
}

/// Write records with the given line width (0 = unwrapped).
pub fn write_fasta<W: Write>(
    out: &mut W,
    records: &[FastaRecord],
    line_width: usize,
) -> io::Result<()> {
    for rec in records {
        writeln!(out, ">{}", rec.name)?;
        let ascii = rec.seq.to_ascii();
        if line_width == 0 {
            out.write_all(&ascii)?;
            writeln!(out)?;
        } else {
            for chunk in ascii.chunks(line_width) {
                out.write_all(chunk)?;
                writeln!(out)?;
            }
        }
    }
    Ok(())
}

/// Errors produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data before any header line.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A non-ACGT character in sequence data.
    BadBase {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::BadBase { line, byte } => {
                write!(f, "line {line}: invalid base {:?}", *byte as char)
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parse all records from a reader.
pub fn read_fasta<R: BufRead>(input: R) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<FastaRecord> = None;
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            current = Some(FastaRecord {
                name: name.trim().to_string(),
                seq: Seq::new(),
            });
        } else {
            let rec = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: lineno + 1 })?;
            for &c in line.as_bytes() {
                let base = crate::alphabet::Base::from_ascii(c).ok_or(FastaError::BadBase {
                    line: lineno + 1,
                    byte: c,
                })?;
                rec.seq.push(base);
            }
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_wrapped() {
        let records = vec![
            FastaRecord {
                name: "seq1 description here".to_string(),
                seq: Seq::from_ascii(b"ACGTACGTACGTACGTACGT").unwrap(),
            },
            FastaRecord {
                name: "seq2".to_string(),
                seq: Seq::from_ascii(b"TTTT").unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 7).unwrap();
        let parsed = read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn roundtrip_unwrapped() {
        let records = vec![FastaRecord {
            name: "x".to_string(),
            seq: Seq::from_ascii(b"ACGT").unwrap(),
        }];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 0).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), ">x\nACGT\n");
        assert_eq!(read_fasta(Cursor::new(buf)).unwrap(), records);
    }

    #[test]
    fn lowercase_and_blank_lines_ok() {
        let input = b">s\n\nacgt\nACGT\n\n";
        let recs = read_fasta(Cursor::new(&input[..])).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq.to_ascii(), b"ACGTACGT");
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_fasta(Cursor::new(&b"ACGT\n"[..])).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn bad_base_is_an_error_with_location() {
        let err = read_fasta(Cursor::new(&b">s\nACGN\n"[..])).unwrap_err();
        match err {
            FastaError::BadBase { line, byte } => {
                assert_eq!(line, 2);
                assert_eq!(byte, b'N');
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn empty_input_is_empty_vec() {
        assert!(read_fasta(Cursor::new(&b""[..])).unwrap().is_empty());
    }

    #[test]
    fn empty_record_allowed() {
        let recs = read_fasta(Cursor::new(&b">empty\n>full\nAC\n"[..])).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].seq.is_empty());
        assert_eq!(recs[1].seq.to_ascii(), b"AC");
    }
}
