//! Deterministic reference-genome generation.
//!
//! The paper's datasets align to the Wuhan-Hu-1 SARS-CoV-2 reference
//! (NC_045512.2, 29 903 bp, 38 % GC). That sequence is not bundled here;
//! instead [`ReferenceGenome::sars_cov_2_like`] synthesizes a genome with
//! the same length, base composition and broad structure (ORF-like regions
//! whose local GC varies), from a seed. Every statistical property the
//! caller and its benchmarks depend on — length, composition, positional
//! diversity — is preserved; the actual viral biology is irrelevant to the
//! compute kernels being reproduced.

use crate::alphabet::Base;
use crate::sequence::Seq;
use serde::{Deserialize, Serialize};
use ultravc_stats::rng::Rng;

/// Parameters for synthetic reference generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenomeParams {
    /// Genome length in bases.
    pub length: usize,
    /// Target genome-wide GC fraction.
    pub gc_content: f64,
    /// Length scale (bases) over which local GC content drifts.
    pub gc_block: usize,
    /// Amplitude of local GC drift (absolute fraction).
    pub gc_wobble: f64,
}

impl GenomeParams {
    /// Full-size SARS-CoV-2-like genome: 29 903 bp at 38 % GC.
    pub fn sars_cov_2() -> Self {
        GenomeParams {
            length: 29_903,
            gc_content: 0.38,
            gc_block: 1_000,
            gc_wobble: 0.06,
        }
    }

    /// A small slice (800 bp) for tests and fast benchmark tiers; same
    /// composition as the full genome.
    pub fn tiny() -> Self {
        GenomeParams {
            length: 800,
            gc_content: 0.38,
            gc_block: 200,
            gc_wobble: 0.06,
        }
    }

    /// Arbitrary length at SARS-CoV-2 composition.
    pub fn with_length(length: usize) -> Self {
        GenomeParams {
            length,
            ..GenomeParams::sars_cov_2()
        }
    }
}

impl Default for GenomeParams {
    fn default() -> Self {
        GenomeParams::sars_cov_2()
    }
}

/// An annotated region of the reference (ORF-like), used by examples to
/// report where variants land.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Region name (e.g. `ORF1ab-like`).
    pub name: String,
    /// 0-based inclusive start.
    pub start: usize,
    /// 0-based exclusive end.
    pub end: usize,
}

/// A reference genome: a named sequence plus ORF-like annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceGenome {
    /// Sequence name (FASTA header / VCF CHROM).
    pub name: String,
    /// The sequence itself.
    pub seq: Seq,
    /// ORF-like annotated regions (may be empty for custom references).
    pub regions: Vec<Region>,
}

impl ReferenceGenome {
    /// Wrap an existing sequence.
    pub fn from_seq(name: impl Into<String>, seq: Seq) -> Self {
        ReferenceGenome {
            name: name.into(),
            seq,
            regions: Vec::new(),
        }
    }

    /// Genome length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the genome is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Base at position `pos` (0-based).
    #[inline]
    pub fn base(&self, pos: usize) -> Base {
        self.seq.get(pos)
    }

    /// Generate a SARS-CoV-2-*shaped* reference from a seed.
    ///
    /// Local GC content follows a smooth random walk around the target so
    /// that different genome neighbourhoods present different base mixes to
    /// the caller, as in real data. Annotations mimic the coarse ORF layout
    /// of a coronavirus (one long ORF covering ~2/3, then several short
    /// ones) scaled to the requested length.
    pub fn sars_cov_2_like(params: GenomeParams, seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ REFERENCE_SEED_TAG);
        let mut seq = Seq::with_capacity(params.length);
        let mut local_gc = params.gc_content;
        for i in 0..params.length {
            if i % params.gc_block.max(1) == 0 && i > 0 {
                // Mean-reverting drift keeps local GC near the target.
                let pull = (params.gc_content - local_gc) * 0.5;
                local_gc += pull + rng.normal(0.0, params.gc_wobble / 2.0);
                local_gc = local_gc.clamp(0.05, 0.95);
            }
            let b = if rng.bernoulli(local_gc) {
                if rng.bernoulli(0.5) {
                    Base::G
                } else {
                    Base::C
                }
            } else if rng.bernoulli(0.5) {
                Base::A
            } else {
                Base::T
            };
            seq.push(b);
        }
        let regions = coronavirus_layout(params.length);
        ReferenceGenome {
            name: format!("synthetic-sc2-{seed}"),
            seq,
            regions,
        }
    }

    /// The annotated region containing `pos`, if any.
    pub fn region_at(&self, pos: usize) -> Option<&Region> {
        self.regions.iter().find(|r| pos >= r.start && pos < r.end)
    }
}

/// Coarse coronavirus ORF layout scaled to `length`: fractions taken from
/// the NC_045512.2 annotation.
fn coronavirus_layout(length: usize) -> Vec<Region> {
    let f = |frac: f64| (length as f64 * frac) as usize;
    let spans: [(&str, f64, f64); 6] = [
        ("ORF1ab-like", 0.009, 0.713),
        ("S-like", 0.717, 0.845),
        ("ORF3a-like", 0.849, 0.876),
        ("E/M-like", 0.877, 0.915),
        ("ORF6-8-like", 0.916, 0.942),
        ("N-like", 0.945, 0.987),
    ];
    spans
        .iter()
        .filter(|(_, s, e)| f(*e) > f(*s))
        .map(|(name, s, e)| Region {
            name: (*name).to_string(),
            start: f(*s),
            end: f(*e),
        })
        .collect()
}

/// A fixed tag mixed into reference seeds so a dataset seed and a reference
/// seed with the same numeric value do not produce correlated streams.
const REFERENCE_SEED_TAG: u64 = 0x5a5a_5a5a_c0c0_2222;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 42);
        let b = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 42);
        assert_eq!(a.seq, b.seq);
        let c = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 43);
        assert_ne!(a.seq, c.seq);
    }

    #[test]
    fn length_and_composition() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::sars_cov_2(), 7);
        assert_eq!(g.len(), 29_903);
        let gc = g.seq.gc_content();
        assert!(
            (gc - 0.38).abs() < 0.03,
            "GC content {gc} too far from target 0.38"
        );
    }

    #[test]
    fn tiny_genome_has_regions() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 1);
        assert!(!g.regions.is_empty());
        // ORF1ab-like covers most of the front.
        let r = g.region_at(g.len() / 3).unwrap();
        assert_eq!(r.name, "ORF1ab-like");
        // Regions are within bounds and ordered.
        for w in g.regions.windows(2) {
            assert!(w[0].end <= w[1].start, "regions must not overlap");
        }
        assert!(g.regions.last().unwrap().end <= g.len());
    }

    #[test]
    fn region_lookup_misses_gaps() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::sars_cov_2(), 3);
        // Position 0 precedes the first ORF (fraction 0.009).
        assert!(g.region_at(0).is_none());
    }

    #[test]
    fn from_seq_wraps() {
        let s = Seq::from_ascii(b"ACGT").unwrap();
        let g = ReferenceGenome::from_seq("chrTest", s.clone());
        assert_eq!(g.name, "chrTest");
        assert_eq!(g.len(), 4);
        assert_eq!(g.base(2), Base::G);
        assert!(g.regions.is_empty());
    }

    #[test]
    fn local_gc_varies_but_stays_sane() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::sars_cov_2(), 11);
        let block = 1_000;
        let mut gcs = Vec::new();
        for start in (0..g.len() - block).step_by(block) {
            gcs.push(g.seq.subseq(start, block).gc_content());
        }
        let min = gcs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gcs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.01,
            "local GC should wobble, got flat {min}..{max}"
        );
        assert!(min > 0.15 && max < 0.65, "local GC out of plausible range");
    }
}
