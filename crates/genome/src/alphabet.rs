//! The nucleotide alphabet.

use serde::{Deserialize, Serialize};

/// A canonical nucleotide. Ambiguity codes are represented *outside* this
/// type (as `Option<Base>`): the caller treats `N` and friends as missing
/// observations, exactly like LoFreq skips them in a pileup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in code order — handy for iteration and indexing
    /// per-base tallies.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// The 2-bit code (`A=0, C=1, G=2, T=3`).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decode a 2-bit code. Panics if `code > 3` — encoders in this
    /// workspace can only produce valid codes.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Parse an ASCII nucleotide; lowercase accepted, ambiguity codes and
    /// anything else map to `None`.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Uppercase ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// Whether this is a G or C (for GC-content accounting).
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }

    /// Whether `self → other` is a transition (purine↔purine or
    /// pyrimidine↔pyrimidine). Transitions dominate real SNV spectra and
    /// the simulator's substitution matrix weights them accordingly.
    #[inline]
    pub fn is_transition_to(self, other: Base) -> bool {
        if self == other {
            return false;
        }
        matches!(
            (self, other),
            (Base::A, Base::G) | (Base::G, Base::A) | (Base::C, Base::T) | (Base::T, Base::C)
        )
    }

    /// The three bases different from `self`, in code order.
    pub fn alternatives(self) -> [Base; 3] {
        let mut out = [Base::A; 3];
        let mut i = 0;
        for b in Base::ALL {
            if b != self {
                out[i] = b;
                i += 1;
            }
        }
        out
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn ascii_roundtrip_and_case() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
        assert_eq!(Base::from_ascii(b'X'), None);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn gc_classification() {
        assert!(Base::G.is_gc());
        assert!(Base::C.is_gc());
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
    }

    #[test]
    fn transition_classification() {
        assert!(Base::A.is_transition_to(Base::G));
        assert!(Base::T.is_transition_to(Base::C));
        assert!(!Base::A.is_transition_to(Base::C));
        assert!(!Base::A.is_transition_to(Base::A));
        // Each base has exactly one transition partner.
        for b in Base::ALL {
            let n = Base::ALL.iter().filter(|o| b.is_transition_to(**o)).count();
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn alternatives_are_the_other_three() {
        for b in Base::ALL {
            let alts = b.alternatives();
            assert_eq!(alts.len(), 3);
            assert!(!alts.contains(&b));
            let mut set: Vec<Base> = alts.to_vec();
            set.dedup();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn display_matches_ascii() {
        assert_eq!(Base::A.to_string(), "A");
        assert_eq!(Base::T.to_string(), "T");
    }
}
