//! Variant specifications and truth sets.
//!
//! A [`Snv`] is a single-nucleotide substitution at a reference position; a
//! [`TruthVariant`] adds the intra-host allele frequency at which the read
//! simulator plants it. [`TruthSet`] is what the evaluation harnesses grade
//! call sets against (sensitivity to spiked low-frequency variants, and the
//! upset-plot sharing analysis of the paper's Figure 3).

use crate::alphabet::Base;
use crate::reference::ReferenceGenome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ultravc_stats::rng::Rng;

/// A single-nucleotide variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Snv {
    /// 0-based reference position.
    pub pos: usize,
    /// Reference base at `pos`.
    pub ref_base: Base,
    /// Alternate base observed.
    pub alt_base: Base,
}

impl Snv {
    /// Construct; panics if ref and alt coincide (not a variant).
    pub fn new(pos: usize, ref_base: Base, alt_base: Base) -> Snv {
        assert_ne!(ref_base, alt_base, "SNV must change the base");
        Snv {
            pos,
            ref_base,
            alt_base,
        }
    }
}

impl std::fmt::Display for Snv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 1-based position in display, matching VCF convention.
        write!(f, "{}{}>{}", self.pos + 1, self.ref_base, self.alt_base)
    }
}

/// A planted variant: an [`Snv`] plus the allele frequency the simulator
/// injects it at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthVariant {
    /// The substitution.
    pub snv: Snv,
    /// Intra-host allele frequency in `(0, 1]`.
    pub frequency: f64,
}

/// The ground-truth variant content of one simulated sample.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TruthSet {
    by_pos: BTreeMap<usize, TruthVariant>,
}

impl TruthSet {
    /// Empty truth set.
    pub fn new() -> Self {
        TruthSet::default()
    }

    /// Insert a variant; at most one variant per position (multi-allelic
    /// sites are out of scope, as in the paper). Returns the displaced
    /// variant if the position was already occupied.
    pub fn insert(&mut self, v: TruthVariant) -> Option<TruthVariant> {
        assert!(
            v.frequency > 0.0 && v.frequency <= 1.0,
            "frequency must lie in (0,1], got {}",
            v.frequency
        );
        self.by_pos.insert(v.snv.pos, v)
    }

    /// The variant at `pos`, if any.
    pub fn at(&self, pos: usize) -> Option<&TruthVariant> {
        self.by_pos.get(&pos)
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.by_pos.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.by_pos.is_empty()
    }

    /// Iterate variants in position order.
    pub fn iter(&self) -> impl Iterator<Item = &TruthVariant> {
        self.by_pos.values()
    }

    /// The positions carrying variants, in order.
    pub fn positions(&self) -> Vec<usize> {
        self.by_pos.keys().copied().collect()
    }

    /// Generate a random truth set over a reference.
    ///
    /// `count` variant positions are drawn uniformly without replacement;
    /// alternate bases follow a transition-weighted substitution spectrum
    /// (transitions 4× transversions, as observed in SARS-CoV-2 data);
    /// frequencies are drawn log-uniformly in `[freq_lo, freq_hi]` — the
    /// low-frequency regime the caller exists to detect.
    pub fn random(
        reference: &ReferenceGenome,
        count: usize,
        freq_lo: f64,
        freq_hi: f64,
        rng: &mut Rng,
    ) -> TruthSet {
        Self::random_in_window(reference, count, freq_lo, freq_hi, 0..reference.len(), rng)
    }

    /// [`TruthSet::random`] restricted to a positional window — used to
    /// plant variant *hotspots* (e.g. a cluster of costly columns near the
    /// end of the genome, the load-imbalance scenario of the paper's
    /// Figure 2).
    pub fn random_in_window(
        reference: &ReferenceGenome,
        count: usize,
        freq_lo: f64,
        freq_hi: f64,
        window: std::ops::Range<usize>,
        rng: &mut Rng,
    ) -> TruthSet {
        assert!(
            0.0 < freq_lo && freq_lo <= freq_hi && freq_hi <= 1.0,
            "need 0 < lo ≤ hi ≤ 1"
        );
        assert!(
            window.end <= reference.len() && window.start < window.end,
            "window out of genome bounds"
        );
        assert!(
            count <= window.len(),
            "cannot place {count} variants in a {} bp window",
            window.len()
        );
        let mut set = TruthSet::new();
        while set.len() < count {
            let pos = window.start + rng.index(window.len());
            if set.at(pos).is_some() {
                continue;
            }
            let ref_base = reference.base(pos);
            let alt_base = sample_alt(ref_base, rng);
            let lf = freq_lo.ln() + rng.f64() * (freq_hi.ln() - freq_lo.ln());
            set.insert(TruthVariant {
                snv: Snv::new(pos, ref_base, alt_base),
                frequency: lf.exp(),
            });
        }
        set
    }

    /// Merge another truth set into this one; positions already present
    /// keep their existing variant. Returns how many were newly added.
    pub fn absorb(&mut self, other: &TruthSet) -> usize {
        let mut added = 0;
        for v in other {
            if self.at(v.snv.pos).is_none() {
                self.insert(*v);
                added += 1;
            }
        }
        added
    }
}

impl<'a> IntoIterator for &'a TruthSet {
    type Item = &'a TruthVariant;
    type IntoIter = std::collections::btree_map::Values<'a, usize, TruthVariant>;
    fn into_iter(self) -> Self::IntoIter {
        self.by_pos.values()
    }
}

/// Transition-weighted alternate-base sampling (Ti:Tv = 4:1 per
/// transversion, i.e. 4:2 overall).
fn sample_alt(ref_base: Base, rng: &mut Rng) -> Base {
    let alts = ref_base.alternatives();
    let weights: Vec<f64> = alts
        .iter()
        .map(|a| {
            if ref_base.is_transition_to(*a) {
                4.0
            } else {
                1.0
            }
        })
        .collect();
    alts[rng.discrete(&weights)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::GenomeParams;

    fn reference() -> ReferenceGenome {
        ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 5)
    }

    #[test]
    fn snv_display_is_one_based() {
        let v = Snv::new(0, Base::A, Base::G);
        assert_eq!(v.to_string(), "1A>G");
    }

    #[test]
    #[should_panic(expected = "must change")]
    fn snv_rejects_identity() {
        let _ = Snv::new(0, Base::A, Base::A);
    }

    #[test]
    fn truth_set_insert_and_lookup() {
        let mut t = TruthSet::new();
        let v = TruthVariant {
            snv: Snv::new(10, Base::A, Base::G),
            frequency: 0.05,
        };
        assert!(t.insert(v).is_none());
        assert_eq!(t.len(), 1);
        assert_eq!(t.at(10), Some(&v));
        assert_eq!(t.at(11), None);
        // Replacing at the same position returns the old one.
        let v2 = TruthVariant {
            snv: Snv::new(10, Base::A, Base::T),
            frequency: 0.10,
        };
        assert_eq!(t.insert(v2), Some(v));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn truth_set_rejects_zero_frequency() {
        let mut t = TruthSet::new();
        t.insert(TruthVariant {
            snv: Snv::new(0, Base::A, Base::C),
            frequency: 0.0,
        });
    }

    #[test]
    fn random_truth_set_is_valid_and_deterministic() {
        let g = reference();
        let mut rng1 = Rng::new(77);
        let t1 = TruthSet::random(&g, 20, 0.005, 0.5, &mut rng1);
        let mut rng2 = Rng::new(77);
        let t2 = TruthSet::random(&g, 20, 0.005, 0.5, &mut rng2);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 20);
        for v in &t1 {
            assert_eq!(
                v.snv.ref_base,
                g.base(v.snv.pos),
                "ref base must match genome"
            );
            assert!(v.frequency >= 0.005 && v.frequency <= 0.5);
        }
    }

    #[test]
    fn random_truth_set_prefers_transitions() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(20_000), 9);
        let mut rng = Rng::new(123);
        let t = TruthSet::random(&g, 2_000, 0.01, 0.5, &mut rng);
        let transitions = t
            .iter()
            .filter(|v| v.snv.ref_base.is_transition_to(v.snv.alt_base))
            .count();
        let ratio = transitions as f64 / t.len() as f64;
        // Expected 4/6 ≈ 0.667.
        assert!(
            (ratio - 2.0 / 3.0).abs() < 0.05,
            "transition fraction {ratio} should be ≈ 2/3"
        );
    }

    #[test]
    fn positions_sorted() {
        let g = reference();
        let mut rng = Rng::new(3);
        let t = TruthSet::random(&g, 10, 0.01, 0.1, &mut rng);
        let pos = t.positions();
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        assert_eq!(pos, sorted);
    }
}
