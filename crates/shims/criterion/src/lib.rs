//! In-repo miniature benchmark harness, for fully-offline builds.
//!
//! Mirrors the slice of the `criterion` API the workspace's benches use —
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `sample_size`, `Bencher::iter` — with a simple
//! median-of-samples measurement loop instead of criterion's full
//! statistical machinery. Results print one line per benchmark:
//!
//! ```text
//! group/name/param        median 1.234 ms  (min 1.201 ms, 12 iters/sample)
//! ```
//!
//! `CRITERION_QUICK=1` caps every benchmark at one sample of one iteration,
//! so CI can smoke-test bench targets without paying measurement time.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per sample; iteration counts are calibrated to it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// Identifier for one benchmark within a group: a name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameterless id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
    quick: bool,
}

impl Bencher {
    /// Measure `f`, calling it repeatedly. The return value is passed
    /// through [`std::hint::black_box`] so the computation is not elided.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            self.iters_per_sample = 1;
            return;
        }
        // Calibrate: one untimed warmup call, then scale the per-sample
        // iteration count to the target sample time.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let per_iter = t.elapsed() / iters as u32;
            self.samples.push(per_iter);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    /// Run one benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.label, |b| f(b, input));
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 0,
            quick: self.criterion.quick,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, label);
        report(&full, &bencher, self.throughput);
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            quick: std::env::var_os("CRITERION_QUICK").is_some(),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
            iters_per_sample: 0,
            quick: self.quick,
        };
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut samples = bencher.samples.clone();
    if samples.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let rate = throughput
        .map(|t| {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!("  {:.1} MB/s", per_sec(n) / 1e6),
                Throughput::Elements(n) => format!("  {:.2} Melem/s", per_sec(n) / 1e6),
            }
        })
        .unwrap_or_default();
    println!(
        "{label:<44} median {}  (min {}, {} iters/sample){rate}",
        fmt_duration(median),
        fmt_duration(min),
        bencher.iters_per_sample
    );
}

/// Human-format a duration at benchmark-appropriate precision.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export so bench files can use `criterion::black_box` if they prefer
/// it over `std::hint::black_box`.
pub use std::hint::black_box;

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion { quick: true };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(10)
                .bench_function("one", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_samples() {
        let mut c = Criterion { quick: false };
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3)
                .throughput(Throughput::Elements(1))
                .bench_with_input(BenchmarkId::new("n", 5), &5u64, |b, &n| {
                    b.iter(|| {
                        calls += 1;
                        std::hint::black_box(n * 2)
                    })
                });
        }
        assert!(calls > 3, "warmup + samples ran: {calls}");
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
