//! In-repo stand-in for the `bytes` crate, for fully-offline builds.
//!
//! Provides the small slice of the real API the workspace uses: a
//! cheaply-cloneable immutable [`Bytes`] buffer (reference-counted, so BAL
//! readers on many threads share one allocation), the [`Buf`] cursor trait
//! implemented for `&[u8]`, and the [`BufMut`] writer trait implemented for
//! `Vec<u8>`.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply-cloneable, immutable, shareable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out a sub-range as a new buffer. (The real crate shares the
    /// allocation; a copy has identical semantics for immutable data.)
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[lo..hi].into(),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

/// A cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte. Panics when empty (mirroring the real crate).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume `dst.len()` bytes into `dst`. Panics on underrun.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// A growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_share_and_compare() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[1..], &[2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_ne!(a, Bytes::from_static(b"xyz"));
    }

    #[test]
    fn buf_cursor_over_slice() {
        let data = [1u8, 2, 3, 4];
        let mut buf = &data[..];
        assert_eq!(buf.remaining(), 4);
        assert_eq!(buf.get_u8(), 1);
        let mut two = [0u8; 2];
        buf.copy_to_slice(&mut two);
        assert_eq!(two, [2, 3]);
        assert!(buf.has_remaining());
        assert_eq!(buf.get_u8(), 4);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn bufmut_into_vec() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u64_le(0x0102);
        assert_eq!(out.len(), 9);
        assert_eq!(out[0], 7);
        assert_eq!(out[1], 2);
        assert_eq!(out[2], 1);
    }
}
