//! In-repo stand-in for the `memmap2` crate, for fully-offline builds.
//!
//! Provides the one thing the workspace needs: a read-only, shareable
//! memory map of a whole file ([`Mmap::map`]) that derefs to `&[u8]`.
//!
//! Differences from the real crate, documented so the swap stays honest:
//!
//! * `Mmap::map` is a **safe** `fn` here. The real crate marks it `unsafe`
//!   because another process truncating the mapped file turns reads into
//!   `SIGBUS`; this workspace maps only files it just wrote (benches,
//!   tests) or that the operator hands to the CLI, and the BAL layer
//!   offers a streaming tier for untrusted concurrent-writer scenarios,
//!   so the shim accepts that risk at this boundary instead of spreading
//!   `unsafe` into `#![forbid(unsafe_code)]` crates.
//! * Only the read-only whole-file mapping is implemented — no
//!   `MmapOptions`, no `MmapMut`, no flushes. [`Mmap::advise`] and
//!   [`Mmap::advise_range`] cover exactly the [`Advice`] values the BAL
//!   prefetch planner issues (`Normal`/`Sequential`/`WillNeed`); the real
//!   crate's richer `Advice` enum is not mirrored.
//! * On targets without a known-good raw `mmap` ABI (non-Unix, or
//!   32-bit Unix where `off_t` width varies), it falls back to reading
//!   the file into an owned buffer. Callers see identical semantics,
//!   just without the demand paging.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// Access-pattern hints for [`Mmap::advise`], mirroring the subset of the
/// real crate's `Advice` enum that maps onto `madvise(2)` values shared by
/// every 64-bit Unix this shim's mapped backend admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// No special treatment (`MADV_NORMAL`) — undo a previous hint.
    Normal,
    /// Expect sequential page references (`MADV_SEQUENTIAL`): the kernel
    /// reads ahead aggressively and may drop pages soon after use.
    Sequential,
    /// Expect access in the near future (`MADV_WILLNEED`): the kernel
    /// starts reading the named pages in now, ahead of the first touch.
    WillNeed,
}

/// A read-only memory map of an entire file (or, on fallback targets, an
/// owned copy of its contents). Cheap to share behind an `Arc`; `Send`
/// and `Sync` because the mapping is immutable.
pub struct Mmap {
    inner: imp::Inner,
}

impl Mmap {
    /// Map the whole of `file` read-only. An empty file maps to an empty
    /// slice without touching `mmap(2)` (which rejects zero lengths).
    pub fn map(file: &File) -> io::Result<Mmap> {
        Ok(Mmap {
            inner: imp::Inner::map(file)?,
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.inner.as_slice().len()
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this build's backend issues real `madvise` hints. `false`
    /// on the buffered fallback, where `advise`/`advise_range` accept and
    /// ignore — callers that report "hints were applied" should consult
    /// this instead of inferring it from an `Ok` return.
    pub const fn advice_effective() -> bool {
        imp::ADVICE_EFFECTIVE
    }

    /// Advise the kernel about the expected access pattern of the whole
    /// mapping. A no-op (reporting success) on the buffered fallback
    /// backend, where there are no pages to hint.
    pub fn advise(&self, advice: Advice) -> io::Result<()> {
        self.advise_range(advice, 0, self.len())
    }

    /// Advise the kernel about `[offset, offset + len)` of the mapping.
    /// The start is aligned down to a page boundary internally (as
    /// `madvise(2)` requires); requests outside the mapping are rejected
    /// with `InvalidInput` rather than handed to the kernel. Zero-length
    /// requests succeed trivially.
    pub fn advise_range(&self, advice: Advice, offset: usize, len: usize) -> io::Result<()> {
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= self.len())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "advice range outside mapping")
            })?;
        if len == 0 {
            return Ok(());
        }
        self.inner.advise_range(advice, offset, end - offset)
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mmap({} bytes, {})", self.len(), imp::KIND)
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;
    use std::ptr::NonNull;

    pub const KIND: &str = "mapped";
    pub const ADVICE_EFFECTIVE: bool = true;

    // Raw prototypes from the C library Rust's std already links. Offsets
    // are `off_t`, which is `i64` on every 64-bit Unix this cfg admits.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        fn getpagesize() -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    // madvise advice values shared by Linux and the BSD family (macOS
    // included) — the 64-bit Unix targets this cfg admits.
    const MADV_NORMAL: c_int = 0;
    const MADV_SEQUENTIAL: c_int = 2;
    const MADV_WILLNEED: c_int = 3;

    pub struct Inner {
        ptr: NonNull<u8>,
        len: usize,
        mapped: bool,
    }

    // The mapping is read-only and never aliased mutably.
    unsafe impl Send for Inner {}
    unsafe impl Sync for Inner {}

    impl Inner {
        pub fn map(file: &File) -> io::Result<Inner> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            if len == 0 {
                return Ok(Inner {
                    ptr: NonNull::dangling(),
                    len: 0,
                    mapped: false,
                });
            }
            // SAFETY: length is the file's current size, fd is valid for
            // the duration of the call, and MAP_PRIVATE+PROT_READ gives an
            // immutable view munmap'd in Drop.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            let ptr = NonNull::new(ptr as *mut u8)
                .ok_or_else(|| io::Error::other("mmap returned null"))?;
            Ok(Inner {
                ptr,
                len,
                mapped: true,
            })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping (or a
            // dangling pointer with len 0, which from_raw_parts permits).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }

        /// `madvise` the given sub-range. The caller has bounds-checked
        /// `[offset, offset + len)` against the mapping and guaranteed
        /// `len > 0`; the start is aligned down to a page boundary here
        /// (extending the range leftward, which only ever re-hints bytes
        /// of this same mapping).
        pub fn advise_range(
            &self,
            advice: super::Advice,
            offset: usize,
            len: usize,
        ) -> io::Result<()> {
            debug_assert!(self.mapped, "len > 0 implies a live mapping");
            // SAFETY: no arguments, no side effects.
            let page = unsafe { getpagesize() }.max(1) as usize;
            let aligned = offset - (offset % page);
            let advice = match advice {
                super::Advice::Normal => MADV_NORMAL,
                super::Advice::Sequential => MADV_SEQUENTIAL,
                super::Advice::WillNeed => MADV_WILLNEED,
            };
            // SAFETY: `[aligned, offset + len)` stays inside the live
            // mapping (aligned ≤ offset, and offset + len ≤ self.len was
            // checked by the caller); madvise never mutates page contents
            // for these advice values.
            let rc = unsafe {
                madvise(
                    self.ptr.as_ptr().add(aligned) as *mut c_void,
                    len + (offset - aligned),
                    advice,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            if self.mapped {
                // SAFETY: exactly the region mmap returned; mapped only
                // set when the call succeeded.
                unsafe {
                    munmap(self.ptr.as_ptr() as *mut c_void, self.len);
                }
            }
        }
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
mod imp {
    use std::fs::File;
    use std::io::{self, Read};

    pub const KIND: &str = "buffered";
    pub const ADVICE_EFFECTIVE: bool = false;

    pub struct Inner {
        buf: Vec<u8>,
    }

    impl Inner {
        pub fn map(file: &File) -> io::Result<Inner> {
            let mut buf = Vec::new();
            let mut f = file;
            f.read_to_end(&mut buf)?;
            Ok(Inner { buf })
        }

        pub fn as_slice(&self) -> &[u8] {
            &self.buf
        }

        /// No pages to hint on the buffered backend; accept and ignore.
        pub fn advise_range(
            &self,
            _advice: super::Advice,
            _offset: usize,
            _len: usize,
        ) -> io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-shim-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&data)
            .unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&map[..], &data[..]);
        assert_eq!(map.len(), data.len());
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advice_accepts_in_range_rejects_out_of_range() {
        let path = temp_path("advise");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[3u8; 20_000])
            .unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        for advice in [Advice::Normal, Advice::Sequential, Advice::WillNeed] {
            map.advise(advice).unwrap();
            map.advise_range(advice, 5_000, 10_000).unwrap();
            // Unaligned starts are aligned down internally.
            map.advise_range(advice, 4097, 123).unwrap();
            map.advise_range(advice, 19_999, 0).unwrap();
        }
        assert!(map.advise_range(Advice::WillNeed, 19_999, 2).is_err());
        assert!(map.advise_range(Advice::WillNeed, usize::MAX, 2).is_err());
        // Contents unchanged by hinting.
        assert!(map.iter().all(|&b| b == 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advice_on_empty_mapping_is_noop() {
        let path = temp_path("advise-empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        map.advise(Advice::Sequential).unwrap();
        assert!(map.advise_range(Advice::WillNeed, 0, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[7u8; 4096])
            .unwrap();
        let map = std::sync::Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || {
                    assert!(map.iter().all(|&b| b == 7));
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }
}
