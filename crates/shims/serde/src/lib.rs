//! In-repo stand-in for `serde`, for fully-offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! as an interface commitment, but nothing inside the workspace performs
//! serde serialization at runtime. This shim provides the two marker traits
//! and re-exports no-op derive macros under the same names (trait and macro
//! share a path, exactly as in real serde), so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! Swapping in the real crates is a two-line change in `Cargo.toml`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
