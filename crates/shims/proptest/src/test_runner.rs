//! Configuration and the deterministic per-test RNG.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator, seeded deterministically from the test name so
/// failures reproduce across runs. `PROPTEST_SEED=<u64>` perturbs every
/// test's stream at once (for soak testing).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Deterministic seed from a test name plus the optional env override.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h = h.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, 1]` (both endpoints reachable).
    pub fn f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }

    /// Uniform in `[0, n)` for `n > 0`, by rejection (no modulo bias).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in the inclusive span `[lo, hi]` over i128 arithmetic.
    pub fn span_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty sampling range");
        let width = (hi - lo) as u128 + 1;
        if width > u64::MAX as u128 {
            // Full-domain span: one raw draw suffices.
            return lo + self.next_u64() as i128;
        }
        lo + self.below(width as u64) as i128
    }
}

/// Debug-format a value, truncated so huge vectors stay readable.
pub fn truncate_debug<T: std::fmt::Debug>(value: &T) -> String {
    let mut s = format!("{value:?}");
    const LIMIT: usize = 260;
    if s.len() > LIMIT {
        let mut cut = LIMIT;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push_str("… (truncated)");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::new(1);
        for n in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::new(2);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            let w = r.f64_inclusive();
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn truncation_bounds_output() {
        let big = vec![0.123456789f64; 10_000];
        let s = truncate_debug(&big);
        assert!(s.len() < 300);
        assert!(s.ends_with("(truncated)"));
        assert_eq!(truncate_debug(&42), "42");
    }
}
