//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Strategy choosing uniformly among the given options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let mut rng = TestRng::new(11);
        let s = select(vec![b'A', b'C', b'G', b'T']);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
