//! The [`Strategy`] trait and the built-in generators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.span_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.span_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.f64_inclusive() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

// `impl Strategy` values are frequently produced by helper functions and
// then passed by value into `prop::collection::vec`; boxed strategies are
// not needed in this workspace.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = TestRng::new(3);
        let mut saw_lo = false;
        for _ in 0..2000 {
            let v = (0u8..=3).generate(&mut rng);
            assert!(v <= 3);
            saw_lo |= v == 0;
        }
        assert!(saw_lo);
        for _ in 0..100 {
            let v = (5u32..6).generate(&mut rng);
            assert_eq!(v, 5);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map() {
        let mut rng = TestRng::new(4);
        let s = (0u32..10, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((0.0..11.0).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn vec_of_tuple_strategy() {
        let mut rng = TestRng::new(5);
        let s = collection::vec((0u32..4, any::<bool>()), 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (n, _) in v {
                assert!(n < 4);
            }
        }
    }
}
