//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Lengths acceptable for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::new(9);
        let s = vec(0u8..=255, 3..7);
        let mut seen = [false; 7];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[3] && seen[6], "both length extremes reachable");
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::new(10);
        let s = vec(0.0f64..1.0, 4usize);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }
}
