//! In-repo miniature property-testing harness, for fully-offline builds.
//!
//! Implements the slice of the `proptest` surface the workspace's test
//! suites use: the [`Strategy`] trait with generators for numeric ranges,
//! tuples, collections ([`collection::vec`]) and sampling
//! ([`sample::select`]), the [`proptest!`]/[`prop_assert!`] macro family,
//! and a deterministic per-test RNG (override with `PROPTEST_SEED`).
//!
//! Differences from real proptest: no shrinking (failing inputs are printed
//! as generated) and no persistence of failing cases. For the workspace's
//! purposes — randomized invariant checks in CI — neither is load-bearing.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works as in proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob import test files start with.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Mirrors proptest's macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0.0..1.0f64, 1..50)) {
///         prop_assert!(v.len() < 50);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!("\n    ", stringify!($arg), " = "));
                            s.push_str(&$crate::test_runner::truncate_debug(&$arg));
                        )+
                        s
                    };
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "property `{}` failed at case {} of {}: {}\n  inputs:{}",
                            stringify!($name), case + 1, cfg.cases, msg, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(::std::format!(
                "{}: `{:?}` != `{:?}`",
                ::std::format!($($fmt)*),
                lhs,
                rhs
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}
