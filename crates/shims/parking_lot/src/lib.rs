//! In-repo stand-in for `parking_lot`, for fully-offline builds.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: the
//! lock methods return guards directly. A poisoned std lock (a thread
//! panicked while holding it) is surfaced by continuing with the inner
//! data, matching parking_lot's behaviour of not poisoning at all.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    /// parking_lot does not poison: after a panic while holding the
    /// lock, `lock()` must hand back the inner data, exactly like
    /// recovering a std poison error with `PoisonError::into_inner`.
    #[test]
    fn mutex_poison_recovery_matches_std_into_inner() {
        let shim = std::sync::Arc::new(Mutex::new(1));
        let std_m = std::sync::Arc::new(std::sync::Mutex::new(1));
        {
            let (shim, std_m) = (shim.clone(), std_m.clone());
            let _ = std::thread::spawn(move || {
                let _g1 = shim.lock();
                let _g2 = std_m.lock().unwrap();
                panic!("poison both locks");
            })
            .join();
        }
        // std reports the poison; recovery exposes the same data the
        // shim now hands out without ceremony.
        let std_err = std_m.lock().expect_err("std lock must be poisoned");
        assert_eq!(*std_err.into_inner(), 1);
        assert_eq!(*shim.lock(), 1, "shim must keep serving the data");
        *shim.lock() += 1;
        let shim = std::sync::Arc::try_unwrap(shim).expect("sole owner");
        assert_eq!(shim.into_inner(), 2, "into_inner must also recover");
    }

    #[test]
    fn rwlock_poison_recovery_keeps_serving() {
        let l = std::sync::Arc::new(RwLock::new(5));
        {
            let l = l.clone();
            let _ = std::thread::spawn(move || {
                let _g = l.write();
                panic!("poison the rwlock");
            })
            .join();
        }
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    /// Contended increments through the shim must serialize exactly like
    /// std's mutex: no lost updates, identical final counts.
    #[test]
    fn mutex_contended_parity_with_std() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 500;
        let shim = std::sync::Arc::new(Mutex::new(0u64));
        let std_m = std::sync::Arc::new(std::sync::Mutex::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (shim, std_m) = (shim.clone(), std_m.clone());
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        *shim.lock() += 1;
                        *std_m.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer");
        }
        let want = (THREADS * ROUNDS) as u64;
        assert_eq!(*shim.lock(), want, "shim lost updates under contention");
        assert_eq!(*std_m.lock().unwrap(), want);
    }

    /// Writers are exclusive against readers and each other under
    /// contention; a torn or lost write would break the invariant that
    /// both halves of the pair always agree.
    #[test]
    fn rwlock_contended_writer_exclusion() {
        const WRITERS: usize = 3;
        const ROUNDS: usize = 300;
        let l = std::sync::Arc::new(RwLock::new((0u64, 0u64)));
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        let mut g = l.write();
                        g.0 += 1;
                        g.1 += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        let g = l.read();
                        assert_eq!(g.0, g.1, "observed a torn write");
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().expect("rwlock worker");
        }
        let g = l.read();
        assert_eq!(
            (g.0, g.1),
            ((WRITERS * ROUNDS) as u64, (WRITERS * ROUNDS) as u64)
        );
    }
}
