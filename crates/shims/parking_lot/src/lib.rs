//! In-repo stand-in for `parking_lot`, for fully-offline builds.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: the
//! lock methods return guards directly. A poisoned std lock (a thread
//! panicked while holding it) is surfaced by continuing with the inner
//! data, matching parking_lot's behaviour of not poisoning at all.

use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
