//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds fully offline, so the real `serde_derive` is not
//! available. Nothing in the workspace serializes through serde at runtime
//! (the derives exist so downstream users *could* plug real serde in), so
//! the derives here accept the input — including `#[serde(...)]` field
//! attributes — and emit no code.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts a `#[derive(Serialize)]` invocation and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts a `#[derive(Deserialize)]` invocation and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
