//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (read simulation, quality
//! sampling, workload generation) draws from this generator so that a single
//! `u64` seed reproduces an entire experiment bit-for-bit, regardless of
//! thread count. The core is Xoshiro256++ seeded through SplitMix64 — the
//! standard recommendation of Blackman & Vigna — implemented locally so the
//! substrate has no RNG dependency to drift underneath it.

/// Xoshiro256++ generator with SplitMix64 seeding and domain-specific
/// samplers.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is valid; the
    /// SplitMix64 expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator; used to give each simulated
    /// dataset / thread its own stream while staying reproducible.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value (Xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (no modulo bias).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller with caching).
    pub fn gauss(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.gauss()
    }

    /// Poisson deviate.
    ///
    /// Knuth's product method for small `λ`; for `λ ≥ 30` the transformed
    /// rejection method with squeeze (Hörmann's PTRS) keeps cost `O(1)`.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0 && lambda.is_finite(), "λ must be finite, ≥ 0");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut prod = self.f64();
            let mut n = 0u64;
            while prod > limit {
                prod *= self.f64();
                n += 1;
            }
            n
        } else {
            self.poisson_ptrs(lambda)
        }
    }

    /// Hörmann's PTRS transformed-rejection Poisson sampler for large λ.
    fn poisson_ptrs(&mut self, lambda: f64) -> u64 {
        let slam = lambda.sqrt();
        let loglam = lambda.ln();
        let b = 0.931 + 2.53 * slam;
        let a = -0.059 + 0.02483 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let vr = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u = self.f64() - 0.5;
            let v = self.f64();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
            if us >= 0.07 && v <= vr && k >= 0.0 {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let k_u = k as u64;
            let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
            let rhs = -lambda + k * loglam - crate::specfun::ln_factorial(k_u);
            if lhs <= rhs {
                return k_u;
            }
        }
    }

    /// Binomial deviate. Direct Bernoulli summation for small `n`; normal
    /// approximation with rounding plus a rejection polish would be overkill
    /// here, so large `n` uses the Poisson/normal split by `np` variance —
    /// accuracy is sufficient for workload generation (never for inference).
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
        if p == 0.0 || n == 0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        if n <= 64 {
            let mut c = 0;
            for _ in 0..n {
                if self.bernoulli(p) {
                    c += 1;
                }
            }
            return c;
        }
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let draw = self.normal(mean, sd).round();
        draw.clamp(0.0, n as f64) as u64
    }

    /// Sample an index from an explicit discrete distribution given as
    /// (unnormalized) non-negative weights. Linear scan — callers with hot
    /// loops should pre-build a [`AliasTable`].
    pub fn discrete(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut t = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Walker alias table for `O(1)` sampling from a fixed discrete
/// distribution; used by the read simulator for base-substitution matrices
/// drawn millions of times per dataset.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            prob[s] = 1.0; // numerical leftovers
        }
        AliasTable { prob, alias }
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = Rng::new(7);
        let mut root2 = Rng::new(7);
        let mut c1 = root1.fork(5);
        let mut c2 = root2.fork(5);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = Rng::new(7).fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::new(11);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        let expect = n as f64 / 7.0;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Rng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.range_u64(10, 12) {
                10 => saw_lo = true,
                12 => saw_hi = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gauss_moments() {
        let mut rng = Rng::new(99);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.gauss();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = Rng::new(17);
        let lambda = 3.7;
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.poisson(lambda) as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = Rng::new(23);
        let lambda = 800.0;
        let n = 30_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.poisson(lambda) as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - lambda).abs() / lambda < 0.01, "mean {mean}");
        assert!((var - lambda).abs() / lambda < 0.05, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = Rng::new(1);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn binomial_bounds_and_mean() {
        let mut rng = Rng::new(31);
        let (n, p) = (40u64, 0.25);
        let trials = 50_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = rng.binomial(n, p);
            assert!(x <= n);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert_eq!(rng.binomial(10, 0.0), 0);
        assert_eq!(rng.binomial(10, 1.0), 10);
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = Rng::new(41);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.discrete(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn alias_table_matches_linear_sampling() {
        let w = [0.1, 0.2, 0.3, 0.4];
        let table = AliasTable::new(&w);
        let mut rng = Rng::new(53);
        let mut counts = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = w[i] * n as f64;
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "outcome {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(61);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
