//! The Poisson distribution.
//!
//! This is the approximating distribution of the paper: with per-read error
//! probabilities `p_i`, the Hodges–Le Cam theorem says the Poisson with
//! `λ = Σ p_i` approximates the Poisson-binomial, with total-variation error
//! bounded by `2 Σ p_i²`. The right tail [`Poisson::sf`] is the `O(d)`
//! screening statistic computed before any exact dynamic program runs.

use crate::specfun::{gamma_p, gamma_q, ln_factorial};
use crate::{Result, StatsError};

/// Poisson distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Construct with rate `λ ≥ 0`.
    pub fn new(lambda: f64) -> Result<Self> {
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(StatsError::Domain {
                what: "Poisson::new",
                msg: format!("λ must be finite and ≥ 0, got {lambda}"),
            });
        }
        Ok(Poisson { lambda })
    }

    /// The rate parameter.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean of the distribution (equal to `λ`).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance of the distribution (equal to `λ`).
    #[inline]
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Probability mass `Pr[X = k]`, computed in log space for stability at
    /// large `λ` and `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Natural log of the probability mass function.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        -self.lambda + k as f64 * self.lambda.ln() - ln_factorial(k)
    }

    /// Cumulative distribution `Pr[X ≤ k] = Q(k+1, λ)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return 1.0;
        }
        gamma_q(k as f64 + 1.0, self.lambda).expect("arguments validated at construction")
    }

    /// Survival function `Pr[X ≥ k] = P(k, λ)` — the right tail *including*
    /// `k`, matching the paper's `p = Σ_{j≥K} Pr[X = j]` convention.
    ///
    /// Note this is `Pr[X ≥ k]`, not the more common `Pr[X > k]`; LoFreq's
    /// test asks for at least `K` errors.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if self.lambda == 0.0 {
            return 0.0;
        }
        gamma_p(k as f64, self.lambda).expect("arguments validated at construction")
    }

    /// Smallest `k` with `cdf(k) ≥ q` (quantile function). Bracketed search
    /// over the gamma tail; `O(log λ)` probes.
    pub fn quantile(&self, q: f64) -> Result<u64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::Domain {
                what: "Poisson::quantile",
                msg: format!("q must lie in [0,1], got {q}"),
            });
        }
        if q == 0.0 || self.lambda == 0.0 {
            return Ok(0);
        }
        // Exponential search for an upper bracket, then binary search.
        let mut hi = (self.lambda + 10.0 * self.lambda.sqrt() + 10.0) as u64;
        while self.cdf(hi) < q {
            hi = hi.saturating_mul(2).max(hi + 1);
            if hi > 1 << 60 {
                return Err(StatsError::NoConvergence {
                    what: "Poisson::quantile",
                    iters: 60,
                });
            }
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(4.2).unwrap();
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-12), "total {total}");
    }

    #[test]
    fn cdf_matches_partial_sums() {
        let d = Poisson::new(7.3).unwrap();
        let mut acc = 0.0;
        for k in 0..40 {
            acc += d.pmf(k);
            assert!(
                close(d.cdf(k), acc, 1e-10),
                "k={k}: cdf {} vs sum {acc}",
                d.cdf(k)
            );
        }
    }

    #[test]
    fn sf_is_inclusive_right_tail() {
        let d = Poisson::new(2.5).unwrap();
        for k in 0..20u64 {
            let direct: f64 = (k..200).map(|j| d.pmf(j)).sum();
            assert!(
                close(d.sf(k), direct, 1e-10),
                "k={k}: sf {} vs {direct}",
                d.sf(k)
            );
        }
        assert_eq!(d.sf(0), 1.0);
    }

    #[test]
    fn sf_plus_cdf_identity() {
        // Pr[X ≥ k] + Pr[X ≤ k−1] = 1.
        let d = Poisson::new(123.4).unwrap();
        for k in [1u64, 5, 100, 123, 200, 400] {
            let total = d.sf(k) + d.cdf(k - 1);
            assert!(close(total, 1.0, 1e-10), "k={k}: {total}");
        }
    }

    #[test]
    fn zero_lambda_degenerate() {
        let d = Poisson::new(0.0).unwrap();
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.pmf(3), 0.0);
        assert_eq!(d.cdf(0), 1.0);
        assert_eq!(d.sf(1), 0.0);
        assert_eq!(d.quantile(0.99).unwrap(), 0);
    }

    #[test]
    fn large_lambda_is_stable() {
        // λ in the ultra-deep regime: Σ p_i over a million reads at Q20 is ~1e4.
        let d = Poisson::new(1e4).unwrap();
        let sf_at_mean = d.sf(10_000);
        assert!(
            sf_at_mean > 0.45 && sf_at_mean < 0.55,
            "tail at mean should be ≈ 1/2, got {sf_at_mean}"
        );
        assert!(d.sf(11_000) < 1e-15);
        assert!(d.sf(9_000) > 1.0 - 1e-15);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Poisson::new(15.0).unwrap();
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.9999] {
            let k = d.quantile(q).unwrap();
            assert!(d.cdf(k) >= q);
            if k > 0 {
                assert!(d.cdf(k - 1) < q);
            }
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(1.0).unwrap().quantile(1.5).is_err());
    }
}
