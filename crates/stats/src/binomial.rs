//! The binomial distribution and Fisher's exact test.
//!
//! LoFreq's post-call filtering tests strand bias by asking whether the
//! variant-supporting reads are distributed across forward/reverse strands
//! consistently with the reference-supporting reads — a 2×2 contingency
//! problem answered by Fisher's exact test on the hypergeometric
//! distribution. Both live here.

use crate::specfun::{beta_inc, ln_choose};
use crate::{Result, StatsError};

/// Binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Construct with `n` trials and success probability `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::Domain {
                what: "Binomial::new",
                msg: format!("p must lie in [0,1], got {p}"),
            });
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Log probability mass `ln Pr[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Probability mass `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution `Pr[X ≤ k] = I_{1−p}(n−k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        beta_inc((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
            .expect("arguments validated at construction")
    }

    /// Survival function `Pr[X ≥ k]` (inclusive right tail, matching the
    /// LoFreq convention used throughout the workspace).
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        beta_inc(k as f64, (self.n - k + 1) as f64, self.p)
            .expect("arguments validated at construction")
    }
}

/// Result of a Fisher exact test on a 2×2 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherExact {
    /// Two-sided p-value (sum of all tables with pmf ≤ observed pmf).
    pub two_sided: f64,
    /// Left tail `Pr[X ≤ a]` under the hypergeometric null.
    pub less: f64,
    /// Right tail `Pr[X ≥ a]` under the hypergeometric null.
    pub greater: f64,
}

/// Fisher's exact test on the table `[[a, b], [c, d]]`.
///
/// For strand bias: `a` = variant reads on forward strand, `b` = variant on
/// reverse, `c` = reference on forward, `d` = reference on reverse.
pub fn fisher_exact(a: u64, b: u64, c: u64, d: u64) -> FisherExact {
    let row1 = a + b;
    let col1 = a + c;
    let n = a + b + c + d;
    if n == 0 {
        return FisherExact {
            two_sided: 1.0,
            less: 1.0,
            greater: 1.0,
        };
    }
    // Support of the hypergeometric: max(0, row1+col1−n) ≤ x ≤ min(row1, col1).
    let lo = row1.saturating_add(col1).saturating_sub(n);
    let hi = row1.min(col1);
    let ln_pmf =
        |x: u64| -> f64 { ln_choose(col1, x) + ln_choose(n - col1, row1 - x) - ln_choose(n, row1) };
    let observed = ln_pmf(a);
    let mut less = 0.0;
    let mut greater = 0.0;
    let mut two = 0.0;
    // Tolerance guards against ties broken by roundoff, mirroring R's
    // fisher.test behaviour (relative slack 1e−7).
    let cutoff = observed + 1e-7;
    for x in lo..=hi {
        let lp = ln_pmf(x);
        let p = lp.exp();
        if x <= a {
            less += p;
        }
        if x >= a {
            greater += p;
        }
        if lp <= cutoff {
            two += p;
        }
    }
    FisherExact {
        two_sided: two.min(1.0),
        less: less.min(1.0),
        greater: greater.min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-30)
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Binomial::new(25, 0.3).unwrap();
        let total: f64 = (0..=25).map(|k| d.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-12), "{total}");
    }

    #[test]
    fn cdf_matches_partial_sums() {
        let d = Binomial::new(30, 0.42).unwrap();
        let mut acc = 0.0;
        for k in 0..=30 {
            acc += d.pmf(k);
            assert!(close(d.cdf(k), acc, 1e-9), "k={k}");
        }
    }

    #[test]
    fn sf_is_inclusive() {
        let d = Binomial::new(20, 0.1).unwrap();
        for k in 0..=21u64 {
            let direct: f64 = (k..=20).map(|j| d.pmf(j)).sum();
            assert!(
                close(d.sf(k), direct, 1e-9),
                "k={k}: {} vs {direct}",
                d.sf(k)
            );
        }
    }

    #[test]
    fn degenerate_p_values() {
        let zero = Binomial::new(10, 0.0).unwrap();
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.sf(1), 0.0);
        assert_eq!(zero.cdf(0), 1.0);
        let one = Binomial::new(10, 1.0).unwrap();
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.sf(10), 1.0);
        assert_eq!(one.cdf(9), 0.0);
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Binomial::new(5, -0.1).is_err());
        assert!(Binomial::new(5, 1.1).is_err());
    }

    #[test]
    fn fisher_balanced_table_not_significant() {
        let r = fisher_exact(5, 5, 50, 50);
        assert!(r.two_sided > 0.99, "{:?}", r);
    }

    #[test]
    fn fisher_skewed_table_significant() {
        // All 10 variant reads on one strand while reference is balanced.
        let r = fisher_exact(10, 0, 50, 50);
        assert!(r.two_sided < 0.01, "{:?}", r);
        assert!(r.greater < 0.01);
    }

    #[test]
    fn fisher_reference_value() {
        // Classic tea-tasting table [[3,1],[1,3]]: two-sided p ≈ 0.4857.
        let r = fisher_exact(3, 1, 1, 3);
        assert!(close(r.two_sided, 0.485_714_285_714_285_7, 1e-9), "{:?}", r);
        // One-sided (greater) = 0.242857...
        assert!(close(r.greater, 0.242_857_142_857_142_85, 1e-9), "{:?}", r);
    }

    #[test]
    fn fisher_tails_cover_distribution() {
        // less + greater = 1 + Pr[X = a].
        let (a, b, c, d) = (4u64, 6, 9, 3);
        let r = fisher_exact(a, b, c, d);
        let row1 = a + b;
        let col1 = a + c;
        let n = a + b + c + d;
        let pa = (ln_choose(col1, a) + ln_choose(n - col1, row1 - a) - ln_choose(n, row1)).exp();
        assert!(close(r.less + r.greater, 1.0 + pa, 1e-9));
    }

    #[test]
    fn fisher_empty_and_degenerate_tables() {
        assert_eq!(fisher_exact(0, 0, 0, 0).two_sided, 1.0);
        let r = fisher_exact(0, 10, 0, 10);
        assert!(r.two_sided > 0.999);
    }
}
