//! Complex FFT: iterative radix-2 Cooley–Tukey plus Bluestein's chirp-z
//! algorithm for arbitrary transform lengths.
//!
//! The DFT-CF exact method for the Poisson-binomial (Hong 2013) requires a
//! length-`d+1` inverse DFT where `d` is the pileup depth — almost never a
//! power of two — so Bluestein's reduction to a convolution of padded
//! power-of-two transforms is load-bearing here, not a nicety.

use std::f64::consts::PI;

/// A complex number in rectangular form. Local and minimal on purpose: the
/// workspace needs exactly the operations the FFT and characteristic-function
/// evaluations use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    #[inline]
    pub const fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// The multiplicative identity.
    #[inline]
    pub const fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place forward FFT; `data.len()` must be a power of two.
pub fn fft_pow2(data: &mut [Complex]) {
    transform_pow2(data, false);
}

/// In-place inverse FFT (including the `1/n` normalization);
/// `data.len()` must be a power of two.
pub fn ifft_pow2(data: &mut [Complex]) {
    transform_pow2(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

fn transform_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::one();
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length via Bluestein's algorithm.
///
/// Returns `X_k = Σ_j x_j e^{-2πi jk / n}`.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    bluestein(input, false)
}

/// Inverse DFT of arbitrary length (with `1/n` normalization) via Bluestein.
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len() as f64;
    bluestein(input, true)
        .into_iter()
        .map(|x| x.scale(1.0 / n))
        .collect()
}

/// Bluestein's chirp-z transform: express a length-`n` DFT as a circular
/// convolution, evaluated via zero-padded power-of-two FFTs.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        transform_pow2(&mut data, inverse);
        return data;
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp factors w_j = e^{sign·πi j²/n}. Reduce j² mod 2n to keep the
    // angle argument small (j² overflows f64 precision for large j).
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            let j2 = (j as u128 * j as u128) % (2 * n as u128);
            Complex::cis(sign * PI * j2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::zero(); m];
    let mut b = vec![Complex::zero(); m];
    for j in 0..n {
        a[j] = input[j] * chirp[j];
        b[j] = chirp[j].conj();
    }
    // Mirror for the circular convolution kernel.
    for j in 1..n {
        b[m - j] = chirp[j].conj();
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = *x * *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|j| a[j] * chirp[j]).collect()
}

/// Naive `O(n²)` DFT; reference implementation for tests and a fallback for
/// very small transforms where FFT overhead dominates.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (j, &x) in input.iter().enumerate() {
                let angle = -2.0 * PI * (j as f64) * (k as f64) / n as f64;
                acc = acc + x * Complex::cis(angle);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(got: &[Complex], want: &[Complex], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!((*g - *w).abs() < tol, "index {i}: got {g:?}, want {w:?}");
        }
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::cis(PI / 2.0).im - 1.0).abs() < 1e-15);
        assert!((a.abs() - 5.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::zero(); 8];
        data[0] = Complex::one();
        fft_pow2(&mut data);
        for x in &data {
            assert!((*x - Complex::one()).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_roundtrip_pow2() {
        let input: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut data = input.clone();
        fft_pow2(&mut data);
        ifft_pow2(&mut data);
        assert_vec_close(&data, &input, 1e-12);
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        let input: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * i) as f64 * 0.1))
            .collect();
        let mut fast = input.clone();
        fft_pow2(&mut fast);
        let slow = dft_naive(&input);
        assert_vec_close(&fast, &slow, 1e-10);
    }

    #[test]
    fn bluestein_matches_naive_dft_odd_lengths() {
        for &n in &[1usize, 2, 3, 5, 7, 12, 13, 100, 101] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let fast = dft(&input);
            let slow = dft_naive(&input);
            assert_vec_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn idft_inverts_dft_arbitrary_length() {
        for &n in &[3usize, 17, 31, 57, 300] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new(1.0 / (1.0 + i as f64), (i % 5) as f64))
                .collect();
            let back = idft(&dft(&input));
            assert_vec_close(&back, &input, 1e-9 * n as f64);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 37;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).cos(), 0.0))
            .collect();
        let spec = dft(&input);
        let time_energy: f64 = input.iter().map(|x| x.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_element() {
        assert!(dft(&[]).is_empty());
        let one = dft(&[Complex::new(4.2, -1.0)]);
        assert_vec_close(&one, &[Complex::new(4.2, -1.0)], 1e-15);
    }

    #[test]
    fn large_bluestein_stays_accurate() {
        // Angle reduction mod 2n must keep j² chirps accurate at sizes in the
        // pileup-depth range.
        let n = 10_001;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i * 7) % 13) as f64, 0.0))
            .collect();
        let back = idft(&dft(&input));
        for (i, (g, w)) in back.iter().zip(input.iter()).enumerate() {
            assert!((*g - *w).abs() < 1e-6, "index {i}");
        }
    }
}
