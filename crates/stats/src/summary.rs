//! Streaming summary statistics and histograms for the benchmark harnesses.
//!
//! Criterion handles the microbenchmarks; the table/figure harnesses need
//! their own light-weight accumulators to report means, variances and
//! quantiles of e.g. per-column kernel times and per-thread busy spans
//! without storing gigabytes of samples.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel reduction of per-thread stats).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create with `bins` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let last = self.bins.len() - 1;
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Bucket counts (not including under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bucket `i`.
    pub fn mid(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

/// Exact quantiles over a retained sample (used where sample counts are
/// modest, e.g. per-column timings in a harness run).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QuantileSketch {
    data: Vec<f64>,
    sorted: bool,
}

impl QuantileSketch {
    /// Fresh empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// The `q`-quantile (nearest-rank with linear interpolation);
    /// `None` when empty or `q` outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.data.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if !self.sorted {
            self.data
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile sketch"));
            self.sorted = true;
        }
        let pos = q * (self.data.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.data[lo] * (1.0 - frac) + self.data[hi] * frac)
    }

    /// Median shorthand.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn empty_welford_is_sane() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 5.0, 9.999, -1.0, 10.0, 100.0] {
            h.push(x);
        }
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert!((h.mid(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid histogram bounds")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn quantile_sketch_exact_values() {
        let mut s = QuantileSketch::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.25), Some(2.0));
        // Interpolated quantile.
        let q = s.quantile(0.1).unwrap();
        assert!((q - 1.4).abs() < 1e-12, "{q}");
    }

    #[test]
    fn quantile_sketch_empty_and_bad_q() {
        let mut s = QuantileSketch::new();
        assert_eq!(s.median(), None);
        s.push(1.0);
        assert_eq!(s.quantile(-0.1), None);
        assert_eq!(s.quantile(1.1), None);
    }
}
