//! # ultravc-stats
//!
//! Numerics substrate for the `ultravc` workspace: the statistical machinery
//! behind LoFreq-style low-frequency variant calling, implemented from
//! scratch (no GSL, no external math crates).
//!
//! The centerpiece is the [`poisson_binomial`] module: the distribution of a
//! sum of independent, non-identically distributed Bernoulli trials, which
//! models the number of sequencing errors in a pileup column when each read
//! carries its own error probability derived from its Phred quality score.
//! Kille et al. (2021) accelerate LoFreq by *approximating* the right tail of
//! this distribution with a Poisson tail ([`approx::poisson_tail`]) and only
//! falling back to the exact `O(d·K)` dynamic program when the approximation
//! cannot safely exclude significance.
//!
//! Module map:
//!
//! * [`specfun`] — log-gamma, regularized incomplete gamma, incomplete beta,
//!   erf/erfc; the foundation for every closed-form CDF here.
//! * [`poisson`], [`normal`], [`binomial`] — classic distributions built on
//!   [`specfun`], including the Fisher exact test used for strand-bias
//!   filtering.
//! * [`poisson_binomial`] — exact kernels: full `O(d²)` DP, tail-pruned
//!   `O(d·K)` DP, the early-exit DP LoFreq ships, and the DFT-CF method of
//!   Hong (2013) built on the in-house [`fft`].
//! * [`approx`] — the Poisson (Hodges–Le Cam), normal, refined-normal and
//!   translated-Poisson tail approximations, with Le Cam's total-variation
//!   error bound.
//! * [`fft`] — iterative radix-2 Cooley–Tukey plus Bluestein's algorithm for
//!   arbitrary lengths (the DFT-CF method needs size `d+1` transforms).
//! * [`rng`] — deterministic SplitMix64/Xoshiro256++ PRNG with the samplers
//!   the simulator needs (uniform, normal, Poisson, categorical).
//! * [`summary`] — Welford accumulators, histograms and quantiles used by the
//!   benchmark harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod binomial;
pub mod fft;
pub mod normal;
pub mod poisson;
pub mod poisson_binomial;
pub mod rng;
pub mod specfun;
pub mod summary;

pub use approx::{
    le_cam_bound, normal_tail, poisson_tail, refined_normal_tail, translated_poisson_tail,
};
pub use poisson_binomial::{BinnedTailScratch, PoissonBinomial, TailBudget, TailOutcome};
pub use rng::Rng;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An argument was outside the mathematical domain of the function.
    Domain {
        /// Name of the offending routine.
        what: &'static str,
        /// Human-readable description of the violation.
        msg: String,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the offending routine.
        what: &'static str,
        /// Iterations attempted before giving up.
        iters: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Domain { what, msg } => write!(f, "domain error in {what}: {msg}"),
            StatsError::NoConvergence { what, iters } => {
                write!(f, "{what} failed to converge after {iters} iterations")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
