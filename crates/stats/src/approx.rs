//! Fast approximations to the Poisson-binomial right tail.
//!
//! The paper's shortcut is [`poisson_tail`]: the Hodges–Le Cam Poisson
//! approximation with rate `λ = Σ p_i`, computed in `O(d)` (one pass to sum
//! the probabilities, one incomplete-gamma evaluation). Three alternative
//! approximations of the same tail are provided for the ablation study
//! (experiment A-4 in DESIGN.md): the plain normal with continuity
//! correction, the skewness-corrected refined normal of Hong (2013), and
//! Röllin's translated Poisson. [`le_cam_bound`] gives the classic
//! total-variation guarantee that justifies the shortcut at high depth.

use crate::normal::Normal;
use crate::poisson::Poisson;

/// The paper's approximation: `Pr[X ≥ k] ≈ Pr[Pois(Σ p_i) ≥ k]`.
///
/// This is the `O(d)` first-pass screen of Kille et al.: if this value is
/// comfortably above the significance level, the exact dynamic program is
/// skipped and no variant is called.
pub fn poisson_tail(probs: &[f64], k: usize) -> f64 {
    let lambda: f64 = probs.iter().sum();
    poisson_tail_from_lambda(lambda, k)
}

/// [`poisson_tail`] when the caller has already accumulated
/// `λ = Σ p_i` (the pileup engine maintains it incrementally).
pub fn poisson_tail_from_lambda(lambda: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    Poisson::new(lambda.max(0.0))
        .expect("λ ≥ 0 by construction")
        .sf(k as u64)
}

/// Normal approximation with continuity correction:
/// `Pr[X ≥ k] ≈ Φ̄((k − ½ − μ) / σ)`.
pub fn normal_tail(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mu: f64 = probs.iter().sum();
    let var: f64 = probs.iter().map(|p| p * (1.0 - p)).sum();
    if var <= 0.0 {
        // Deterministic count: the tail is a step function at μ.
        return if (k as f64) <= mu { 1.0 } else { 0.0 };
    }
    let z = (k as f64 - 0.5 - mu) / var.sqrt();
    Normal::standard().sf(z)
}

/// Refined normal approximation (Hong 2013, "RNA"): adds the first
/// Edgeworth skewness correction,
/// `Pr[X ≥ k] ≈ 1 − G((k − ½ − μ)/σ)` with
/// `G(x) = Φ(x) + γ (1 − x²) φ(x) / 6`, clamped to `[0, 1]`.
pub fn refined_normal_tail(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mu: f64 = probs.iter().sum();
    let var: f64 = probs.iter().map(|p| p * (1.0 - p)).sum();
    if var <= 0.0 {
        return if (k as f64) <= mu { 1.0 } else { 0.0 };
    }
    let sigma = var.sqrt();
    let third: f64 = probs.iter().map(|p| p * (1.0 - p) * (1.0 - 2.0 * p)).sum();
    let gamma = third / var.powf(1.5);
    let x = (k as f64 - 0.5 - mu) / sigma;
    let n = Normal::standard();
    let g = n.cdf(x) + gamma * (1.0 - x * x) * n.pdf(x) / 6.0;
    (1.0 - g).clamp(0.0, 1.0)
}

/// Translated Poisson approximation (Röllin 2007): match both mean and
/// variance by shifting an integer offset `s = ⌊μ − σ²⌋` and using rate
/// `λ = σ² + frac(μ − σ²)`; then `Pr[X ≥ k] ≈ Pr[Pois(λ) ≥ k − s]`.
pub fn translated_poisson_tail(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mu: f64 = probs.iter().sum();
    let var: f64 = probs.iter().map(|p| p * (1.0 - p)).sum();
    let shift = (mu - var).floor();
    let lambda = (mu - shift).max(0.0);
    let k_adj = k as f64 - shift;
    if k_adj <= 0.0 {
        return 1.0;
    }
    Poisson::new(lambda)
        .expect("λ ≥ 0 by construction")
        .sf(k_adj as u64)
}

/// Barbour–Hall refinement of Le Cam's theorem: the total-variation
/// distance between the Poisson-binomial and Poisson(`λ = Σ p_i`) is at most
/// `(1 − e^{−λ})/λ · Σ p_i²`.
///
/// Because any tail probability differs by at most the total-variation
/// distance, this bound certifies the shortcut: with Phred-quality error
/// probabilities (`p_i ≤ 10^{−2}` typically), the bound is ≈ `max p_i`,
/// tiny compared to the paper's `δ = 0.01` safety margin once depth ≥ 100.
pub fn le_cam_bound(probs: &[f64]) -> f64 {
    let lambda: f64 = probs.iter().sum();
    let sum_sq: f64 = probs.iter().map(|p| p * p).sum();
    if lambda <= 0.0 {
        return 0.0;
    }
    ((1.0 - (-lambda).exp()) / lambda * sum_sq).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson_binomial::PoissonBinomial;
    use crate::rng::Rng;

    fn phred_probs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| 10f64.powf(-(rng.range_u64(20, 40) as f64) / 10.0))
            .collect()
    }

    #[test]
    fn all_tails_are_one_at_k_zero() {
        let probs = vec![0.01, 0.02];
        assert_eq!(poisson_tail(&probs, 0), 1.0);
        assert_eq!(normal_tail(&probs, 0), 1.0);
        assert_eq!(refined_normal_tail(&probs, 0), 1.0);
        assert_eq!(translated_poisson_tail(&probs, 0), 1.0);
    }

    #[test]
    fn poisson_tail_matches_exact_within_le_cam() {
        let probs = phred_probs(5_000, 3);
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let bound = le_cam_bound(&probs);
        let lambda = pb.mean();
        for k in [1usize, (lambda as usize).max(1), lambda as usize + 5] {
            let exact = pb.tail_pruned(k);
            let approx = poisson_tail(&probs, k);
            assert!(
                (exact - approx).abs() <= bound + 1e-12,
                "k={k}: |{exact} − {approx}| > bound {bound}"
            );
        }
    }

    #[test]
    fn approximation_error_shrinks_with_depth() {
        // The discussion section's claim: the Poisson error vanishes as d
        // grows (for fixed per-read probability scale).
        let mut last_worst = f64::INFINITY;
        for &d in &[100usize, 1_000, 10_000] {
            let probs = vec![0.005f64; d];
            let pb = PoissonBinomial::new(probs.clone()).unwrap();
            let lambda = pb.mean() as usize;
            let mut worst: f64 = 0.0;
            for k in (lambda.saturating_sub(3))..=(lambda + 3) {
                let k = k.max(1);
                worst = worst.max((pb.tail_pruned(k) - poisson_tail(&probs, k)).abs());
            }
            // Relative to the Le Cam bound the error must stay under it; the
            // *bound itself* shrinks with d at fixed total λ — here λ grows,
            // so check the raw worst error is non-increasing in this sweep.
            assert!(
                worst <= last_worst * 1.5 + 1e-9,
                "d={d}: worst {worst} vs last {last_worst}"
            );
            last_worst = worst;
        }
    }

    #[test]
    fn refined_normal_beats_plain_normal_on_skewed_sums() {
        // Small probabilities ⇒ strongly right-skewed: the skewness
        // correction must reduce the worst-case tail error.
        let probs = vec![0.01f64; 2_000];
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let lambda = pb.mean() as usize; // 20
        let (mut worst_plain, mut worst_refined) = (0.0f64, 0.0f64);
        for k in 1..=(lambda * 3) {
            let exact = pb.tail_pruned(k);
            worst_plain = worst_plain.max((exact - normal_tail(&probs, k)).abs());
            worst_refined = worst_refined.max((exact - refined_normal_tail(&probs, k)).abs());
        }
        assert!(
            worst_refined < worst_plain,
            "refined {worst_refined} should beat plain {worst_plain}"
        );
    }

    #[test]
    fn translated_poisson_handles_mixed_probabilities() {
        // With some large p_i the plain Poisson overestimates variance;
        // translated Poisson matches both moments and should do better.
        let mut probs = vec![0.4f64; 50];
        probs.extend(vec![0.01f64; 200]);
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let mu = pb.mean() as usize;
        let (mut worst_pois, mut worst_tp) = (0.0f64, 0.0f64);
        for k in 1..=(2 * mu) {
            let exact = pb.tail_pruned(k);
            worst_pois = worst_pois.max((exact - poisson_tail(&probs, k)).abs());
            worst_tp = worst_tp.max((exact - translated_poisson_tail(&probs, k)).abs());
        }
        assert!(
            worst_tp < worst_pois,
            "translated {worst_tp} should beat plain Poisson {worst_pois}"
        );
    }

    #[test]
    fn le_cam_bound_basics() {
        assert_eq!(le_cam_bound(&[]), 0.0);
        assert_eq!(le_cam_bound(&[0.0, 0.0]), 0.0);
        // Uniform small p: bound ≈ (1−e^{−λ})/λ · d p².
        let probs = vec![0.001f64; 1_000];
        let b = le_cam_bound(&probs);
        assert!(b > 0.0 && b < 0.001, "bound {b}");
        // Never exceeds 1.
        assert!(le_cam_bound(&[1.0; 100]) <= 1.0);
    }

    #[test]
    fn degenerate_variance_cases() {
        // p_i ∈ {0, 1} gives σ = 0; normal-family approximations must fall
        // back to the deterministic step.
        let probs = vec![1.0, 1.0, 0.0];
        assert_eq!(normal_tail(&probs, 2), 1.0);
        assert_eq!(normal_tail(&probs, 3), 0.0);
        assert_eq!(refined_normal_tail(&probs, 2), 1.0);
        assert_eq!(refined_normal_tail(&probs, 3), 0.0);
    }

    #[test]
    fn paper_decision_scenario() {
        // The workflow of Fig 1b: a column whose approximate p̂ is far above
        // ε + δ must also have exact p above ε — i.e. skipping is safe.
        let probs = phred_probs(10_000, 17);
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let eps = 0.05;
        let delta = 0.01;
        for k in 1..(pb.mean() as usize + 20) {
            let p_hat = poisson_tail(&probs, k);
            if p_hat >= eps + delta {
                let exact = pb.tail_pruned(k);
                assert!(
                    exact > eps,
                    "k={k}: shortcut would wrongly skip a significant column \
                     (p̂={p_hat}, exact={exact})"
                );
            }
        }
    }
}
