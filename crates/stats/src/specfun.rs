//! Special functions: log-gamma, regularized incomplete gamma and beta,
//! error function family.
//!
//! These replace the GNU Scientific Library routines the paper used for the
//! Poisson tail. Accuracy targets: relative error below `1e-12` across the
//! parameter ranges exercised by variant calling (shape parameters up to
//! ~1e6, arguments up to ~1e6), verified in the unit tests against closed
//! forms and high-precision reference values.

use crate::{Result, StatsError};

/// Machine-level floor used by the modified Lentz continued-fraction
/// evaluations to avoid division by zero.
const FPMIN: f64 = f64::MIN_POSITIVE / f64::EPSILON;

/// Convergence tolerance for series/continued-fraction evaluation.
const EPS: f64 = 1e-15;

/// Iteration budget for iterative evaluations. Large shapes converge slowly;
/// `a ~ 1e6` needs a few thousand terms in the worst case.
const MAX_ITER: usize = 10_000_000;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with `g = 7`, 9 coefficients; relative error below
/// `1e-13` over the positive axis. Values `x ≤ 0` return an error (the
/// reflection branch is not needed by any caller in this workspace and
/// keeping the domain strict catches bugs earlier).
pub fn ln_gamma(x: f64) -> Result<f64> {
    if x <= 0.0 || x.is_nan() {
        return Err(StatsError::Domain {
            what: "ln_gamma",
            msg: format!("x must be > 0, got {x}"),
        });
    }
    // Lanczos g=7, n=9 (Godfrey's coefficients).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    const HALF_LN_TWO_PI: f64 = 0.918_938_533_204_672_7; // ln(2π)/2

    let z = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    Ok(HALF_LN_TWO_PI + (z + 0.5) * t.ln() - t + acc.ln())
}

/// `ln(k!)` with a cached table for small `k`.
///
/// Pileup depths reach `1e6`, so the fall-through uses [`ln_gamma`].
pub fn ln_factorial(k: u64) -> f64 {
    // Table covers the overwhelmingly common small-count cases.
    const TABLE_LEN: usize = 256;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += (i as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (k as usize) < TABLE_LEN {
        table[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0).expect("k+1 > 0 always holds")
    }
}

/// `ln C(n, k)`, the log binomial coefficient.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// For a Poisson(λ) variable `X`, `Pr[X ≥ k] = P(k, λ)` for `k ≥ 1` — this
/// identity is the entire approximation shortcut of the paper, so this
/// routine sits on the caller's hot path when a column survives the first
/// cheap screens.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_contfrac(a, x)?)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// Evaluated directly by continued fraction when `x ≥ a + 1` so the upper
/// tail keeps full relative precision (important when screening p-values far
/// below the significance threshold).
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_contfrac(a, x)
    }
}

fn check_gamma_args(a: f64, x: f64) -> Result<()> {
    if a <= 0.0 || a.is_nan() || !x.is_finite() || x < 0.0 {
        return Err(StatsError::Domain {
            what: "incomplete_gamma",
            msg: format!("require a > 0 and x ≥ 0, got a={a}, x={x}"),
        });
    }
    Ok(())
}

/// Series representation of `P(a, x)`; converges quickly for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let ln_norm = a * x.ln() - x - ln_gamma(a)?;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok((sum.ln() + ln_norm).exp().clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence {
        what: "gamma_p_series",
        iters: MAX_ITER,
    })
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz), valid
/// for `x ≥ a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> Result<f64> {
    let ln_norm = a * x.ln() - x - ln_gamma(a)?;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((h.ln() + ln_norm).exp().clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence {
        what: "gamma_q_contfrac",
        iters: MAX_ITER,
    })
}

/// Regularized incomplete beta `I_x(a, b)`.
///
/// Used for binomial CDFs (allele-frequency confidence) and as a reference
/// implementation in tests.
pub fn beta_inc(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || a.is_nan() || b <= 0.0 || b.is_nan() || !(0.0..=1.0).contains(&x) {
        return Err(StatsError::Domain {
            what: "beta_inc",
            msg: format!("require a,b > 0 and x in [0,1], got a={a}, b={b}, x={x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_bt = ln_gamma(a + b)? - ln_gamma(a)? - ln_gamma(b)? + a * x.ln() + b * (1.0 - x).ln();
    let bt = ln_bt.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((bt * beta_contfrac(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - bt * beta_contfrac(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

/// Continued fraction for [`beta_inc`] (modified Lentz).
fn beta_contfrac(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence {
        what: "beta_contfrac",
        iters: MAX_ITER,
    })
}

/// Complementary error function `erfc(x)`.
///
/// Implemented through the incomplete gamma identity
/// `erfc(x) = Q(1/2, x²)` for `x ≥ 0` (and reflection for `x < 0`), which
/// inherits the `1e-12` accuracy of the gamma routines instead of the ~1e-7
/// of the usual rational fits.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    let v = gamma_q(0.5, x * x).unwrap_or_else(|_| if x.abs() > 1.0 { 0.0 } else { 1.0 });
    if x > 0.0 {
        v
    } else {
        2.0 - v
    }
}

/// Error function `erf(x) = 1 − erfc(x)`.
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 - erfc(x)
    } else {
        erfc(-x) - 1.0
    }
}

/// Natural log of `erfc(x)` with graceful behaviour deep in the tail, where
/// `erfc` itself underflows (`x ≳ 27`). Uses the asymptotic expansion
/// `erfc(x) ≈ e^{−x²} / (x√π) · (1 − 1/(2x²) + 3/(4x⁴) − …)` when needed.
pub fn ln_erfc(x: f64) -> f64 {
    if x < 25.0 {
        return erfc(x).ln();
    }
    let x2 = x * x;
    // Three asymptotic correction terms are plenty at x ≥ 25.
    let series = 1.0 - 1.0 / (2.0 * x2) + 3.0 / (4.0 * x2 * x2) - 15.0 / (8.0 * x2 * x2 * x2);
    -x2 - (x * std::f64::consts::PI.sqrt()).ln() + series.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, rel: f64) {
        // Relative error with an absolute floor of `rel` near zero, so that
        // e.g. ln Γ(1) = −9e−16 vs table value 0 compares sanely.
        let err = (got - want).abs() / want.abs().max(1.0);
        assert!(
            err <= rel,
            "got {got}, want {want} (rel err {err:.3e} > {rel:.3e})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! exactly for small integers.
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64).unwrap(), fact.ln(), 1e-13);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_close(ln_gamma(0.5).unwrap(), sqrt_pi.ln(), 1e-13);
        assert_close(ln_gamma(1.5).unwrap(), (sqrt_pi / 2.0).ln(), 1e-13);
    }

    #[test]
    fn ln_gamma_rejects_nonpositive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.5).is_err());
    }

    #[test]
    fn ln_factorial_table_and_fallthrough_agree() {
        for k in [0u64, 1, 5, 254, 255, 256, 300, 10_000] {
            let direct = ln_gamma(k as f64 + 1.0).unwrap();
            assert_close(ln_factorial(k), direct, 1e-12);
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2), 10.0f64.ln(), 1e-12);
        assert_close(ln_choose(10, 5), 252.0f64.ln(), 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn gamma_p_integer_shape_matches_poisson_sum() {
        // P(a, x) with integer a equals 1 − Σ_{j<a} e^{−x} x^j / j!.
        for &(a, x) in &[(1u32, 0.5f64), (3, 2.0), (5, 5.0), (10, 3.0), (10, 30.0)] {
            let mut cdf = 0.0;
            let mut term = (-x).exp();
            for j in 0..a {
                if j > 0 {
                    term *= x / j as f64;
                }
                cdf += term;
            }
            assert_close(gamma_p(a as f64, x).unwrap(), 1.0 - cdf, 1e-11);
            assert_close(gamma_q(a as f64, x).unwrap(), cdf, 1e-11);
        }
    }

    #[test]
    fn gamma_p_q_are_complementary() {
        for &a in &[0.3, 1.0, 2.5, 17.0, 400.0, 1e5] {
            for &x in &[1e-3, 0.5, 1.0, 10.0, 350.0, 9.9e4, 1.1e5] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-10);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn gamma_p_boundary() {
        assert_eq!(gamma_p(3.0, 0.0).unwrap(), 0.0);
        assert_eq!(gamma_q(3.0, 0.0).unwrap(), 1.0);
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let a = 12.5;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.25;
            let p = gamma_p(a, x).unwrap();
            assert!(p >= prev - 1e-14, "P(a,·) must be non-decreasing");
            prev = p;
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_close(beta_inc(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 1.0, 0.9)] {
            let lhs = beta_inc(a, b, x).unwrap();
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x).unwrap();
            assert_close(lhs, rhs, 1e-11);
        }
    }

    #[test]
    fn beta_inc_binomial_identity() {
        // For integers: I_p(k, n−k+1) = Pr[Bin(n,p) ≥ k].
        let n = 10u32;
        let p: f64 = 0.37;
        for k in 1..=n {
            let mut tail = 0.0;
            for j in k..=n {
                tail += (ln_choose(n as u64, j as u64)
                    + j as f64 * p.ln()
                    + (n - j) as f64 * (1.0 - p).ln())
                .exp();
            }
            assert_close(
                beta_inc(k as f64, (n - k + 1) as f64, p).unwrap(),
                tail,
                1e-10,
            );
        }
    }

    #[test]
    fn erf_known_values() {
        // Reference values from Abramowitz & Stegun.
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        assert_close(erfc(1.0), 0.157_299_207_050_285_13, 1e-11);
        assert_eq!(erf(0.0), 0.0);
        assert_eq!(erfc(0.0), 1.0);
    }

    #[test]
    fn erf_is_odd_and_erfc_reflects() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert_close(erf(-x), -erf(x), 1e-12);
            assert_close(erfc(-x), 2.0 - erfc(x), 1e-12);
        }
    }

    #[test]
    fn ln_erfc_continuous_across_switch() {
        // Direct log and asymptotic expansion must agree near the crossover.
        let direct = erfc(24.9).ln();
        let asymptotic = {
            let x: f64 = 24.9;
            let x2 = x * x;
            let series =
                1.0 - 1.0 / (2.0 * x2) + 3.0 / (4.0 * x2 * x2) - 15.0 / (8.0 * x2 * x2 * x2);
            -x2 - (x * std::f64::consts::PI.sqrt()).ln() + series.ln()
        };
        assert_close(direct, asymptotic, 1e-6);
        // And far in the tail we still return finite values.
        assert!(ln_erfc(100.0).is_finite());
        assert!(ln_erfc(100.0) < -9_999.0);
    }
}
