//! The Poisson-binomial distribution: the sum of independent Bernoulli
//! trials with *heterogeneous* success probabilities.
//!
//! This is the exact null model of LoFreq: in a pileup column of depth `d`,
//! read `i` miscalls its base with probability `p_i` (from its Phred score),
//! and the total error count `X = Σ Bern(p_i)` is Poisson-binomial. A
//! variant is called when the observed non-reference count `K` has
//! `Pr[X ≥ K]` below the significance level.
//!
//! Four exact kernels are provided, mirroring the lineage the paper cites:
//!
//! * [`PoissonBinomial::pmf`] — the classic full `O(d²)` dynamic program
//!   (the recurrence displayed in §II.A of the paper).
//! * [`PoissonBinomial::tail_pruned`] — `O(d·K)` DP that only tracks states
//!   `< K` plus an absorbing tail; this is what computing `Pr[X ≥ K]`
//!   actually requires.
//! * [`PoissonBinomial::tail_early_exit`] — the pruned DP with LoFreq's
//!   early-termination: the running tail is monotonically non-decreasing in
//!   the number of processed reads, so once it crosses the significance
//!   threshold the column can be abandoned ("works especially well on
//!   shallow columns", §IV).
//! * [`PoissonBinomial::pmf_dft`] — the DFT-CF method of Hong (2013),
//!   evaluating the characteristic function on the unit circle and inverting
//!   with the in-house Bluestein FFT.

use crate::fft::{dft, Complex};
use crate::{Result, StatsError};

/// A Poisson-binomial distribution defined by per-trial success
/// probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonBinomial {
    probs: Vec<f64>,
}

/// Early-exit policy for [`PoissonBinomial::tail_early_exit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailBudget {
    /// Abandon the computation once the running lower bound on
    /// `Pr[X ≥ K]` exceeds this value (the caller's significance level —
    /// a p-value already known to be above it can never produce a call).
    pub bail_above: f64,
}

/// Outcome of an early-exit tail computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailOutcome {
    /// The DP ran to completion; the exact tail probability.
    Exact(f64),
    /// The DP stopped early: the tail is provably at least `lower_bound`
    /// (> the budget's `bail_above`), after processing `trials_used` of the
    /// trials.
    Bailed {
        /// Proven lower bound on the tail at the moment of the bail.
        lower_bound: f64,
        /// Number of Bernoulli trials folded in before bailing.
        trials_used: usize,
    },
}

impl TailOutcome {
    /// The exact value if the DP completed.
    pub fn exact(self) -> Option<f64> {
        match self {
            TailOutcome::Exact(p) => Some(p),
            TailOutcome::Bailed { .. } => None,
        }
    }

    /// A usable lower bound in either case.
    pub fn lower_bound(self) -> f64 {
        match self {
            TailOutcome::Exact(p) => p,
            TailOutcome::Bailed { lower_bound, .. } => lower_bound,
        }
    }
}

impl PoissonBinomial {
    /// Construct from per-trial success probabilities, each in `[0, 1]`.
    pub fn new(probs: impl Into<Vec<f64>>) -> Result<Self> {
        let probs = probs.into();
        for (i, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(StatsError::Domain {
                    what: "PoissonBinomial::new",
                    msg: format!("probability {i} out of [0,1]: {p}"),
                });
            }
        }
        Ok(PoissonBinomial { probs })
    }

    /// Number of trials `d`.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no trials (`X ≡ 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The per-trial probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mean `μ = Σ p_i` — also the rate of the paper's Poisson
    /// approximation.
    pub fn mean(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Variance `σ² = Σ p_i (1 − p_i)`.
    pub fn variance(&self) -> f64 {
        self.probs.iter().map(|p| p * (1.0 - p)).sum()
    }

    /// Third standardized moment `γ = Σ p_i(1−p_i)(1−2p_i) / σ³`, used by
    /// the refined normal approximation.
    pub fn skewness(&self) -> f64 {
        let var = self.variance();
        if var == 0.0 {
            return 0.0;
        }
        let third: f64 = self
            .probs
            .iter()
            .map(|p| p * (1.0 - p) * (1.0 - 2.0 * p))
            .sum();
        third / var.powf(1.5)
    }

    /// Full probability mass function by the `O(d²)` dynamic program
    ///
    /// `P_n(X = k) = P_{n−1}(X = k)(1 − p_n) + P_{n−1}(X = k − 1) p_n`
    ///
    /// exactly as displayed in the paper. Returns `d + 1` masses.
    pub fn pmf(&self) -> Vec<f64> {
        let d = self.probs.len();
        let mut f = Vec::with_capacity(d + 1);
        f.push(1.0f64);
        for (n, &p) in self.probs.iter().enumerate() {
            let q = 1.0 - p;
            f.push(0.0);
            // Descend so f[j-1] still holds the previous iteration's value.
            for j in (1..=n + 1).rev() {
                f[j] = f[j] * q + f[j - 1] * p;
            }
            f[0] *= q;
        }
        f
    }

    /// Exact right tail `Pr[X ≥ k]` from the full pmf. `O(d²)` — reference
    /// implementation; production callers use [`Self::tail_pruned`].
    pub fn tail_full(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.probs.len() {
            return 0.0;
        }
        let pmf = self.pmf();
        // Summing the smaller side keeps absolute error minimal.
        let upper: f64 = pmf[k..].iter().sum();
        let lower: f64 = pmf[..k].iter().sum();
        if upper <= lower {
            upper.clamp(0.0, 1.0)
        } else {
            (1.0 - lower).clamp(0.0, 1.0)
        }
    }

    /// Exact right tail `Pr[X ≥ k]` with the `O(d·k)` pruned DP.
    ///
    /// Tracks only the masses of states `0..k` plus a single absorbing
    /// "≥ k" accumulator: once a trajectory reaches `k` errors it can never
    /// return, so the accumulator needs no per-state resolution.
    pub fn tail_pruned(&self, k: usize) -> f64 {
        match self.tail_early_exit(k, TailBudget { bail_above: f64::INFINITY }) {
            TailOutcome::Exact(p) => p,
            TailOutcome::Bailed { .. } => unreachable!("infinite budget never bails"),
        }
    }

    /// Pruned tail DP with early exit (LoFreq's production kernel).
    ///
    /// The running accumulator `tail_n = Pr[first n trials yield ≥ k
    /// successes]` is monotone non-decreasing in `n`, so it is a certified
    /// lower bound on the final tail at every step. When it exceeds
    /// `budget.bail_above` the final p-value provably cannot be significant
    /// and the DP aborts — the dominant savings on columns whose mismatch
    /// count is unremarkable, which is almost all of them.
    pub fn tail_early_exit(&self, k: usize, budget: TailBudget) -> TailOutcome {
        if k == 0 {
            return TailOutcome::Exact(1.0);
        }
        if k > self.probs.len() {
            return TailOutcome::Exact(0.0);
        }
        // f[j] = Pr[j successes among trials seen so far], j < k.
        let mut f = vec![0.0f64; k];
        f[0] = 1.0;
        let mut tail = 0.0f64;
        let mut top = 0usize; // highest index with nonzero mass, ≤ k−1
        for (n, &p) in self.probs.iter().enumerate() {
            let q = 1.0 - p;
            // Mass escaping into the absorbing ≥k state.
            tail += f[k - 1] * p;
            if k >= 2 {
                // Shift interior states; indices above min(top+1, k−1) are
                // still zero and need no work.
                let hi = top.min(k - 2);
                for j in (1..=hi + 1).rev() {
                    f[j] = f[j] * q + f[j - 1] * p;
                }
            }
            f[0] *= q;
            if top + 1 < k {
                top += 1;
            }
            if tail > budget.bail_above {
                return TailOutcome::Bailed {
                    lower_bound: tail,
                    trials_used: n + 1,
                };
            }
        }
        TailOutcome::Exact(tail.clamp(0.0, 1.0))
    }

    /// Full pmf via the DFT-CF method (Hong 2013).
    ///
    /// The characteristic function `φ(t) = Π_j (1 − p_j + p_j e^{it})` is
    /// evaluated at the `d + 1` roots of unity with log-magnitude/phase
    /// accumulation (the raw product underflows at depth ≳ 10⁴), then the
    /// pmf is recovered by an inverse DFT. Conjugate symmetry halves the
    /// evaluation work. `O(d²)` arithmetic dominated by the CF evaluation,
    /// but with far smaller constants than the full DP at large `d` and
    /// embarrassingly parallel across frequencies.
    pub fn pmf_dft(&self) -> Vec<f64> {
        let d = self.probs.len();
        let m = d + 1;
        if d == 0 {
            return vec![1.0];
        }
        let omega = 2.0 * std::f64::consts::PI / m as f64;
        let mut spectrum = vec![Complex::zero(); m];
        spectrum[0] = Complex::one();
        let half = m / 2;
        for l in 1..=half {
            let (sin_w, cos_w) = (omega * l as f64).sin_cos();
            let mut ln_mag = 0.0f64;
            let mut arg = 0.0f64;
            for &p in &self.probs {
                let re = 1.0 - p + p * cos_w;
                let im = p * sin_w;
                ln_mag += 0.5 * (re * re + im * im).ln();
                arg += im.atan2(re);
            }
            let val = Complex::cis(arg).scale(ln_mag.exp());
            spectrum[l] = val;
            if l != m - l {
                spectrum[m - l] = val.conj();
            }
        }
        // pmf_k = (1/m) Σ_l φ(ωl) e^{−iωlk}: a *forward* DFT scaled by 1/m.
        dft(&spectrum)
            .into_iter()
            .map(|c| (c.re / m as f64).clamp(0.0, 1.0))
            .collect()
    }

    /// Exact right tail via the DFT-CF pmf.
    pub fn tail_dft(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.probs.len() {
            return 0.0;
        }
        let pmf = self.pmf_dft();
        let upper: f64 = pmf[k..].iter().sum();
        let lower: f64 = pmf[..k].iter().sum();
        if upper <= lower {
            upper.clamp(0.0, 1.0)
        } else {
            (1.0 - lower).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn random_probs(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.f64() * scale).collect()
    }

    #[test]
    fn empty_distribution_is_point_mass_at_zero() {
        let pb = PoissonBinomial::new(Vec::new()).unwrap();
        assert_eq!(pb.pmf(), vec![1.0]);
        assert_eq!(pb.tail_full(0), 1.0);
        assert_eq!(pb.tail_full(1), 0.0);
        assert_eq!(pb.tail_pruned(1), 0.0);
        assert_eq!(pb.pmf_dft(), vec![1.0]);
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(PoissonBinomial::new(vec![0.5, 1.5]).is_err());
        assert!(PoissonBinomial::new(vec![-0.1]).is_err());
        assert!(PoissonBinomial::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn identical_probs_reduce_to_binomial() {
        let n = 20;
        let p = 0.3;
        let pb = PoissonBinomial::new(vec![p; n]).unwrap();
        let pmf = pb.pmf();
        let bin = crate::binomial::Binomial::new(n as u64, p).unwrap();
        for k in 0..=n {
            assert!(
                close(pmf[k], bin.pmf(k as u64), 1e-12),
                "k={k}: {} vs {}",
                pmf[k],
                bin.pmf(k as u64)
            );
        }
    }

    #[test]
    fn pmf_normalizes_and_matches_moments() {
        let probs = random_probs(300, 7, 0.2);
        let pb = PoissonBinomial::new(probs).unwrap();
        let pmf = pb.pmf();
        let total: f64 = pmf.iter().sum();
        assert!(close(total, 1.0, 1e-10), "total {total}");
        let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!(close(mean, pb.mean(), 1e-8), "{mean} vs {}", pb.mean());
        let var: f64 = pmf
            .iter()
            .enumerate()
            .map(|(k, p)| (k as f64 - mean).powi(2) * p)
            .sum();
        assert!(close(var, pb.variance(), 1e-7), "{var} vs {}", pb.variance());
    }

    #[test]
    fn pruned_tail_matches_full_tail() {
        let probs = random_probs(200, 13, 0.15);
        let pb = PoissonBinomial::new(probs).unwrap();
        for k in [0usize, 1, 2, 5, 10, 20, 40, 100, 200, 201] {
            let full = pb.tail_full(k);
            let pruned = pb.tail_pruned(k);
            assert!(
                close(full, pruned, 1e-10),
                "k={k}: full {full} vs pruned {pruned}"
            );
        }
    }

    #[test]
    fn dft_matches_dp_small_and_medium() {
        for &(n, seed, scale) in &[(1usize, 1u64, 0.5f64), (7, 2, 0.8), (64, 3, 0.3), (501, 4, 0.05)] {
            let pb = PoissonBinomial::new(random_probs(n, seed, scale)).unwrap();
            let dp = pb.pmf();
            let dft = pb.pmf_dft();
            assert_eq!(dp.len(), dft.len());
            for (k, (a, b)) in dp.iter().zip(dft.iter()).enumerate() {
                assert!(
                    close(*a, *b, 1e-8),
                    "n={n} k={k}: dp {a} vs dft {b}"
                );
            }
        }
    }

    #[test]
    fn tail_dft_matches_tail_pruned() {
        let pb = PoissonBinomial::new(random_probs(150, 21, 0.1)).unwrap();
        for k in [1usize, 3, 8, 15, 30] {
            assert!(
                close(pb.tail_dft(k), pb.tail_pruned(k), 1e-8),
                "k={k}"
            );
        }
    }

    #[test]
    fn early_exit_bails_with_valid_lower_bound() {
        // High error probabilities, low threshold: the tail crosses fast.
        let pb = PoissonBinomial::new(vec![0.5; 1000]).unwrap();
        let out = pb.tail_early_exit(10, TailBudget { bail_above: 0.05 });
        match out {
            TailOutcome::Bailed {
                lower_bound,
                trials_used,
            } => {
                assert!(lower_bound > 0.05);
                assert!(trials_used < 1000, "should bail well before the end");
                let exact = pb.tail_pruned(10);
                assert!(exact >= lower_bound, "bound must be conservative");
            }
            TailOutcome::Exact(_) => panic!("expected a bail"),
        }
    }

    #[test]
    fn early_exit_exact_when_tail_small() {
        let pb = PoissonBinomial::new(vec![0.001; 500]).unwrap();
        let out = pb.tail_early_exit(20, TailBudget { bail_above: 0.05 });
        match out {
            TailOutcome::Exact(p) => {
                assert!(close(p, pb.tail_pruned(20), 1e-12));
                assert!(p < 1e-10, "20 errors at λ=0.5 is absurdly unlikely: {p}");
            }
            TailOutcome::Bailed { .. } => panic!("tail never crosses 0.05"),
        }
    }

    #[test]
    fn tail_monotone_decreasing_in_k() {
        let pb = PoissonBinomial::new(random_probs(80, 5, 0.4)).unwrap();
        let mut prev = 1.0;
        for k in 0..=81 {
            let t = pb.tail_pruned(k);
            assert!(t <= prev + 1e-12, "k={k}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn deep_column_mixed_qualities() {
        // A realistic ultra-deep column: 50 000 reads at Phred 20–40.
        let mut rng = Rng::new(99);
        let probs: Vec<f64> = (0..50_000)
            .map(|_| 10f64.powf(-(rng.range_u64(20, 40) as f64) / 10.0))
            .collect();
        let pb = PoissonBinomial::new(probs).unwrap();
        let lambda = pb.mean();
        // Around the mean the tail is moderate; far above it is tiny.
        let k_mean = lambda.round() as usize;
        let t = pb.tail_pruned(k_mean);
        assert!(t > 0.3 && t < 0.7, "tail at mean: {t}");
        let t_far = pb.tail_pruned(k_mean + 10 * (pb.variance().sqrt() as usize + 1));
        assert!(t_far < 1e-6, "far tail: {t_far}");
    }

    #[test]
    fn moments_closed_forms() {
        let pb = PoissonBinomial::new(vec![0.1, 0.5, 0.9]).unwrap();
        assert!(close(pb.mean(), 1.5, 1e-15));
        assert!(close(pb.variance(), 0.09 + 0.25 + 0.09, 1e-15));
        // Skewness of symmetric-around-half probs is 0.
        assert!(close(pb.skewness(), 0.0, 1e-12));
        // Degenerate all-certain trials: zero variance, zero skewness.
        let sure = PoissonBinomial::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(sure.skewness(), 0.0);
        assert_eq!(sure.tail_pruned(2), 1.0);
        assert_eq!(sure.tail_pruned(3), 0.0);
    }
}
