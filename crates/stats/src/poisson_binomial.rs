//! The Poisson-binomial distribution: the sum of independent Bernoulli
//! trials with *heterogeneous* success probabilities.
//!
//! This is the exact null model of LoFreq: in a pileup column of depth `d`,
//! read `i` miscalls its base with probability `p_i` (from its Phred score),
//! and the total error count `X = Σ Bern(p_i)` is Poisson-binomial. A
//! variant is called when the observed non-reference count `K` has
//! `Pr[X ≥ K]` below the significance level.
//!
//! Four exact per-trial kernels are provided, mirroring the lineage the
//! paper cites:
//!
//! * [`PoissonBinomial::pmf`] — the classic full `O(d²)` dynamic program
//!   (the recurrence displayed in §II.A of the paper).
//! * [`PoissonBinomial::tail_pruned`] — `O(d·K)` DP that only tracks states
//!   `< K` plus an absorbing tail; this is what computing `Pr[X ≥ K]`
//!   actually requires.
//! * [`PoissonBinomial::tail_early_exit`] — the pruned DP with LoFreq's
//!   early-termination: the running tail is monotonically non-decreasing in
//!   the number of processed reads, so once it crosses the significance
//!   threshold the column can be abandoned ("works especially well on
//!   shallow columns", §IV).
//! * [`PoissonBinomial::pmf_dft`] — the DFT-CF method of Hong (2013),
//!   evaluating the characteristic function on the unit circle and inverting
//!   with the in-house Bluestein FFT.
//!
//! # Grouped-trial (binned) kernels
//!
//! Sequencing qualities are a `u8`, so an ultra-deep column's `d` trial
//! probabilities take at most ~100 *distinct* values. The grouped kernels —
//! [`PoissonBinomial::tail_pruned_binned`],
//! [`PoissonBinomial::tail_early_exit_binned`] and the binned moments —
//! consume `(probability, multiplicity)` pairs and fold each bin of `m`
//! identical trials in **one truncated `Binomial(m, p)` convolution**
//! against the pruned state vector:
//!
//! `f'[t] = Σ_{i=0..min(t,m)} b_i · f[t−i]`,  `b_i = C(m,i) pⁱ q^{m−i}`,
//!
//! with the mass escaping past `K` routed into the absorbing tail through
//! binomial suffix sums. One bin costs `O(K·min(m, K))` instead of `m`
//! scalar DP steps, so a whole column costs `O(#bins · K²)` instead of
//! `O(d·K)` — at LoFreq's 1 000 000× depth cap with ~40 distinct
//! qualities and `K` in the tens, that is a multiple-order-of-magnitude
//! reduction, and the working set shrinks from the `d` probabilities to
//! `O(#bins + K)` floats. The binned early exit preserves the per-trial
//! kernel's contract: its running tail after each folded bin is a
//! certified lower bound on the final `Pr[X ≥ K]`, so a bail is still a
//! proof that the column cannot be significant.
//!
//! # SIMD dispatch
//!
//! The binned kernels' inner loops — the truncated-binomial convolution
//! and the pmf-term setup — run through a [`ultravc_simd::Kernels`] table
//! selected once per process by runtime CPU detection (AVX2+FMA on
//! x86_64, NEON on aarch64, scalar elsewhere or under
//! `ULTRAVC_FORCE_SCALAR=1`). Every backend is **bitwise identical** (see
//! the `ultravc_simd` crate docs), so dispatch can change only the wall
//! clock — never a tail value, a bail decision, or a variant call. The
//! `*_with` variants ([`PoissonBinomial::tail_pruned_binned_with`],
//! [`PoissonBinomial::tail_early_exit_binned_with`]) accept an explicit
//! table for benchmarks and the backend-agreement tests.

use crate::fft::{dft, Complex};
use crate::{Result, StatsError};
use ultravc_simd::{AlignedF64, Kernels};

/// A Poisson-binomial distribution defined by per-trial success
/// probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonBinomial {
    probs: Vec<f64>,
}

/// Early-exit policy for [`PoissonBinomial::tail_early_exit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailBudget {
    /// Abandon the computation once the running lower bound on
    /// `Pr[X ≥ K]` exceeds this value (the caller's significance level —
    /// a p-value already known to be above it can never produce a call).
    pub bail_above: f64,
}

/// Outcome of an early-exit tail computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailOutcome {
    /// The DP ran to completion; the exact tail probability.
    Exact(f64),
    /// The DP stopped early: the tail is provably at least `lower_bound`
    /// (> the budget's `bail_above`), after processing `trials_used` of the
    /// trials.
    Bailed {
        /// Proven lower bound on the tail at the moment of the bail.
        lower_bound: f64,
        /// Number of Bernoulli trials folded in before bailing.
        trials_used: usize,
    },
}

impl TailOutcome {
    /// The exact value if the DP completed.
    pub fn exact(self) -> Option<f64> {
        match self {
            TailOutcome::Exact(p) => Some(p),
            TailOutcome::Bailed { .. } => None,
        }
    }

    /// A usable lower bound in either case.
    pub fn lower_bound(self) -> f64 {
        match self {
            TailOutcome::Exact(p) => p,
            TailOutcome::Bailed { lower_bound, .. } => lower_bound,
        }
    }
}

impl PoissonBinomial {
    /// Construct from per-trial success probabilities, each in `[0, 1]`.
    pub fn new(probs: impl Into<Vec<f64>>) -> Result<Self> {
        let probs = probs.into();
        for (i, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(StatsError::Domain {
                    what: "PoissonBinomial::new",
                    msg: format!("probability {i} out of [0,1]: {p}"),
                });
            }
        }
        Ok(PoissonBinomial { probs })
    }

    /// Construct from probabilities already known to lie in `[0, 1]` —
    /// e.g. values read out of the Phred lookup table, which maps every
    /// `u8` score to `10^(−q/10) ∈ (0, 1]` by construction.
    ///
    /// Skips the per-element range validation branch of [`Self::new`]
    /// (verified only under `debug_assertions`), which matters when a
    /// driver builds one distribution per pileup column.
    pub fn from_phred_probs(probs: impl Into<Vec<f64>>) -> Self {
        let probs = probs.into();
        debug_assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "from_phred_probs caller promised probabilities in [0,1]"
        );
        PoissonBinomial { probs }
    }

    /// Expand `(probability, multiplicity)` bins into a per-trial
    /// distribution. Reference/test bridge between the binned and
    /// per-trial kernels; probabilities are trusted as in
    /// [`Self::from_phred_probs`].
    pub fn from_bins(bins: &[(f64, u32)]) -> Self {
        let d: usize = bins.iter().map(|&(_, m)| m as usize).sum();
        let mut probs = Vec::with_capacity(d);
        for &(p, m) in bins {
            probs.extend(std::iter::repeat_n(p, m as usize));
        }
        Self::from_phred_probs(probs)
    }

    /// Number of trials `d`.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no trials (`X ≡ 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The per-trial probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mean `μ = Σ p_i` — also the rate of the paper's Poisson
    /// approximation.
    pub fn mean(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Variance `σ² = Σ p_i (1 − p_i)`.
    pub fn variance(&self) -> f64 {
        self.probs.iter().map(|p| p * (1.0 - p)).sum()
    }

    /// Third standardized moment `γ = Σ p_i(1−p_i)(1−2p_i) / σ³`, used by
    /// the refined normal approximation.
    pub fn skewness(&self) -> f64 {
        let var = self.variance();
        if var == 0.0 {
            return 0.0;
        }
        let third: f64 = self
            .probs
            .iter()
            .map(|p| p * (1.0 - p) * (1.0 - 2.0 * p))
            .sum();
        // σ³ = σ²·σ: two multiplies beat a transcendental `powf(1.5)` on a
        // path evaluated once per screened column.
        third / (var * var.sqrt())
    }

    /// Full probability mass function by the `O(d²)` dynamic program
    ///
    /// `P_n(X = k) = P_{n−1}(X = k)(1 − p_n) + P_{n−1}(X = k − 1) p_n`
    ///
    /// exactly as displayed in the paper. Returns `d + 1` masses.
    pub fn pmf(&self) -> Vec<f64> {
        let d = self.probs.len();
        let mut f = Vec::with_capacity(d + 1);
        f.push(1.0f64);
        for (n, &p) in self.probs.iter().enumerate() {
            let q = 1.0 - p;
            f.push(0.0);
            // Descend so f[j-1] still holds the previous iteration's value.
            for j in (1..=n + 1).rev() {
                f[j] = f[j] * q + f[j - 1] * p;
            }
            f[0] *= q;
        }
        f
    }

    /// Exact right tail `Pr[X ≥ k]` from the full pmf. `O(d²)` — reference
    /// implementation; production callers use [`Self::tail_pruned`].
    pub fn tail_full(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.probs.len() {
            return 0.0;
        }
        let pmf = self.pmf();
        // Summing the smaller side keeps absolute error minimal.
        let upper: f64 = pmf[k..].iter().sum();
        let lower: f64 = pmf[..k].iter().sum();
        if upper <= lower {
            upper.clamp(0.0, 1.0)
        } else {
            (1.0 - lower).clamp(0.0, 1.0)
        }
    }

    /// Exact right tail `Pr[X ≥ k]` with the `O(d·k)` pruned DP.
    ///
    /// Tracks only the masses of states `0..k` plus a single absorbing
    /// "≥ k" accumulator: once a trajectory reaches `k` errors it can never
    /// return, so the accumulator needs no per-state resolution.
    pub fn tail_pruned(&self, k: usize) -> f64 {
        match self.tail_early_exit(
            k,
            TailBudget {
                bail_above: f64::INFINITY,
            },
        ) {
            TailOutcome::Exact(p) => p,
            TailOutcome::Bailed { .. } => unreachable!("infinite budget never bails"),
        }
    }

    /// Pruned tail DP with early exit (LoFreq's production kernel).
    ///
    /// The running accumulator `tail_n = Pr[first n trials yield ≥ k
    /// successes]` is monotone non-decreasing in `n`, so it is a certified
    /// lower bound on the final tail at every step. When it exceeds
    /// `budget.bail_above` the final p-value provably cannot be significant
    /// and the DP aborts — the dominant savings on columns whose mismatch
    /// count is unremarkable, which is almost all of them.
    pub fn tail_early_exit(&self, k: usize, budget: TailBudget) -> TailOutcome {
        if k == 0 {
            return TailOutcome::Exact(1.0);
        }
        if k > self.probs.len() {
            return TailOutcome::Exact(0.0);
        }
        // f[j] = Pr[j successes among trials seen so far], j < k.
        let mut f = vec![0.0f64; k];
        f[0] = 1.0;
        let mut tail = 0.0f64;
        let mut top = 0usize; // highest index with nonzero mass, ≤ k−1
        for (n, &p) in self.probs.iter().enumerate() {
            let q = 1.0 - p;
            // Mass escaping into the absorbing ≥k state.
            tail += f[k - 1] * p;
            if k >= 2 {
                // Shift interior states; indices above min(top+1, k−1) are
                // still zero and need no work.
                let hi = top.min(k - 2);
                for j in (1..=hi + 1).rev() {
                    f[j] = f[j] * q + f[j - 1] * p;
                }
            }
            f[0] *= q;
            if top + 1 < k {
                top += 1;
            }
            if tail > budget.bail_above {
                return TailOutcome::Bailed {
                    lower_bound: tail,
                    trials_used: n + 1,
                };
            }
        }
        TailOutcome::Exact(tail.clamp(0.0, 1.0))
    }

    /// Full pmf via the DFT-CF method (Hong 2013).
    ///
    /// The characteristic function `φ(t) = Π_j (1 − p_j + p_j e^{it})` is
    /// evaluated at the `d + 1` roots of unity with log-magnitude/phase
    /// accumulation (the raw product underflows at depth ≳ 10⁴), then the
    /// pmf is recovered by an inverse DFT. Conjugate symmetry halves the
    /// evaluation work. `O(d²)` arithmetic dominated by the CF evaluation,
    /// but with far smaller constants than the full DP at large `d` and
    /// embarrassingly parallel across frequencies.
    pub fn pmf_dft(&self) -> Vec<f64> {
        let d = self.probs.len();
        let m = d + 1;
        if d == 0 {
            return vec![1.0];
        }
        let omega = 2.0 * std::f64::consts::PI / m as f64;
        let mut spectrum = vec![Complex::zero(); m];
        spectrum[0] = Complex::one();
        let half = m / 2;
        for l in 1..=half {
            let (sin_w, cos_w) = (omega * l as f64).sin_cos();
            let mut ln_mag = 0.0f64;
            let mut arg = 0.0f64;
            for &p in &self.probs {
                let re = 1.0 - p + p * cos_w;
                let im = p * sin_w;
                ln_mag += 0.5 * (re * re + im * im).ln();
                arg += im.atan2(re);
            }
            let val = Complex::cis(arg).scale(ln_mag.exp());
            spectrum[l] = val;
            if l != m - l {
                spectrum[m - l] = val.conj();
            }
        }
        // pmf_k = (1/m) Σ_l φ(ωl) e^{−iωlk}: a *forward* DFT scaled by 1/m.
        dft(&spectrum)
            .into_iter()
            .map(|c| (c.re / m as f64).clamp(0.0, 1.0))
            .collect()
    }

    // ----- grouped-trial (binned) kernels -------------------------------

    /// Mean `μ = Σ mᵢ·pᵢ` over `(probability, multiplicity)` bins —
    /// `O(#bins)` instead of `O(d)`.
    pub fn mean_binned(bins: &[(f64, u32)]) -> f64 {
        bins.iter().map(|&(p, m)| m as f64 * p).sum()
    }

    /// Variance `σ² = Σ mᵢ·pᵢ(1−pᵢ)` over bins.
    pub fn variance_binned(bins: &[(f64, u32)]) -> f64 {
        bins.iter().map(|&(p, m)| m as f64 * p * (1.0 - p)).sum()
    }

    /// Third standardized moment over bins (cf. [`Self::skewness`]).
    pub fn skewness_binned(bins: &[(f64, u32)]) -> f64 {
        let var = Self::variance_binned(bins);
        if var == 0.0 {
            return 0.0;
        }
        let third: f64 = bins
            .iter()
            .map(|&(p, m)| m as f64 * p * (1.0 - p) * (1.0 - 2.0 * p))
            .sum();
        third / (var * var.sqrt())
    }

    /// Exact right tail `Pr[X ≥ k]` from quality bins, `O(#bins·K²)`,
    /// using the runtime-dispatched SIMD kernels. Tiny truncation cuts
    /// (`k < SMALL_K_THRESHOLD`) route to the scalar table via
    /// [`Kernels::for_k`] — the vector kernels have nothing to amortize
    /// there — which is bitwise-neutral since all backends agree exactly.
    ///
    /// Matches [`Self::tail_pruned`] on the expanded trials to floating
    /// point accuracy (the proptest suite pins ≤ 1e−12 relative error).
    pub fn tail_pruned_binned(bins: &[(f64, u32)], k: usize) -> f64 {
        Self::tail_pruned_binned_with(ultravc_simd::kernels().for_k(k), bins, k)
    }

    /// [`Self::tail_pruned_binned`] with an explicit kernel backend —
    /// benchmarks and the backend-agreement tests pin paths with this.
    pub fn tail_pruned_binned_with(kernels: &Kernels, bins: &[(f64, u32)], k: usize) -> f64 {
        let mut scratch = BinnedTailScratch::default();
        match Self::tail_early_exit_binned_with(
            kernels,
            bins,
            k,
            TailBudget {
                bail_above: f64::INFINITY,
            },
            &mut scratch,
        ) {
            TailOutcome::Exact(p) => p,
            TailOutcome::Bailed { .. } => unreachable!("infinite budget never bails"),
        }
    }

    /// Binned pruned-tail DP with early exit — the production kernel of
    /// the binned calling path.
    ///
    /// Folds one bin of `m` identical trials at a time (highest error
    /// probability first, so the absorbing tail — and therefore the bail —
    /// grows as fast as possible; the completed value is independent of
    /// fold order). After every bin the running tail is a certified lower
    /// bound on the final `Pr[X ≥ k]`, exactly as in the per-trial
    /// [`Self::tail_early_exit`]; when it crosses `budget.bail_above` the
    /// column provably cannot be significant and the kernel bails,
    /// reporting the trials folded so far at bin granularity.
    ///
    /// `scratch` carries the DP state vectors; reusing one scratch across
    /// columns makes the kernel allocation-free in steady state.
    pub fn tail_early_exit_binned(
        bins: &[(f64, u32)],
        k: usize,
        budget: TailBudget,
        scratch: &mut BinnedTailScratch,
    ) -> TailOutcome {
        // Small-K routing (see `tail_pruned_binned`): production columns
        // with tiny truncation cuts run the scalar table.
        Self::tail_early_exit_binned_with(
            ultravc_simd::kernels().for_k(k),
            bins,
            k,
            budget,
            scratch,
        )
    }

    /// [`Self::tail_early_exit_binned`] with an explicit kernel backend.
    ///
    /// All backends are bitwise identical, so the outcome — including the
    /// bail bin and its certified `trials_used` — cannot depend on which
    /// table the caller passes; benchmarks use this to time the scalar
    /// fallback against the dispatched path on the same host.
    pub fn tail_early_exit_binned_with(
        kernels: &Kernels,
        bins: &[(f64, u32)],
        k: usize,
        budget: TailBudget,
        scratch: &mut BinnedTailScratch,
    ) -> TailOutcome {
        if k == 0 {
            return TailOutcome::Exact(1.0);
        }
        let total: u64 = bins.iter().map(|&(_, m)| m as u64).sum();
        if (k as u64) > total {
            return TailOutcome::Exact(0.0);
        }
        scratch.reset(k);
        let mut tail = 0.0f64;
        let mut trials_used = 0usize;
        // Highest probability first (bins arrive sorted ascending).
        for &(p, m) in bins.iter().rev() {
            if m == 0 || p <= 0.0 {
                continue;
            }
            fold_bin(&mut tail, p, m as u64, k, kernels, scratch);
            trials_used += m as usize;
            if tail > budget.bail_above {
                return TailOutcome::Bailed {
                    lower_bound: tail,
                    trials_used,
                };
            }
        }
        TailOutcome::Exact(tail.clamp(0.0, 1.0))
    }

    /// Exact right tail via the DFT-CF pmf.
    pub fn tail_dft(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.probs.len() {
            return 0.0;
        }
        let pmf = self.pmf_dft();
        let upper: f64 = pmf[k..].iter().sum();
        let lower: f64 = pmf[..k].iter().sum();
        if upper <= lower {
            upper.clamp(0.0, 1.0)
        } else {
            (1.0 - lower).clamp(0.0, 1.0)
        }
    }
}

/// Reusable state for [`PoissonBinomial::tail_early_exit_binned`]: the
/// pruned DP vector, its double buffer, the per-bin binomial pmf terms,
/// the binomial suffix tails and the vector kernels' compensator array.
/// All buffers grow to the high-water `K` of the columns a worker sees
/// and are then reused allocation-free.
///
/// The buffers are [`AlignedF64`] (32-byte-aligned storage), so the SIMD
/// backends' 4-lane blocks start on a vector-register boundary and need
/// no scalar peel loop.
#[derive(Debug, Clone, Default)]
pub struct BinnedTailScratch {
    /// `f[j] = Pr[j successes among folded trials]`, `j < k`.
    f: AlignedF64,
    /// Double buffer for the convolution output.
    g: AlignedF64,
    /// Binomial pmf terms `b_0..b_cut` of the bin being folded.
    b: AlignedF64,
    /// Binomial suffix tails `s[r] = Pr[Bin(m, p) ≥ r]`, `1 ≤ r ≤ k`.
    s: AlignedF64,
    /// Per-output rounding-error compensators for the vector convolution
    /// (the scalar backend keeps its compensator in a register instead).
    comp: AlignedF64,
}

impl BinnedTailScratch {
    /// Fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> BinnedTailScratch {
        BinnedTailScratch::default()
    }

    fn reset(&mut self, k: usize) {
        self.f.clear();
        self.f.resize(k, 0.0);
        self.f[0] = 1.0;
        self.g.clear();
        self.g.resize(k, 0.0);
        self.s.clear();
        self.s.resize(k + 1, 0.0);
        self.comp.clear();
        self.comp.resize(k, 0.0);
    }
}

/// `exp` underflows past this; chunk sizes are chosen so `m·ln q` stays
/// above it and `b_0 = q^m` never leaves the normal f64 range.
const LN_UNDERFLOW: f64 = -700.0;

/// Fold one bin of `m` trials with success probability `p` into the pruned
/// state (`scratch.f`, absorbing `tail`). `O(k·min(m, k))`.
///
/// When `q^m` would underflow (very low quality × very high multiplicity,
/// e.g. a million Phred-3 reads) the bin is folded as several sub-chunks
/// whose `q^chunk` stays in the normal range. This keeps every pmf term on
/// the relatively-accurate ratio-recurrence path — a log-space fallback
/// (`exp(m·ln q + ln C(m,i) + i·ln(p/q))`) cancels thousands-sized logs
/// and was measured to cost five decimal digits against a double-double
/// referee.
fn fold_bin(
    tail: &mut f64,
    p: f64,
    m: u64,
    k: usize,
    kr: &Kernels,
    scratch: &mut BinnedTailScratch,
) {
    if p >= 1.0 {
        // Deterministic: the bin contributes exactly m successes.
        let f = scratch.f.as_mut_slice();
        let m = m as usize;
        if m >= k {
            *tail += f.iter().sum::<f64>();
            f.fill(0.0);
        } else {
            *tail += f[k - m..].iter().sum::<f64>();
            for t in (m..k).rev() {
                f[t] = f[t - m];
            }
            f[..m].fill(0.0);
        }
        return;
    }

    let ln_q = (-p).ln_1p();
    let max_chunk = if m as f64 * ln_q > LN_UNDERFLOW {
        m
    } else {
        ((LN_UNDERFLOW / ln_q) as u64).max(1)
    };
    let mut remaining = m;
    while remaining > 0 {
        let chunk = remaining.min(max_chunk);
        fold_chunk(tail, p, chunk, k, kr, scratch);
        remaining -= chunk;
    }
}

/// Fold `m` identical trials via one truncated `Binomial(m, p)`
/// convolution. Requires `0 < p < 1` and `q^m` representable.
///
/// The two `O(K·min(m,K))` stages — pmf-term setup and the interior
/// convolution — go through the dispatched kernel table `kr`; the `O(K)`
/// suffix-tail and escape reductions stay scalar (they are shared by all
/// backends, which keeps every path bitwise identical).
fn fold_chunk(
    tail: &mut f64,
    p: f64,
    m: u64,
    k: usize,
    kr: &Kernels,
    scratch: &mut BinnedTailScratch,
) {
    let q = 1.0 - p;
    let ln_q = (-p).ln_1p();
    let cut = (m.min(k as u64)) as usize;
    let ratio = p / q;

    // Binomial pmf terms b_i = C(m,i) p^i q^(m-i), i = 0..=cut, by the
    // two-pass ratio recurrence (relatively accurate: a product of exact
    // ratios off an `exp` whose argument is bounded by LN_UNDERFLOW).
    let b = &mut scratch.b;
    b.clear();
    b.resize(cut + 1, 0.0);
    (kr.binomial_pmf)(b.as_mut_slice(), m, ratio, (m as f64 * ln_q).exp());

    // Suffix tails s[r] = Pr[Bin(m,p) ≥ r] for r = 1..=min(k, m), by the
    // compensated downward recurrence s[r] = s[r+1] + b_r seeded with
    // S_{cut+1}. The compensation (here and below) keeps the binned
    // kernel's own rounding well under the per-trial reference's, so the
    // two stay within the 1e−12 agreement contract even at extreme K.
    let s_above = if (cut as u64) == m {
        0.0
    } else {
        binomial_tail_above_k(b.as_slice(), p, m, k)
    };
    let s = &mut scratch.s;
    let mut running = KahanSum::from(s_above);
    for r in (1..=cut).rev() {
        running.add(b[r]);
        s[r] = running.value();
    }
    for slot in s.iter_mut().take(k + 1).skip(cut + 1) {
        *slot = 0.0;
    }

    // Escape: mass jumping from interior state j past k−1 in one bin.
    // Uses the *pre-fold* f, so it must precede the convolution.
    let f = &scratch.f;
    let mut escaped = KahanSum::default();
    for (j, &fj) in f.iter().enumerate() {
        let r = k - j;
        if fj > 0.0 && (r as u64) <= m {
            escaped.add(fj * s[r]);
        }
    }
    *tail += escaped.value();

    // Interior convolution f'[t] = Σ b_i f[t−i] into the double buffer,
    // with compensated accumulation (Neumaier in the scalar backend,
    // two-sum + compensator array in the vector backends — identical
    // values either way).
    (kr.conv_fold_compensated)(
        scratch.b.as_slice(),
        scratch.f.as_slice(),
        scratch.g.as_mut_slice(),
        scratch.comp.as_mut_slice(),
    );
    std::mem::swap(&mut scratch.f, &mut scratch.g);
}

/// Neumaier-compensated accumulator: error-free for sums whose condition
/// number is moderate, at ~4 flops per add.
#[derive(Debug, Clone, Copy, Default)]
struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    fn from(x: f64) -> KahanSum {
        KahanSum { sum: x, comp: 0.0 }
    }

    #[inline]
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    #[inline]
    fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// `Pr[Bin(m, p) ≥ k+1]` given the pmf terms `b[0..=k]` (requires
/// `m > k`). Chooses between the complement of a compensated prefix sum
/// (left of the mode, where the tail is large and the prefix small) and
/// direct upward summation with geometric cutoff (right of the mode, where
/// terms decay and the complement would cancel catastrophically) — both
/// sides preserve *relative* accuracy, which the certified-bail semantics
/// and the ≤1e−12 kernel-agreement contract need.
fn binomial_tail_above_k(b: &[f64], p: f64, m: u64, k: usize) -> f64 {
    let mode = ((m + 1) as f64 * p).floor();
    if ((k + 1) as f64) <= mode {
        // Compensated prefix keeps the complement's error at a few ulps
        // even for k in the thousands.
        let mut sum = KahanSum::default();
        for &bi in &b[..=k] {
            sum.add(bi);
        }
        (1.0 - sum.value()).max(0.0)
    } else {
        let mut term = b[k];
        if term <= 0.0 {
            return 0.0;
        }
        let ratio = p / (1.0 - p);
        let mut sum = 0.0f64;
        let mut i = k as u64 + 1;
        while i <= m {
            term *= ratio * (m - i + 1) as f64 / i as f64;
            sum += term;
            // Strictly decreasing past the mode: once a term stops moving
            // the sum at f64 resolution the remainder is negligible.
            if term <= sum * 1e-18 {
                break;
            }
            i += 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn random_probs(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.f64() * scale).collect()
    }

    #[test]
    fn empty_distribution_is_point_mass_at_zero() {
        let pb = PoissonBinomial::new(Vec::new()).unwrap();
        assert_eq!(pb.pmf(), vec![1.0]);
        assert_eq!(pb.tail_full(0), 1.0);
        assert_eq!(pb.tail_full(1), 0.0);
        assert_eq!(pb.tail_pruned(1), 0.0);
        assert_eq!(pb.pmf_dft(), vec![1.0]);
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(PoissonBinomial::new(vec![0.5, 1.5]).is_err());
        assert!(PoissonBinomial::new(vec![-0.1]).is_err());
        assert!(PoissonBinomial::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn identical_probs_reduce_to_binomial() {
        let n = 20;
        let p = 0.3;
        let pb = PoissonBinomial::new(vec![p; n]).unwrap();
        let pmf = pb.pmf();
        let bin = crate::binomial::Binomial::new(n as u64, p).unwrap();
        for k in 0..=n {
            assert!(
                close(pmf[k], bin.pmf(k as u64), 1e-12),
                "k={k}: {} vs {}",
                pmf[k],
                bin.pmf(k as u64)
            );
        }
    }

    #[test]
    fn pmf_normalizes_and_matches_moments() {
        let probs = random_probs(300, 7, 0.2);
        let pb = PoissonBinomial::new(probs).unwrap();
        let pmf = pb.pmf();
        let total: f64 = pmf.iter().sum();
        assert!(close(total, 1.0, 1e-10), "total {total}");
        let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!(close(mean, pb.mean(), 1e-8), "{mean} vs {}", pb.mean());
        let var: f64 = pmf
            .iter()
            .enumerate()
            .map(|(k, p)| (k as f64 - mean).powi(2) * p)
            .sum();
        assert!(
            close(var, pb.variance(), 1e-7),
            "{var} vs {}",
            pb.variance()
        );
    }

    #[test]
    fn pruned_tail_matches_full_tail() {
        let probs = random_probs(200, 13, 0.15);
        let pb = PoissonBinomial::new(probs).unwrap();
        for k in [0usize, 1, 2, 5, 10, 20, 40, 100, 200, 201] {
            let full = pb.tail_full(k);
            let pruned = pb.tail_pruned(k);
            assert!(
                close(full, pruned, 1e-10),
                "k={k}: full {full} vs pruned {pruned}"
            );
        }
    }

    #[test]
    fn dft_matches_dp_small_and_medium() {
        for &(n, seed, scale) in &[
            (1usize, 1u64, 0.5f64),
            (7, 2, 0.8),
            (64, 3, 0.3),
            (501, 4, 0.05),
        ] {
            let pb = PoissonBinomial::new(random_probs(n, seed, scale)).unwrap();
            let dp = pb.pmf();
            let dft = pb.pmf_dft();
            assert_eq!(dp.len(), dft.len());
            for (k, (a, b)) in dp.iter().zip(dft.iter()).enumerate() {
                assert!(close(*a, *b, 1e-8), "n={n} k={k}: dp {a} vs dft {b}");
            }
        }
    }

    #[test]
    fn tail_dft_matches_tail_pruned() {
        let pb = PoissonBinomial::new(random_probs(150, 21, 0.1)).unwrap();
        for k in [1usize, 3, 8, 15, 30] {
            assert!(close(pb.tail_dft(k), pb.tail_pruned(k), 1e-8), "k={k}");
        }
    }

    #[test]
    fn early_exit_bails_with_valid_lower_bound() {
        // High error probabilities, low threshold: the tail crosses fast.
        let pb = PoissonBinomial::new(vec![0.5; 1000]).unwrap();
        let out = pb.tail_early_exit(10, TailBudget { bail_above: 0.05 });
        match out {
            TailOutcome::Bailed {
                lower_bound,
                trials_used,
            } => {
                assert!(lower_bound > 0.05);
                assert!(trials_used < 1000, "should bail well before the end");
                let exact = pb.tail_pruned(10);
                assert!(exact >= lower_bound, "bound must be conservative");
            }
            TailOutcome::Exact(_) => panic!("expected a bail"),
        }
    }

    #[test]
    fn early_exit_exact_when_tail_small() {
        let pb = PoissonBinomial::new(vec![0.001; 500]).unwrap();
        let out = pb.tail_early_exit(20, TailBudget { bail_above: 0.05 });
        match out {
            TailOutcome::Exact(p) => {
                assert!(close(p, pb.tail_pruned(20), 1e-12));
                assert!(p < 1e-10, "20 errors at λ=0.5 is absurdly unlikely: {p}");
            }
            TailOutcome::Bailed { .. } => panic!("tail never crosses 0.05"),
        }
    }

    #[test]
    fn tail_monotone_decreasing_in_k() {
        let pb = PoissonBinomial::new(random_probs(80, 5, 0.4)).unwrap();
        let mut prev = 1.0;
        for k in 0..=81 {
            let t = pb.tail_pruned(k);
            assert!(t <= prev + 1e-12, "k={k}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn deep_column_mixed_qualities() {
        // A realistic ultra-deep column: 50 000 reads at Phred 20–40.
        let mut rng = Rng::new(99);
        let probs: Vec<f64> = (0..50_000)
            .map(|_| 10f64.powf(-(rng.range_u64(20, 40) as f64) / 10.0))
            .collect();
        let pb = PoissonBinomial::new(probs).unwrap();
        let lambda = pb.mean();
        // Around the mean the tail is moderate; far above it is tiny.
        let k_mean = lambda.round() as usize;
        let t = pb.tail_pruned(k_mean);
        assert!(t > 0.3 && t < 0.7, "tail at mean: {t}");
        let t_far = pb.tail_pruned(k_mean + 10 * (pb.variance().sqrt() as usize + 1));
        assert!(t_far < 1e-6, "far tail: {t_far}");
    }

    fn random_bins(n_bins: usize, max_mult: u32, seed: u64, scale: f64) -> Vec<(f64, u32)> {
        let mut rng = Rng::new(seed);
        let mut bins: Vec<(f64, u32)> = (0..n_bins)
            .map(|_| {
                (
                    rng.f64() * scale,
                    1 + (rng.next_u64() % max_mult as u64) as u32,
                )
            })
            .collect();
        bins.sort_by(|a, b| a.0.total_cmp(&b.0));
        bins
    }

    fn rel_close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
    }

    #[test]
    fn binned_tail_matches_per_trial_small() {
        for seed in 0..8u64 {
            let bins = random_bins(6, 40, seed + 1, 0.3);
            let pb = PoissonBinomial::from_bins(&bins);
            for k in [1usize, 2, 5, 10, 25, pb.len() / 2, pb.len(), pb.len() + 1] {
                let per_trial = pb.tail_pruned(k);
                let binned = PoissonBinomial::tail_pruned_binned(&bins, k);
                assert!(
                    rel_close(per_trial, binned, 1e-12),
                    "seed {seed} k={k}: per-trial {per_trial} vs binned {binned}"
                );
            }
        }
    }

    #[test]
    fn binned_tail_matches_per_trial_deep_low_error() {
        // The production regime: Phred 20–40 probabilities, multiplicities
        // in the thousands, K near and far above the mean.
        let bins: Vec<(f64, u32)> = [
            (40u8, 2_000u32),
            (35, 5_000),
            (30, 9_000),
            (25, 3_000),
            (20, 1_000),
        ]
        .iter()
        .map(|&(q, m)| (10f64.powf(-(q as f64) / 10.0), m))
        .rev()
        .collect();
        let pb = PoissonBinomial::from_bins(&bins);
        let lambda = pb.mean();
        for k in [
            1usize,
            lambda as usize,
            lambda as usize + 10,
            lambda as usize + 60,
        ] {
            let per_trial = pb.tail_pruned(k);
            let binned = PoissonBinomial::tail_pruned_binned(&bins, k);
            assert!(
                rel_close(per_trial, binned, 1e-12),
                "k={k}: per-trial {per_trial} vs binned {binned}"
            );
        }
    }

    #[test]
    fn binned_handles_huge_bins_where_qm_underflows() {
        // q^m underflows (0.794^6000): the log-space branch must engage and
        // the tail at small k is ~1.
        let bins = vec![(0.205_671_765_275_718_6, 6_000u32)]; // Phred 1
        let t = PoissonBinomial::tail_pruned_binned(&bins, 10);
        assert!(t > 1.0 - 1e-12, "tail {t}");
        // And a K far above the mean of a huge low-p bin stays accurate.
        // The referee here is the incomplete-beta binomial tail, not the
        // per-trial DP: at d = 1 000 000 the sequential DP itself drifts
        // ~1e-11 (the binned kernel, folding one convolution, does not).
        let bins2 = vec![(1e-4, 1_000_000u32)]; // λ = 100
        let bin = crate::binomial::Binomial::new(1_000_000, 1e-4).unwrap();
        for k in [50usize, 100, 140, 200] {
            let reference = bin.sf(k as u64);
            let binned = PoissonBinomial::tail_pruned_binned(&bins2, k);
            assert!(
                rel_close(reference, binned, 1e-9),
                "k={k}: beta_inc {reference} vs binned {binned}"
            );
        }
    }

    #[test]
    fn binned_deterministic_bins() {
        // p = 1 bins shift the state deterministically.
        let bins = vec![(0.5, 3u32), (1.0, 2)];
        let pb = PoissonBinomial::from_bins(&bins);
        for k in 0..=6 {
            let per_trial = pb.tail_pruned(k);
            let binned = PoissonBinomial::tail_pruned_binned(&bins, k);
            assert!(
                rel_close(per_trial, binned, 1e-12) || (per_trial - binned).abs() < 1e-15,
                "k={k}: {per_trial} vs {binned}"
            );
        }
        assert_eq!(PoissonBinomial::tail_pruned_binned(&[(1.0, 5)], 5), 1.0);
        assert_eq!(PoissonBinomial::tail_pruned_binned(&[(1.0, 5)], 6), 0.0);
    }

    #[test]
    fn binned_early_exit_is_sound() {
        let bins = random_bins(8, 500, 99, 0.4);
        let mut scratch = BinnedTailScratch::new();
        for k in [1usize, 5, 20] {
            let exact = PoissonBinomial::tail_pruned_binned(&bins, k);
            for bail in [0.001f64, 0.05, 0.9] {
                match PoissonBinomial::tail_early_exit_binned(
                    &bins,
                    k,
                    TailBudget { bail_above: bail },
                    &mut scratch,
                ) {
                    TailOutcome::Exact(p) => {
                        assert!(rel_close(p, exact, 1e-12));
                        assert!(p <= bail + 1e-12, "completed ⇒ tail ≤ bail");
                    }
                    TailOutcome::Bailed {
                        lower_bound,
                        trials_used,
                    } => {
                        assert!(lower_bound > bail);
                        assert!(
                            exact + 1e-12 >= lower_bound,
                            "k={k} bail={bail}: bound {lower_bound} not ≤ exact {exact}"
                        );
                        let total: usize = bins.iter().map(|&(_, m)| m as usize).sum();
                        assert!(trials_used <= total);
                    }
                }
            }
        }
    }

    #[test]
    fn binned_moments_match_per_trial() {
        let bins = random_bins(10, 200, 7, 0.9);
        let pb = PoissonBinomial::from_bins(&bins);
        assert!(rel_close(
            pb.mean(),
            PoissonBinomial::mean_binned(&bins),
            1e-12
        ));
        assert!(rel_close(
            pb.variance(),
            PoissonBinomial::variance_binned(&bins),
            1e-12
        ));
        let a = pb.skewness();
        let b = PoissonBinomial::skewness_binned(&bins);
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        assert_eq!(PoissonBinomial::skewness_binned(&[(1.0, 4)]), 0.0);
        assert_eq!(PoissonBinomial::mean_binned(&[]), 0.0);
    }

    #[test]
    fn binned_edge_cases() {
        // k = 0 and k > total.
        let mut scratch = BinnedTailScratch::new();
        let budget = TailBudget { bail_above: 0.5 };
        assert_eq!(
            PoissonBinomial::tail_early_exit_binned(&[(0.3, 4)], 0, budget, &mut scratch),
            TailOutcome::Exact(1.0)
        );
        assert_eq!(
            PoissonBinomial::tail_early_exit_binned(&[(0.3, 4)], 5, budget, &mut scratch),
            TailOutcome::Exact(0.0)
        );
        // Empty and zero-probability bins contribute nothing.
        assert_eq!(PoissonBinomial::tail_pruned_binned(&[], 1), 0.0);
        assert_eq!(
            PoissonBinomial::tail_pruned_binned(&[(0.0, 100), (0.5, 0)], 1),
            0.0
        );
        // Scratch reuse across ks of different size.
        let bins = random_bins(4, 30, 5, 0.2);
        let a = PoissonBinomial::tail_pruned_binned(&bins, 7);
        let _ = PoissonBinomial::tail_early_exit_binned(
            &bins,
            2,
            TailBudget {
                bail_above: f64::INFINITY,
            },
            &mut scratch,
        );
        let again = PoissonBinomial::tail_early_exit_binned(
            &bins,
            7,
            TailBudget {
                bail_above: f64::INFINITY,
            },
            &mut scratch,
        );
        assert_eq!(again.exact(), Some(a));
    }

    #[test]
    fn from_phred_probs_and_from_bins_agree_with_new() {
        let probs = vec![0.1, 0.01, 0.01, 0.3];
        let a = PoissonBinomial::new(probs.clone()).unwrap();
        let b = PoissonBinomial::from_phred_probs(probs);
        assert_eq!(a, b);
        let c = PoissonBinomial::from_bins(&[(0.01, 2), (0.1, 1), (0.3, 1)]);
        assert_eq!(c.len(), 4);
        assert!((c.mean() - a.mean()).abs() < 1e-15);
    }

    #[test]
    fn moments_closed_forms() {
        let pb = PoissonBinomial::new(vec![0.1, 0.5, 0.9]).unwrap();
        assert!(close(pb.mean(), 1.5, 1e-15));
        assert!(close(pb.variance(), 0.09 + 0.25 + 0.09, 1e-15));
        // Skewness of symmetric-around-half probs is 0.
        assert!(close(pb.skewness(), 0.0, 1e-12));
        // Degenerate all-certain trials: zero variance, zero skewness.
        let sure = PoissonBinomial::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(sure.skewness(), 0.0);
        assert_eq!(sure.tail_pruned(2), 1.0);
        assert_eq!(sure.tail_pruned(3), 0.0);
    }
}
