//! The normal distribution, including a high-accuracy quantile function.
//!
//! Used by the refined-normal approximation to the Poisson-binomial tail
//! (Hong 2013 calls it "RNA") and by the read simulator for fragment-length
//! sampling.

use crate::specfun::{erfc, ln_erfc};
use crate::{Result, StatsError};

use std::f64::consts::{PI, SQRT_2};

/// Normal distribution `N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Construct with mean `μ` and standard deviation `σ > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if sigma <= 0.0 || !mu.is_finite() || !sigma.is_finite() {
            return Err(StatsError::Domain {
                what: "Normal::new",
                msg: format!("require finite μ and σ > 0, got μ={mu}, σ={sigma}"),
            });
        }
        Ok(Normal { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation.
    #[inline]
    pub fn sd(&self) -> f64 {
        self.sigma
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * PI).sqrt())
    }

    /// Cumulative distribution `Pr[X ≤ x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * erfc(-z / SQRT_2)
    }

    /// Survival function `Pr[X > x]`, with full relative precision in the
    /// upper tail (does not compute `1 − cdf`).
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * erfc(z / SQRT_2)
    }

    /// Natural log of the survival function, finite far into the tail where
    /// [`Normal::sf`] underflows to zero.
    pub fn ln_sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        ln_erfc(z / SQRT_2) - std::f64::consts::LN_2
    }

    /// Quantile (inverse CDF): the `x` with `cdf(x) = q`.
    ///
    /// Acklam's rational approximation (max rel. error ≈ 1.15e−9) refined by
    /// one Halley step against the crate's own `erfc`, giving near
    /// machine-precision inversion.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0 < q && q < 1.0) {
            return Err(StatsError::Domain {
                what: "Normal::quantile",
                msg: format!("q must lie in (0,1), got {q}"),
            });
        }
        let z = standard_quantile(q);
        Ok(self.mu + self.sigma * z)
    }
}

/// Standard normal quantile via Acklam + one Halley polish step.
fn standard_quantile(q: f64) -> f64 {
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const Q_LOW: f64 = 0.02425;

    let x = if q < Q_LOW {
        let u = (-2.0 * q.ln()).sqrt();
        (((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0)
    } else if q <= 1.0 - Q_LOW {
        let u = q - 0.5;
        let r = u * u;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * u
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let u = (-2.0 * (1.0 - q).ln()).sqrt();
        -((((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0))
    };

    // One Halley refinement: e = Φ(x) − q, then update.
    let e = 0.5 * erfc(-x / SQRT_2) - q;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_peak_and_symmetry() {
        let n = Normal::standard();
        assert!((n.pdf(0.0) - 1.0 / (2.0 * PI).sqrt()).abs() < 1e-15);
        assert!((n.pdf(1.3) - n.pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn cdf_reference_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((n.cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn sf_complementary_and_tail_precise() {
        let n = Normal::standard();
        for &x in &[-3.0, -1.0, 0.0, 0.5, 2.0, 5.0] {
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-12);
        }
        // Far tail keeps relative precision: Φ̄(10) ≈ 7.6199e−24.
        let tail = n.sf(10.0);
        assert!(
            (tail / 7.619_853_024_160_527e-24 - 1.0).abs() < 1e-9,
            "{tail}"
        );
    }

    #[test]
    fn ln_sf_matches_log_of_sf() {
        let n = Normal::standard();
        for &x in &[0.0, 1.0, 5.0, 20.0] {
            assert!((n.ln_sf(x) - n.sf(x).ln()).abs() < 1e-9, "x={x}");
        }
        // And stays finite where sf underflows.
        assert!(n.ln_sf(50.0).is_finite());
    }

    #[test]
    fn quantile_inverts_cdf_to_high_accuracy() {
        let n = Normal::standard();
        for &q in &[1e-12, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.975, 1.0 - 1e-9] {
            let x = n.quantile(q).unwrap();
            let back = n.cdf(x);
            assert!(
                (back - q).abs() < 1e-12 * q.max(1e-3),
                "q={q}: x={x}, back={back}"
            );
        }
    }

    #[test]
    fn location_scale() {
        let n = Normal::new(10.0, 2.0).unwrap();
        let s = Normal::standard();
        assert!((n.cdf(12.0) - s.cdf(1.0)).abs() < 1e-14);
        assert!(
            (n.quantile(0.975).unwrap() - (10.0 + 2.0 * s.quantile(0.975).unwrap())).abs() < 1e-10
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::standard().quantile(0.0).is_err());
        assert!(Normal::standard().quantile(1.0).is_err());
    }
}
