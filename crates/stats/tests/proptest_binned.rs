//! Property tests for the grouped-trial (binned) Poisson-binomial kernels:
//! on random quality-binned columns — depths up to 50 000, mixed Phred
//! qualities, random K — the binned tail must agree with every per-trial
//! exact kernel, and the binned moments with the per-trial moments.
//!
//! Tolerances: the binned and per-trial kernels round differently (the
//! per-trial DP performs `d` sequential updates; the binned DP one
//! convolution per quality), so "agreement" is bounded by the *sum* of
//! both kernels' drifts. A double-double referee puts the binned kernel's
//! own error below the per-trial kernel's at every depth tested; their
//! mutual disagreement stays ≤ 1e−12 relative across this corpus.

use proptest::prelude::*;
use ultravc_stats::poisson_binomial::{BinnedTailScratch, PoissonBinomial};
use ultravc_stats::{TailBudget, TailOutcome};

/// Strategy: a quality-binned column. Bins are `(Phred, multiplicity)`
/// with distinct Phred scores, converted to sorted `(prob, multiplicity)`
/// pairs; total depth ranges from a handful of reads to 50 000.
fn bins_strategy(max_bins: usize, max_mult: u32) -> impl Strategy<Value = Vec<(f64, u32)>> {
    prop::collection::vec((2u8..=64, 1u32..=max_mult), 1..max_bins).prop_map(|raw| {
        let mut per_qual = std::collections::BTreeMap::<u8, u64>::new();
        for (q, m) in raw {
            *per_qual.entry(q).or_default() += m as u64;
        }
        // Descending quality = ascending probability, mirroring
        // `PileupColumn::fill_quality_bins`.
        per_qual
            .into_iter()
            .rev()
            .map(|(q, m)| {
                (
                    10f64.powf(-(q as f64) / 10.0),
                    m.min(u32::MAX as u64) as u32,
                )
            })
            .collect()
    })
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Pick a K inside the regime the caller exercises: between 1 and
/// min(depth, λ + 12σ, 2048), scaled by `frac`.
fn pick_k(bins: &[(f64, u32)], frac: f64) -> usize {
    let lambda = PoissonBinomial::mean_binned(bins);
    let sigma = PoissonBinomial::variance_binned(bins).sqrt();
    let depth: usize = bins.iter().map(|&(_, m)| m as usize).sum();
    let hi = ((lambda + 12.0 * sigma) as usize + 2).min(depth).min(2048);
    ((hi as f64 * frac) as usize).clamp(1, hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binned_tail_matches_per_trial_pruned(bins in bins_strategy(40, 2_000), frac in 0.0..=1.0f64) {
        let k = pick_k(&bins, frac);
        let pb = PoissonBinomial::from_bins(&bins);
        let per_trial = pb.tail_pruned(k);
        let binned = PoissonBinomial::tail_pruned_binned(&bins, k);
        prop_assert!(
            rel_diff(per_trial, binned) <= 1e-12,
            "k={k} depth={}: per-trial {per_trial:e} vs binned {binned:e} (rel {:.3e})",
            pb.len(),
            rel_diff(per_trial, binned)
        );
    }

    #[test]
    fn binned_tail_matches_full_and_dft_on_small_columns(bins in bins_strategy(8, 60), frac in 0.0..=1.0f64) {
        // The O(d²) kernels only tolerate modest depths; agreement there
        // transitively ties the binned kernel to all four per-trial ones.
        let pb = PoissonBinomial::from_bins(&bins);
        let k = ((pb.len() as f64 * frac) as usize).clamp(1, pb.len());
        let binned = PoissonBinomial::tail_pruned_binned(&bins, k);
        let full = pb.tail_full(k);
        let dft = pb.tail_dft(k);
        prop_assert!((full - binned).abs() < 1e-10, "full {full} vs binned {binned}");
        prop_assert!((dft - binned).abs() < 1e-7, "dft {dft} vs binned {binned}");
    }

    #[test]
    fn binned_early_exit_never_lies(bins in bins_strategy(30, 1_500), frac in 0.0..=1.0f64, bail in 0.001..0.5f64) {
        let k = pick_k(&bins, frac);
        let exact = PoissonBinomial::tail_pruned_binned(&bins, k);
        let mut scratch = BinnedTailScratch::new();
        match PoissonBinomial::tail_early_exit_binned(&bins, k, TailBudget { bail_above: bail }, &mut scratch) {
            TailOutcome::Exact(p) => {
                prop_assert!(rel_diff(p, exact) <= 1e-12);
                prop_assert!(p <= bail + 1e-12, "completed DP implies tail ≤ bail");
            }
            TailOutcome::Bailed { lower_bound, trials_used } => {
                prop_assert!(lower_bound > bail);
                prop_assert!(exact + 1e-12 >= lower_bound, "bound not conservative: {lower_bound} vs exact {exact}");
                let total: usize = bins.iter().map(|&(_, m)| m as usize).sum();
                prop_assert!(trials_used >= 1 && trials_used <= total);
            }
        }
    }

    #[test]
    fn binned_moments_match_per_trial(bins in bins_strategy(40, 2_000)) {
        let pb = PoissonBinomial::from_bins(&bins);
        prop_assert!(rel_diff(pb.mean(), PoissonBinomial::mean_binned(&bins)) <= 1e-12);
        prop_assert!(rel_diff(pb.variance(), PoissonBinomial::variance_binned(&bins)) <= 1e-12);
        let a = pb.skewness();
        let b = PoissonBinomial::skewness_binned(&bins);
        prop_assert!((a - b).abs() <= 1e-11 * a.abs().max(1.0), "skewness {a} vs {b}");
    }

    #[test]
    fn binned_tail_monotone_in_k(bins in bins_strategy(20, 300)) {
        let depth: usize = bins.iter().map(|&(_, m)| m as usize).sum();
        let mut prev = 1.0f64;
        let hi = depth.min(600);
        for k in 0..=hi {
            let t = PoissonBinomial::tail_pruned_binned(&bins, k);
            prop_assert!(t <= prev + 1e-12, "k={k}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn scratch_reuse_is_sound(bins in bins_strategy(20, 800), frac in 0.0..=1.0f64) {
        // One scratch across many (bins, k) pairs must give identical
        // results to a fresh scratch each time.
        let mut shared = BinnedTailScratch::new();
        let budget = TailBudget { bail_above: f64::INFINITY };
        for step in 0..4usize {
            let k = pick_k(&bins, frac).saturating_add(step * 3).max(1);
            let fresh = PoissonBinomial::tail_pruned_binned(&bins, k);
            let reused = PoissonBinomial::tail_early_exit_binned(&bins, k, budget, &mut shared);
            prop_assert_eq!(reused.exact(), Some(fresh), "k={}", k);
        }
    }
}

// ---------------------------------------------------------------------
// SIMD dispatch agreement: every backend available on this host must
// reproduce the scalar reference exactly — same tails (the ≤1e-14
// contract; the backends are bitwise-identical by construction, so this
// holds with orders of magnitude to spare) and the same certified-bail
// decisions, down to the trial count.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_backends_match_scalar_tail(bins in bins_strategy(40, 2_000), frac in 0.0..=1.0f64) {
        let k = pick_k(&bins, frac);
        let scalar = PoissonBinomial::tail_pruned_binned_with(ultravc_simd::scalar(), &bins, k);
        for kr in ultravc_simd::available() {
            let got = PoissonBinomial::tail_pruned_binned_with(kr, &bins, k);
            prop_assert!(
                rel_diff(scalar, got) <= 1e-14,
                "backend {} diverges at k={k}: scalar {scalar:e} vs {got:e} (rel {:.3e})",
                kr.name,
                rel_diff(scalar, got)
            );
        }
    }

    #[test]
    fn simd_backends_match_scalar_bail_decisions(
        bins in bins_strategy(40, 2_000),
        frac in 0.0..=1.0f64,
        bail_frac in 0.1..=4.0f64,
    ) {
        let k = pick_k(&bins, frac);
        let scalar_kr = ultravc_simd::scalar();
        let exact = PoissonBinomial::tail_pruned_binned_with(scalar_kr, &bins, k);
        // Budgets straddling the exact tail exercise both bail and
        // run-to-completion paths; degenerate tails fall back to a fixed
        // budget so the comparison still runs.
        let bail_above = if exact > 0.0 { exact * bail_frac } else { 0.05 };
        let budget = TailBudget { bail_above };
        let mut scratch = BinnedTailScratch::new();
        let reference = PoissonBinomial::tail_early_exit_binned_with(
            scalar_kr, &bins, k, budget, &mut scratch,
        );
        for kr in ultravc_simd::available() {
            let got = PoissonBinomial::tail_early_exit_binned_with(
                kr, &bins, k, budget, &mut scratch,
            );
            match (reference, got) {
                (TailOutcome::Exact(a), TailOutcome::Exact(b)) => {
                    prop_assert!(
                        rel_diff(a, b) <= 1e-14,
                        "backend {}: exact {a:e} vs {b:e}", kr.name
                    );
                }
                (
                    TailOutcome::Bailed { lower_bound: lb_a, trials_used: t_a },
                    TailOutcome::Bailed { lower_bound: lb_b, trials_used: t_b },
                ) => {
                    prop_assert_eq!(
                        t_a, t_b,
                        "backend {} certified-bail trial count diverges (k={})",
                        kr.name, k
                    );
                    prop_assert!(
                        rel_diff(lb_a, lb_b) <= 1e-14,
                        "backend {}: bail bound {lb_a:e} vs {lb_b:e}", kr.name
                    );
                }
                (a, b) => prop_assert!(
                    false,
                    "backend {} changed the early-exit decision at k={k}: {a:?} vs {b:?}",
                    kr.name
                ),
            }
        }
    }
}
