//! Property-based tests for the numerics substrate.
//!
//! These pin down the invariants the variant caller leans on: exact kernels
//! agree with each other, tails are monotone, approximations respect the
//! Le Cam guarantee, and the early-exit DP never lies.

use proptest::prelude::*;
use ultravc_stats::poisson::Poisson;
use ultravc_stats::poisson_binomial::{PoissonBinomial, TailBudget, TailOutcome};
use ultravc_stats::specfun::{beta_inc, gamma_p, gamma_q};
use ultravc_stats::{le_cam_bound, poisson_tail};

/// Strategy: a vector of plausible per-read error probabilities. Phred 10–50
/// corresponds to p ∈ [1e−5, 0.1]; include some larger values to stress the
/// kernels outside the comfortable regime.
fn prob_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..=0.5f64, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pmf_is_a_distribution(probs in prob_vec(120)) {
        let pb = PoissonBinomial::new(probs).unwrap();
        let pmf = pb.pmf();
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        for (k, &m) in pmf.iter().enumerate() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&m), "pmf[{k}] = {m}");
        }
    }

    #[test]
    fn full_pruned_and_dft_tails_agree(probs in prob_vec(80), k_frac in 0.0..1.2f64) {
        let d = probs.len();
        let k = ((d as f64) * k_frac) as usize;
        let pb = PoissonBinomial::new(probs).unwrap();
        let full = pb.tail_full(k);
        let pruned = pb.tail_pruned(k);
        let dft = pb.tail_dft(k);
        prop_assert!((full - pruned).abs() < 1e-9, "full {full} vs pruned {pruned}");
        prop_assert!((full - dft).abs() < 1e-7, "full {full} vs dft {dft}");
    }

    #[test]
    fn tail_is_monotone_in_k(probs in prob_vec(60)) {
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let mut prev = 1.0f64;
        for k in 0..=probs.len() + 1 {
            let t = pb.tail_pruned(k);
            prop_assert!(t <= prev + 1e-12, "k={k}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn adding_a_trial_never_decreases_the_tail(probs in prob_vec(50), extra in 0.0..=0.5f64, k in 1usize..20) {
        // Monotonicity in n is exactly what justifies the early-exit DP.
        let base = PoissonBinomial::new(probs.clone()).unwrap();
        let mut bigger = probs;
        bigger.push(extra);
        let grown = PoissonBinomial::new(bigger).unwrap();
        prop_assert!(grown.tail_pruned(k) + 1e-12 >= base.tail_pruned(k));
    }

    #[test]
    fn early_exit_is_sound(probs in prob_vec(100), k in 1usize..30, bail in 0.001..0.5f64) {
        let pb = PoissonBinomial::new(probs).unwrap();
        let exact = pb.tail_pruned(k);
        match pb.tail_early_exit(k, TailBudget { bail_above: bail }) {
            TailOutcome::Exact(p) => {
                prop_assert!((p - exact).abs() < 1e-12);
                prop_assert!(p <= bail + 1e-12, "completed DP implies tail ≤ bail");
            }
            TailOutcome::Bailed { lower_bound, trials_used } => {
                prop_assert!(lower_bound > bail);
                prop_assert!(exact + 1e-12 >= lower_bound, "bound not conservative");
                prop_assert!(trials_used <= pb.len());
            }
        }
    }

    #[test]
    fn poisson_approx_respects_le_cam(probs in prop::collection::vec(0.0..=0.1f64, 1..200), k in 0usize..40) {
        let pb = PoissonBinomial::new(probs.clone()).unwrap();
        let exact = pb.tail_pruned(k);
        let approx = poisson_tail(&probs, k);
        let bound = le_cam_bound(&probs);
        prop_assert!(
            (exact - approx).abs() <= bound + 1e-9,
            "|{exact} − {approx}| > {bound}"
        );
    }

    #[test]
    fn gamma_complementarity(a in 0.1..500.0f64, x in 0.0..800.0f64) {
        let p = gamma_p(a, x).unwrap();
        let q = gamma_q(a, x).unwrap();
        prop_assert!((p + q - 1.0).abs() < 1e-9, "P {p} + Q {q} ≠ 1");
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn beta_inc_bounds_and_symmetry(a in 0.1..50.0f64, b in 0.1..50.0f64, x in 0.0..=1.0f64) {
        let v = beta_inc(a, b, x).unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
        let mirror = 1.0 - beta_inc(b, a, 1.0 - x).unwrap();
        prop_assert!((v - mirror).abs() < 1e-8, "{v} vs {mirror}");
    }

    #[test]
    fn poisson_sf_cdf_partition(lambda in 0.0..2000.0f64, k in 1u64..3000) {
        let d = Poisson::new(lambda).unwrap();
        let total = d.sf(k) + d.cdf(k - 1);
        prop_assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn binomial_special_case_of_poisson_binomial(n in 1usize..40, p in 0.0..=1.0f64, k_frac in 0.0..1.0f64) {
        let k = ((n as f64) * k_frac) as usize;
        let pb = PoissonBinomial::new(vec![p; n]).unwrap();
        let bin = ultravc_stats::binomial::Binomial::new(n as u64, p).unwrap();
        prop_assert!((pb.tail_pruned(k) - bin.sf(k as u64)).abs() < 1e-9);
    }
}
