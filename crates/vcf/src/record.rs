//! VCF records for single-nucleotide variants.

use serde::{Deserialize, Serialize};
use ultravc_genome::alphabet::Base;
use ultravc_genome::variant::Snv;

/// Per-record INFO payload (the subset LoFreq emits for SNVs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Info {
    /// Read depth at the column (after pileup filters and the depth cap).
    pub dp: u32,
    /// Alternate allele frequency.
    pub af: f64,
    /// Strand-bias p-value, Phred-scaled (larger = more biased).
    pub sb: f64,
    /// Depth by class and strand: ref-forward, ref-reverse, alt-forward,
    /// alt-reverse.
    pub dp4: (u32, u32, u32, u32),
}

/// FILTER column state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterStatus {
    /// Not yet filtered (`.`).
    Unfiltered,
    /// Passed all filters (`PASS`).
    Pass,
    /// Failed the named filters (semicolon-joined on output).
    Fail(Vec<String>),
}

impl FilterStatus {
    /// Whether the record should appear in a pass-only view.
    pub fn passed(&self) -> bool {
        matches!(self, FilterStatus::Pass)
    }
}

/// One SNV call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcfRecord {
    /// Reference sequence name.
    pub chrom: String,
    /// 0-based position (rendered 1-based in VCF text).
    pub pos: usize,
    /// Reference base.
    pub ref_base: Base,
    /// Alternate base.
    pub alt_base: Base,
    /// Phred-scaled call quality: `−10·log₁₀(p-value)`.
    pub qual: f64,
    /// FILTER column.
    pub filter: FilterStatus,
    /// INFO payload.
    pub info: Info,
}

impl VcfRecord {
    /// The variant identity `(pos, ref, alt)` — the intersection key of the
    /// upset analysis.
    pub fn key(&self) -> Snv {
        Snv {
            pos: self.pos,
            ref_base: self.ref_base,
            alt_base: self.alt_base,
        }
    }

    /// The p-value this record's QUAL encodes.
    pub fn pvalue(&self) -> f64 {
        10f64.powf(-self.qual / 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pos: usize, qual: f64) -> VcfRecord {
        VcfRecord {
            chrom: "test".to_string(),
            pos,
            ref_base: Base::A,
            alt_base: Base::G,
            qual,
            filter: FilterStatus::Unfiltered,
            info: Info {
                dp: 100,
                af: 0.05,
                sb: 0.0,
                dp4: (47, 48, 3, 2),
            },
        }
    }

    #[test]
    fn key_is_position_and_alleles() {
        let r = rec(41, 20.0);
        let k = r.key();
        assert_eq!(k.pos, 41);
        assert_eq!(k.ref_base, Base::A);
        assert_eq!(k.alt_base, Base::G);
    }

    #[test]
    fn qual_pvalue_roundtrip() {
        let r = rec(0, 30.0);
        assert!((r.pvalue() - 1e-3).abs() < 1e-15);
        let r2 = rec(0, 13.010_299_956_639_813);
        assert!((r2.pvalue() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn filter_status_predicates() {
        assert!(!FilterStatus::Unfiltered.passed());
        assert!(FilterStatus::Pass.passed());
        assert!(!FilterStatus::Fail(vec!["sb".into()]).passed());
    }
}
