//! # ultravc-vcf
//!
//! A VCF v4.2 subset: records, INFO fields, text writer/parser, and —
//! centrally for this reproduction — LoFreq-style **dynamic filtering**.
//!
//! LoFreq's post-call filter derives its SNV-quality threshold from the
//! *call set it is given* (a Bonferroni-style correction over the number of
//! candidate records) unless the user pins it. That data-dependence is the
//! root of the bug the paper fixes (§IV): the parallel wrapper script ran
//! the filter once per worker process and then again on the merged output,
//! so records were judged against two different data-dependent thresholds —
//! and the final call set depended on how the input happened to be
//! partitioned. The shared-memory driver filters exactly once.
//!
//! [`filter::DynamicFilter`] implements the data-dependent filter honestly,
//! so the workspace's script-mode driver reproduces the bug and the
//! OpenMP-mode driver demonstrates the fix (experiment D-3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filter;
pub mod record;
pub mod writer;

pub use filter::{DynamicFilter, FilterParams, FilterReport};
pub use record::{FilterStatus, Info, VcfRecord};
pub use writer::{parse_vcf, write_vcf, VcfWriter};
