//! LoFreq-style post-call filtering with *data-dependent* thresholds.
//!
//! Three filters, mirroring `lofreq filter` defaults:
//!
//! * **Minimum coverage** — drop records with `DP` below a floor.
//! * **Strand bias (Holm–Bonferroni)** — the per-record SB values are
//!   Phred-scaled p-values from Fisher's exact test; the step-down Holm
//!   procedure controls FWER at `sb_alpha` *across the given call set*.
//! * **Dynamic SNV quality** — unless pinned, the QUAL threshold is
//!   `−10·log₁₀(snv_alpha / n)` where `n` is the *number of records being
//!   filtered*. This is the data dependence that produces the paper's
//!   double-filtering inconsistency when applied per-partition and then
//!   again to the merged set.

use crate::record::{FilterStatus, VcfRecord};
use serde::{Deserialize, Serialize};

/// Filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterParams {
    /// Minimum column depth.
    pub min_coverage: u32,
    /// FWER level for the Holm strand-bias procedure.
    pub sb_alpha: f64,
    /// SNV-quality significance level; the Phred threshold becomes
    /// `−10·log₁₀(snv_alpha / n_records)` (dynamic) unless
    /// [`FilterParams::fixed_qual`] pins it.
    pub snv_alpha: f64,
    /// Pinned QUAL threshold; `Some(q)` disables the dynamic behaviour
    /// (LoFreq's explicit `-Q`). This is how a user could have avoided the
    /// script bug, as the paper notes ("unless set by the user, filter
    /// values are dynamically set during a LoFreq run").
    pub fixed_qual: Option<f64>,
}

impl Default for FilterParams {
    fn default() -> Self {
        FilterParams {
            min_coverage: 10,
            sb_alpha: 0.001,
            snv_alpha: 0.05,
            fixed_qual: None,
        }
    }
}

/// What one filter application did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterReport {
    /// Records examined.
    pub examined: usize,
    /// Records that passed.
    pub passed: usize,
    /// Dropped for low coverage.
    pub failed_coverage: usize,
    /// Dropped for strand bias.
    pub failed_strand_bias: usize,
    /// Dropped for low SNV quality.
    pub failed_quality: usize,
    /// The QUAL threshold actually applied (dynamic or pinned).
    pub qual_threshold: f64,
}

/// The filter engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicFilter {
    params: FilterParams,
}

impl DynamicFilter {
    /// Build with the given parameters.
    pub fn new(params: FilterParams) -> DynamicFilter {
        DynamicFilter { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// The QUAL threshold this filter would apply to a call set of size
    /// `n` — the data-dependent quantity at the heart of experiment D-3.
    pub fn qual_threshold_for(&self, n: usize) -> f64 {
        if let Some(q) = self.params.fixed_qual {
            return q;
        }
        if n == 0 {
            return 0.0;
        }
        let alpha_per_test = self.params.snv_alpha / n as f64;
        -10.0 * alpha_per_test.log10()
    }

    /// Apply all filters, **dropping** failing records (LoFreq's default
    /// output mode) and marking survivors `PASS`.
    pub fn apply(&self, records: &mut Vec<VcfRecord>) -> FilterReport {
        let examined = records.len();
        let qual_threshold = self.qual_threshold_for(examined);

        // Holm–Bonferroni on the strand-bias p-values of the current set.
        let sb_fail = self.holm_strand_bias(records);

        let mut failed_coverage = 0;
        let mut failed_strand_bias = 0;
        let mut failed_quality = 0;
        let mut kept = Vec::with_capacity(records.len());
        for (i, mut rec) in records.drain(..).enumerate() {
            let mut failures: Vec<String> = Vec::new();
            if rec.info.dp < self.params.min_coverage {
                failures.push("min_dp".to_string());
                failed_coverage += 1;
            }
            if sb_fail[i] {
                failures.push("sb_holm".to_string());
                failed_strand_bias += 1;
            }
            if rec.qual < qual_threshold {
                failures.push("min_snvqual".to_string());
                failed_quality += 1;
            }
            if failures.is_empty() {
                rec.filter = FilterStatus::Pass;
                kept.push(rec);
            }
        }
        let passed = kept.len();
        *records = kept;
        FilterReport {
            examined,
            passed,
            failed_coverage,
            failed_strand_bias,
            failed_quality,
            qual_threshold,
        }
    }

    /// Holm step-down over the records' strand-bias p-values; returns a
    /// per-record failure mask.
    fn holm_strand_bias(&self, records: &[VcfRecord]) -> Vec<bool> {
        let m = records.len();
        let mut fail = vec![false; m];
        if m == 0 {
            return fail;
        }
        // SB is Phred-scaled: p = 10^(−SB/10).
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            records[b]
                .info
                .sb
                .partial_cmp(&records[a].info.sb)
                .expect("SB values are finite")
        });
        // Walk from the most biased (smallest p); stop at the first
        // non-rejection.
        for (rank, &idx) in order.iter().enumerate() {
            let p = 10f64.powf(-records[idx].info.sb / 10.0);
            let level = self.params.sb_alpha / (m - rank) as f64;
            if p <= level {
                fail[idx] = true;
            } else {
                break;
            }
        }
        fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Info;
    use ultravc_genome::alphabet::Base;

    fn rec(pos: usize, qual: f64, dp: u32, sb: f64) -> VcfRecord {
        VcfRecord {
            chrom: "t".to_string(),
            pos,
            ref_base: Base::A,
            alt_base: Base::G,
            qual,
            filter: FilterStatus::Unfiltered,
            info: Info {
                dp,
                af: 0.05,
                sb,
                dp4: (dp / 2, dp / 2, 3, 2),
            },
        }
    }

    #[test]
    fn dynamic_threshold_scales_with_set_size() {
        let f = DynamicFilter::new(FilterParams::default());
        // α=0.05: n=1 → 13.01; n=100 → 33.01.
        assert!((f.qual_threshold_for(1) - 13.0103).abs() < 1e-3);
        assert!((f.qual_threshold_for(100) - 33.0103).abs() < 1e-3);
        assert!(f.qual_threshold_for(100) > f.qual_threshold_for(10));
        assert_eq!(f.qual_threshold_for(0), 0.0);
    }

    #[test]
    fn fixed_qual_pins_threshold() {
        let f = DynamicFilter::new(FilterParams {
            fixed_qual: Some(20.0),
            ..FilterParams::default()
        });
        assert_eq!(f.qual_threshold_for(1), 20.0);
        assert_eq!(f.qual_threshold_for(1_000_000), 20.0);
    }

    #[test]
    fn coverage_filter() {
        let f = DynamicFilter::new(FilterParams {
            min_coverage: 50,
            fixed_qual: Some(0.0),
            ..FilterParams::default()
        });
        let mut recs = vec![rec(1, 99.0, 100, 0.0), rec(2, 99.0, 10, 0.0)];
        let report = f.apply(&mut recs);
        assert_eq!(report.examined, 2);
        assert_eq!(report.passed, 1);
        assert_eq!(report.failed_coverage, 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].pos, 1);
        assert!(recs[0].filter.passed());
    }

    #[test]
    fn quality_filter_uses_dynamic_threshold() {
        let f = DynamicFilter::new(FilterParams::default());
        // n=2 → threshold = −10·log10(0.025) ≈ 16.02.
        let mut recs = vec![rec(1, 20.0, 100, 0.0), rec(2, 14.0, 100, 0.0)];
        let report = f.apply(&mut recs);
        assert!((report.qual_threshold - 16.0206).abs() < 1e-3);
        assert_eq!(report.failed_quality, 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].pos, 1);
    }

    #[test]
    fn partition_dependence_is_real() {
        // The same record survives in a small set but dies in a large one —
        // the mechanism behind the paper's double-filtering bug.
        let f = DynamicFilter::new(FilterParams::default());
        let borderline = rec(7, 20.0, 100, 0.0);

        let mut small = vec![borderline.clone(), rec(1, 90.0, 100, 0.0)];
        f.apply(&mut small);
        assert!(small.iter().any(|r| r.pos == 7), "survives among 2");

        let mut big: Vec<VcfRecord> = (0..200).map(|i| rec(100 + i, 90.0, 100, 0.0)).collect();
        big.push(borderline);
        f.apply(&mut big);
        assert!(
            !big.iter().any(|r| r.pos == 7),
            "dies among 201 (threshold ≈ 36)"
        );
    }

    #[test]
    fn strand_bias_holm() {
        let f = DynamicFilter::new(FilterParams {
            fixed_qual: Some(0.0),
            min_coverage: 0,
            sb_alpha: 0.001,
            ..FilterParams::default()
        });
        // SB = 60 → p = 1e-6, strongly biased; SB = 10 → p = 0.1, fine.
        let mut recs = vec![
            rec(1, 50.0, 100, 60.0),
            rec(2, 50.0, 100, 10.0),
            rec(3, 50.0, 100, 0.0),
        ];
        let report = f.apply(&mut recs);
        assert_eq!(report.failed_strand_bias, 1);
        assert!(!recs.iter().any(|r| r.pos == 1));
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn holm_stops_at_first_acceptance() {
        // p-values: 1e-9, 0.0009, 0.0008 with α=0.001, m=3:
        // ranks: 1e-9 ≤ 0.001/3 reject; 0.0008 ≤ 0.001/2 = 0.0005? No →
        // stop; 0.0009 never tested. Only one rejection.
        let f = DynamicFilter::new(FilterParams {
            fixed_qual: Some(0.0),
            min_coverage: 0,
            sb_alpha: 0.001,
            ..FilterParams::default()
        });
        let sb = |p: f64| -10.0 * p.log10();
        let mut recs = vec![
            rec(1, 50.0, 100, sb(1e-9)),
            rec(2, 50.0, 100, sb(0.0009)),
            rec(3, 50.0, 100, sb(0.0008)),
        ];
        let report = f.apply(&mut recs);
        assert_eq!(report.failed_strand_bias, 1);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn empty_set_noop() {
        let f = DynamicFilter::new(FilterParams::default());
        let mut recs: Vec<VcfRecord> = Vec::new();
        let report = f.apply(&mut recs);
        assert_eq!(report.examined, 0);
        assert_eq!(report.passed, 0);
    }

    #[test]
    fn multiple_failures_counted_once_per_category() {
        let f = DynamicFilter::new(FilterParams {
            min_coverage: 1_000,
            ..FilterParams::default()
        });
        let mut recs = vec![rec(1, 0.5, 5, 0.0)];
        let report = f.apply(&mut recs);
        assert_eq!(report.failed_coverage, 1);
        assert_eq!(report.failed_quality, 1);
        assert_eq!(report.passed, 0);
        assert!(recs.is_empty());
    }
}
