//! VCF v4.2 text output and a matching parser for the subset this
//! workspace emits.

use crate::record::{FilterStatus, Info, VcfRecord};
use std::io::{self, BufRead, Write};
use ultravc_genome::alphabet::Base;

/// Streaming VCF writer.
pub struct VcfWriter<W: Write> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> VcfWriter<W> {
    /// Wrap a sink.
    pub fn new(out: W) -> VcfWriter<W> {
        VcfWriter {
            out,
            wrote_header: false,
        }
    }

    /// Emit the meta-information header.
    pub fn write_header(&mut self, reference_name: &str, source: &str) -> io::Result<()> {
        writeln!(self.out, "##fileformat=VCFv4.2")?;
        writeln!(self.out, "##source={source}")?;
        writeln!(self.out, "##reference={reference_name}")?;
        writeln!(
            self.out,
            "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Raw Depth\">"
        )?;
        writeln!(
            self.out,
            "##INFO=<ID=AF,Number=1,Type=Float,Description=\"Allele Frequency\">"
        )?;
        writeln!(
            self.out,
            "##INFO=<ID=SB,Number=1,Type=Integer,Description=\"Phred-scaled strand bias at this position\">"
        )?;
        writeln!(
            self.out,
            "##INFO=<ID=DP4,Number=4,Type=Integer,Description=\"Counts for ref-forward bases, ref-reverse, alt-forward and alt-reverse bases\">"
        )?;
        writeln!(
            self.out,
            "##FILTER=<ID=min_dp,Description=\"Minimum Coverage\">"
        )?;
        writeln!(
            self.out,
            "##FILTER=<ID=sb_holm,Description=\"Strand-Bias Multiple Testing Correction: holm corr. pvalue\">"
        )?;
        writeln!(
            self.out,
            "##FILTER=<ID=min_snvqual,Description=\"Minimum SNV Quality (Phred)\">"
        )?;
        writeln!(self.out, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO")?;
        self.wrote_header = true;
        Ok(())
    }

    /// Emit one record.
    pub fn write_record(&mut self, rec: &VcfRecord) -> io::Result<()> {
        debug_assert!(self.wrote_header, "write_header first");
        let filter = match &rec.filter {
            FilterStatus::Unfiltered => ".".to_string(),
            FilterStatus::Pass => "PASS".to_string(),
            FilterStatus::Fail(names) => names.join(";"),
        };
        let (rf, rr, af_, ar) = rec.info.dp4;
        writeln!(
            self.out,
            "{}\t{}\t.\t{}\t{}\t{:.0}\t{}\tDP={};AF={:.6};SB={:.0};DP4={},{},{},{}",
            rec.chrom,
            rec.pos + 1,
            rec.ref_base,
            rec.alt_base,
            rec.qual,
            filter,
            rec.info.dp,
            rec.info.af,
            rec.info.sb,
            rf,
            rr,
            af_,
            ar
        )
    }

    /// Write header and all records.
    pub fn write_all(
        &mut self,
        reference_name: &str,
        source: &str,
        records: &[VcfRecord],
    ) -> io::Result<()> {
        self.write_header(reference_name, source)?;
        for rec in records {
            self.write_record(rec)?;
        }
        Ok(())
    }

    /// Recover the sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Serialize records to a VCF string.
pub fn write_vcf(reference_name: &str, source: &str, records: &[VcfRecord]) -> String {
    let mut w = VcfWriter::new(Vec::new());
    w.write_all(reference_name, source, records)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(w.into_inner()).expect("VCF output is UTF-8")
}

/// Parse the subset of VCF this workspace writes. Unknown INFO keys are
/// ignored; records missing required keys are errors.
pub fn parse_vcf<R: BufRead>(input: R) -> Result<Vec<VcfRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 8 {
            return Err(format!("line {}: expected 8 columns", lineno + 1));
        }
        let pos: usize = fields[1]
            .parse::<usize>()
            .map_err(|e| format!("line {}: bad POS: {e}", lineno + 1))?
            .checked_sub(1)
            .ok_or_else(|| format!("line {}: POS must be ≥ 1", lineno + 1))?;
        let ref_base = parse_base(fields[3], lineno)?;
        let alt_base = parse_base(fields[4], lineno)?;
        let qual: f64 = fields[5]
            .parse()
            .map_err(|e| format!("line {}: bad QUAL: {e}", lineno + 1))?;
        let filter = match fields[6] {
            "." => FilterStatus::Unfiltered,
            "PASS" => FilterStatus::Pass,
            other => FilterStatus::Fail(other.split(';').map(str::to_string).collect()),
        };
        let mut dp = None;
        let mut af = None;
        let mut sb = None;
        let mut dp4 = None;
        for kv in fields[7].split(';') {
            let (k, v) = match kv.split_once('=') {
                Some(p) => p,
                None => continue,
            };
            match k {
                "DP" => dp = v.parse::<u32>().ok(),
                "AF" => af = v.parse::<f64>().ok(),
                "SB" => sb = v.parse::<f64>().ok(),
                "DP4" => {
                    let parts: Vec<u32> = v.split(',').filter_map(|x| x.parse().ok()).collect();
                    if parts.len() == 4 {
                        dp4 = Some((parts[0], parts[1], parts[2], parts[3]));
                    }
                }
                _ => {}
            }
        }
        let info = Info {
            dp: dp.ok_or_else(|| format!("line {}: missing DP", lineno + 1))?,
            af: af.ok_or_else(|| format!("line {}: missing AF", lineno + 1))?,
            sb: sb.unwrap_or(0.0),
            dp4: dp4.unwrap_or((0, 0, 0, 0)),
        };
        out.push(VcfRecord {
            chrom: fields[0].to_string(),
            pos,
            ref_base,
            alt_base,
            qual,
            filter,
            info,
        });
    }
    Ok(out)
}

fn parse_base(s: &str, lineno: usize) -> Result<Base, String> {
    if s.len() != 1 {
        return Err(format!(
            "line {}: multi-base alleles unsupported",
            lineno + 1
        ));
    }
    Base::from_ascii(s.as_bytes()[0]).ok_or_else(|| format!("line {}: bad base {s}", lineno + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn rec(pos: usize) -> VcfRecord {
        VcfRecord {
            chrom: "synthetic-sc2-7".to_string(),
            pos,
            ref_base: Base::C,
            alt_base: Base::T,
            qual: 87.0,
            filter: FilterStatus::Pass,
            info: Info {
                dp: 12_345,
                af: 0.012_345,
                sb: 3.0,
                dp4: (6_000, 6_100, 120, 125),
            },
        }
    }

    #[test]
    fn header_and_record_shape() {
        let text = write_vcf("ref", "ultravc-0.1", &[rec(99)]);
        assert!(text.starts_with("##fileformat=VCFv4.2\n"));
        assert!(text.contains("##source=ultravc-0.1\n"));
        assert!(text.contains("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n"));
        let data_line = text.lines().last().unwrap();
        assert_eq!(
            data_line,
            "synthetic-sc2-7\t100\t.\tC\tT\t87\tPASS\tDP=12345;AF=0.012345;SB=3;DP4=6000,6100,120,125"
        );
    }

    #[test]
    fn roundtrip() {
        let records = vec![rec(0), rec(500), {
            let mut r = rec(1000);
            r.filter = FilterStatus::Fail(vec!["min_dp".into(), "sb_holm".into()]);
            r
        }];
        let text = write_vcf("ref", "test", &records);
        let parsed = parse_vcf(Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].pos, 0);
        assert_eq!(parsed[1].pos, 500);
        assert_eq!(parsed[0].info.dp, 12_345);
        assert!((parsed[0].info.af - 0.012_345).abs() < 1e-9);
        assert_eq!(parsed[0].info.dp4, (6_000, 6_100, 120, 125));
        assert_eq!(
            parsed[2].filter,
            FilterStatus::Fail(vec!["min_dp".into(), "sb_holm".into()])
        );
    }

    #[test]
    fn unfiltered_renders_dot() {
        let mut r = rec(1);
        r.filter = FilterStatus::Unfiltered;
        let text = write_vcf("ref", "test", &[r]);
        let line = text.lines().last().unwrap();
        assert!(line.contains("\t.\tDP="), "{line}");
        let parsed = parse_vcf(Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(parsed[0].filter, FilterStatus::Unfiltered);
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(parse_vcf(Cursor::new(&b"chr\t0\t.\tA\tG\t10\tPASS\tDP=1;AF=0.1"[..])).is_err());
        assert!(parse_vcf(Cursor::new(&b"chr\tx\t.\tA\tG\t10\tPASS\tDP=1;AF=0.1"[..])).is_err());
        assert!(parse_vcf(Cursor::new(&b"chr\t1\t.\tAC\tG\t10\tPASS\tDP=1;AF=0.1"[..])).is_err());
        assert!(parse_vcf(Cursor::new(&b"chr\t1\t.\tA\tG\t10\tPASS\tAF=0.1"[..])).is_err());
        assert!(parse_vcf(Cursor::new(&b"too\tfew\tcolumns"[..])).is_err());
    }

    #[test]
    fn parser_skips_headers_and_blank_lines() {
        let text = "##fileformat=VCFv4.2\n\n#CHROM\tPOS\n";
        assert!(parse_vcf(Cursor::new(text.as_bytes())).unwrap().is_empty());
    }
}
