//! Quality-consistent sequencing-error injection.
//!
//! The calibration contract: a base emitted with Phred score `Q` is wrong
//! with probability exactly `10^(−Q/10)`. This is precisely the assumption
//! LoFreq's Poisson-binomial null makes about the data, so the simulator
//! neither flatters nor sandbags the caller — the measured false-positive
//! behaviour is attributable to the algorithm, not to miscalibration.
//!
//! When an error occurs, the observed base is drawn from a
//! transition-weighted substitution spectrum (Ti:Tv = 4, matching the
//! spectrum used for true variants).

use serde::{Deserialize, Serialize};
use ultravc_genome::alphabet::Base;
use ultravc_genome::phred::Phred;
use ultravc_stats::rng::Rng;

/// Substitution error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModel {
    /// Weight of a transition relative to each transversion.
    pub transition_weight: f64,
    /// Global multiplier on the Phred-implied error probability; 1.0 means
    /// perfectly calibrated, >1 models an optimistic base caller. The
    /// default is 1.0 and the evaluation keeps it there.
    pub miscalibration: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel {
            transition_weight: 4.0,
            miscalibration: 1.0,
        }
    }
}

impl ErrorModel {
    /// Perfectly calibrated model with SARS-CoV-2-like Ti/Tv.
    pub fn calibrated() -> Self {
        Self::default()
    }

    /// Emit the observed base for a true base at the given quality.
    #[inline]
    pub fn observe(&self, truth: Base, qual: Phred, rng: &mut Rng) -> Base {
        let p = (qual.error_prob() * self.miscalibration).min(1.0);
        if !rng.bernoulli(p) {
            return truth;
        }
        self.substitute(truth, rng)
    }

    /// Draw an erroneous base (≠ truth) from the substitution spectrum.
    #[inline]
    pub fn substitute(&self, truth: Base, rng: &mut Rng) -> Base {
        let alts = truth.alternatives();
        let w: Vec<f64> = alts
            .iter()
            .map(|a| {
                if truth.is_transition_to(*a) {
                    self.transition_weight
                } else {
                    1.0
                }
            })
            .collect();
        alts[rng.discrete(&w)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_matches_phred_assertion() {
        let m = ErrorModel::calibrated();
        let mut rng = Rng::new(21);
        let q = Phred::new(20); // p = 0.01
        let n = 400_000;
        let errors = (0..n)
            .filter(|_| m.observe(Base::A, q, &mut rng) != Base::A)
            .count();
        let rate = errors as f64 / n as f64;
        assert!(
            (rate - 0.01).abs() < 0.001,
            "observed error rate {rate} vs asserted 0.01"
        );
    }

    #[test]
    fn high_quality_rarely_errs() {
        let m = ErrorModel::calibrated();
        let mut rng = Rng::new(2);
        let q = Phred::new(40); // p = 1e-4
        let n = 100_000;
        let errors = (0..n)
            .filter(|_| m.observe(Base::G, q, &mut rng) != Base::G)
            .count();
        assert!(errors < 40, "Q40 errors: {errors} in {n}");
    }

    #[test]
    fn substitution_never_returns_truth() {
        let m = ErrorModel::calibrated();
        let mut rng = Rng::new(5);
        for b in Base::ALL {
            for _ in 0..1000 {
                assert_ne!(m.substitute(b, &mut rng), b);
            }
        }
    }

    #[test]
    fn transitions_dominate() {
        let m = ErrorModel::calibrated();
        let mut rng = Rng::new(17);
        let n = 60_000;
        let transitions = (0..n)
            .filter(|_| {
                let got = m.substitute(Base::C, &mut rng);
                Base::C.is_transition_to(got)
            })
            .count();
        let frac = transitions as f64 / n as f64;
        // Expected 4/6.
        assert!(
            (frac - 2.0 / 3.0).abs() < 0.02,
            "transition fraction {frac}"
        );
    }

    #[test]
    fn miscalibration_scales_error_rate() {
        let m = ErrorModel {
            miscalibration: 3.0,
            ..ErrorModel::default()
        };
        let mut rng = Rng::new(31);
        let q = Phred::new(20);
        let n = 300_000;
        let errors = (0..n)
            .filter(|_| m.observe(Base::T, q, &mut rng) != Base::T)
            .count();
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.03).abs() < 0.002, "rate {rate} vs 0.03");
    }

    #[test]
    fn zero_quality_always_errs() {
        let m = ErrorModel::calibrated();
        let mut rng = Rng::new(41);
        // Q0 asserts p = 1.0.
        for _ in 0..100 {
            assert_ne!(m.observe(Base::A, Phred::new(0), &mut rng), Base::A);
        }
    }
}
