//! # ultravc-readsim
//!
//! Sequencing-read simulator: the workspace's stand-in for the ultra-deep
//! SARS-CoV-2 datasets of Butler et al. (2021) that the paper evaluates on
//! (1 MB–25 GB BAM files at 1 000×–1 000 000× average depth).
//!
//! Those read sets cannot be redistributed here, and a faithful reproduction
//! of the caller does not need them: everything the compute kernels and the
//! approximation shortcut respond to is (a) the depth profile, (b) the
//! per-base quality distribution, and (c) the density and frequency of true
//! variants versus sequencing errors. The simulator controls all three:
//!
//! * [`quality::QualityModel`] — position-dependent Illumina-like quality
//!   curves (plateau + 3′ decay, binned NovaSeq variant, noisy long-read
//!   variant);
//! * [`error::ErrorModel`] — quality-*consistent* base errors: a base with
//!   Phred score `Q` is wrong with probability exactly `10^(−Q/10)`, which
//!   is the literal assumption LoFreq's null model makes;
//! * [`dataset::DatasetSpec`] — whole-dataset recipes, including
//!   [`dataset::paper_tiers`], the five depth tiers of the paper's Table I,
//!   and [`dataset::shared_truth_sets`] for the cross-dataset variant
//!   sharing structure of its Figure 3.
//!
//! Reads stream straight into a [`ultravc_bamlite::BalWriter`], so the
//! 100 000×+ tiers never hold an uncompressed read set in memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod fastq;
pub mod quality;
pub mod simulator;

pub use dataset::{paper_tiers, shared_truth_sets, Dataset, DatasetSpec};
pub use quality::{QualityModel, QualityPreset};
pub use simulator::{Simulator, SimulatorConfig};
