//! The read simulator: reference + truth set + config → a sorted,
//! BAL-encoded alignment store.
//!
//! Reads are uniform shotgun: positions are drawn uniformly, then emitted in
//! coordinate order (counting sort — depth ties make comparison sorts
//! wasteful) so records stream straight into a [`BalWriter`] and the
//! uncompressed read set never materializes. At the paper's 1 000 000×
//! tier this is the difference between hundreds of megabytes and tens of
//! gigabytes of resident memory.

use crate::error::ErrorModel;
use crate::quality::{QualityModel, QualityPreset};
use serde::{Deserialize, Serialize};
use ultravc_bamlite::{BalError, BalFile, BalWriter, Flags, Record};
use ultravc_genome::reference::ReferenceGenome;
use ultravc_genome::sequence::Seq;
use ultravc_genome::variant::TruthSet;
use ultravc_stats::rng::Rng;

/// Knobs for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatorConfig {
    /// Read length in bases (clamped to the genome length).
    pub read_len: usize,
    /// Target mean depth of coverage.
    pub mean_depth: f64,
    /// Mapping quality stamped on every read.
    pub mapq: u8,
    /// Quality-model preset.
    pub quality: QualityPreset,
    /// Substitution error model.
    pub error: ErrorModel,
    /// Fraction of reads on the reverse strand.
    pub reverse_fraction: f64,
    /// Records per BAL block.
    pub block_capacity: usize,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            read_len: 100,
            mean_depth: 1_000.0,
            mapq: 60,
            quality: QualityPreset::HiSeq,
            error: ErrorModel::calibrated(),
            reverse_fraction: 0.5,
            block_capacity: ultravc_bamlite::file::DEFAULT_BLOCK_CAPACITY,
        }
    }
}

/// The simulator proper.
#[derive(Debug)]
pub struct Simulator<'a> {
    reference: &'a ReferenceGenome,
    truth: &'a TruthSet,
    config: SimulatorConfig,
}

impl<'a> Simulator<'a> {
    /// Bind a reference, a truth set and a configuration.
    pub fn new(
        reference: &'a ReferenceGenome,
        truth: &'a TruthSet,
        config: SimulatorConfig,
    ) -> Simulator<'a> {
        assert!(
            !reference.is_empty(),
            "cannot simulate over an empty genome"
        );
        assert!(config.mean_depth > 0.0, "depth must be positive");
        assert!(
            (0.0..=1.0).contains(&config.reverse_fraction),
            "reverse fraction must lie in [0,1]"
        );
        Simulator {
            reference,
            truth,
            config,
        }
    }

    /// Number of reads the configuration implies.
    pub fn n_reads(&self) -> u64 {
        let len = self.reference.len() as f64;
        let rl = self.effective_read_len() as f64;
        ((self.config.mean_depth * len) / rl).ceil() as u64
    }

    fn effective_read_len(&self) -> usize {
        self.config.read_len.min(self.reference.len()).max(1)
    }

    /// Run the simulation, producing a position-sorted BAL file.
    ///
    /// Deterministic in `(reference, truth, config, seed)`.
    pub fn run(&self, seed: u64) -> Result<BalFile, BalError> {
        let read_len = self.effective_read_len();
        let genome_len = self.reference.len();
        let n_reads = self.n_reads();
        let max_start = genome_len - read_len; // inclusive
        let mut rng = Rng::new(seed ^ 0x9d5f_ea12_83ab_77c1);

        // Counting sort of start positions: O(n + L), emits in order.
        let mut counts = vec![0u32; max_start + 1];
        for _ in 0..n_reads {
            counts[rng.index(max_start + 1)] += 1;
        }

        let quality = QualityModel::from_preset(self.config.quality);
        let mut writer = BalWriter::with_block_capacity(self.config.block_capacity);
        let mut read_id = 0u64;
        for (start, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                let rec = self.emit_read(read_id, start, read_len, &quality, &mut rng)?;
                writer.push(rec)?;
                read_id += 1;
            }
        }
        Ok(writer.finish())
    }

    fn emit_read(
        &self,
        id: u64,
        start: usize,
        read_len: usize,
        quality: &QualityModel,
        rng: &mut Rng,
    ) -> Result<Record, BalError> {
        let quals = quality.sample(read_len, rng);
        let mut seq = Seq::with_capacity(read_len);
        for (offset, qual) in quals.iter().enumerate() {
            let pos = start + offset;
            // The read's *true* base: reference, unless a planted variant is
            // carried by this read (each read draws carrier status
            // independently at the variant's allele frequency).
            let mut true_base = self.reference.base(pos);
            if let Some(v) = self.truth.at(pos) {
                if rng.bernoulli(v.frequency) {
                    true_base = v.snv.alt_base;
                }
            }
            // Then the *observed* base may differ by sequencing error.
            seq.push(self.config.error.observe(true_base, *qual, rng));
        }
        let flags = if rng.bernoulli(self.config.reverse_fraction) {
            Flags::REVERSE
        } else {
            Flags::none()
        };
        Record::full_match(id, start as u32, self.config.mapq, flags, seq, quals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::reference::GenomeParams;
    use ultravc_genome::variant::{Snv, TruthVariant};

    fn tiny_ref(seed: u64) -> ReferenceGenome {
        ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), seed)
    }

    #[test]
    fn read_count_matches_depth() {
        let g = tiny_ref(1);
        let truth = TruthSet::new();
        let cfg = SimulatorConfig {
            mean_depth: 50.0,
            ..SimulatorConfig::default()
        };
        let sim = Simulator::new(&g, &truth, cfg);
        // 50 × 800 / 100 = 400 reads.
        assert_eq!(sim.n_reads(), 400);
        let file = sim.run(3).unwrap();
        assert_eq!(file.n_records(), 400);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = tiny_ref(2);
        let truth = TruthSet::new();
        let cfg = SimulatorConfig {
            mean_depth: 20.0,
            ..SimulatorConfig::default()
        };
        let a = Simulator::new(&g, &truth, cfg.clone()).run(7).unwrap();
        let b = Simulator::new(&g, &truth, cfg.clone()).run(7).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
        let c = Simulator::new(&g, &truth, cfg).run(8).unwrap();
        assert_ne!(a.as_bytes(), c.as_bytes());
    }

    #[test]
    fn records_are_sorted_and_in_bounds() {
        let g = tiny_ref(3);
        let truth = TruthSet::new();
        let sim = Simulator::new(
            &g,
            &truth,
            SimulatorConfig {
                mean_depth: 30.0,
                ..SimulatorConfig::default()
            },
        );
        let file = sim.run(11).unwrap();
        let records = file.reader().records().unwrap();
        let mut prev = 0u32;
        for r in &records {
            assert!(r.pos >= prev, "unsorted output");
            prev = r.pos;
            assert!(r.end_pos() as usize <= g.len(), "read beyond genome end");
            assert_eq!(r.read_len(), 100);
        }
    }

    #[test]
    fn error_rate_tracks_quality_assertion() {
        // With no true variants, every mismatch is a sequencing error, and
        // the aggregate mismatch rate must equal the mean asserted error
        // probability.
        let g = tiny_ref(4);
        let truth = TruthSet::new();
        let sim = Simulator::new(
            &g,
            &truth,
            SimulatorConfig {
                // ~800k base observations ⇒ ~260 expected errors ⇒ the
                // Poisson noise on the observed rate is ≈ 6 % relative.
                mean_depth: 1_000.0,
                ..SimulatorConfig::default()
            },
        );
        let file = sim.run(13).unwrap();
        let mut mismatches = 0u64;
        let mut expected = 0.0f64;
        let mut total = 0u64;
        for rec in file.reader().records().unwrap() {
            for (ref_pos, base, qual) in rec.aligned_bases() {
                total += 1;
                expected += qual.error_prob();
                if base != g.base(ref_pos as usize) {
                    mismatches += 1;
                }
            }
        }
        let observed = mismatches as f64 / total as f64;
        let asserted = expected / total as f64;
        assert!(
            (observed / asserted - 1.0).abs() < 0.2,
            "mismatch rate {observed:.6} vs asserted {asserted:.6}"
        );
    }

    #[test]
    fn planted_variant_appears_at_frequency() {
        let g = tiny_ref(5);
        let pos = 400;
        let ref_base = g.base(pos);
        let alt = ref_base.alternatives()[0];
        let mut truth = TruthSet::new();
        truth.insert(TruthVariant {
            snv: Snv::new(pos, ref_base, alt),
            frequency: 0.10,
        });
        let sim = Simulator::new(
            &g,
            &truth,
            SimulatorConfig {
                mean_depth: 2_000.0,
                ..SimulatorConfig::default()
            },
        );
        let file = sim.run(17).unwrap();
        let mut reader = file.reader();
        let (mut alt_count, mut depth) = (0u64, 0u64);
        for rec in reader
            .records_overlapping(pos as u32, pos as u32 + 1)
            .unwrap()
        {
            for (rp, base, _) in rec.aligned_bases() {
                if rp as usize == pos {
                    depth += 1;
                    if base == alt {
                        alt_count += 1;
                    }
                }
            }
        }
        assert!(depth > 1_500, "depth {depth} too low for the test");
        let af = alt_count as f64 / depth as f64;
        assert!(
            (af - 0.10).abs() < 0.025,
            "allele frequency {af:.4} should be ≈ 0.10"
        );
    }

    #[test]
    fn strand_balance_near_half() {
        let g = tiny_ref(6);
        let truth = TruthSet::new();
        let sim = Simulator::new(
            &g,
            &truth,
            SimulatorConfig {
                mean_depth: 100.0,
                ..SimulatorConfig::default()
            },
        );
        let file = sim.run(19).unwrap();
        let records = file.reader().records().unwrap();
        let reverse = records.iter().filter(|r| r.flags.is_reverse()).count();
        let frac = reverse as f64 / records.len() as f64;
        assert!((frac - 0.5).abs() < 0.06, "reverse fraction {frac}");
    }

    #[test]
    fn read_len_clamped_to_genome() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(50), 7);
        let truth = TruthSet::new();
        let sim = Simulator::new(
            &g,
            &truth,
            SimulatorConfig {
                read_len: 100,
                mean_depth: 10.0,
                ..SimulatorConfig::default()
            },
        );
        let file = sim.run(23).unwrap();
        for rec in file.reader().records().unwrap() {
            assert_eq!(rec.read_len(), 50);
            assert_eq!(rec.pos, 0);
        }
    }
}
