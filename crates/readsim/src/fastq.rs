//! Minimal FASTQ writing and parsing.
//!
//! The paper's pipeline starts from FastQ archives (Butler et al.); the CLI
//! can export simulated read sets in the same format so external aligners or
//! callers can be pointed at them, and round-trip tests keep the writer and
//! parser honest.

use std::io::{self, BufRead, Write};
use ultravc_bamlite::Record;
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read name (without the leading `@`).
    pub name: String,
    /// Base sequence.
    pub seq: Seq,
    /// Per-base qualities (same length as `seq`).
    pub quals: Vec<Phred>,
}

impl FastqRecord {
    /// Convert from an alignment record (name synthesized from the id).
    pub fn from_alignment(rec: &Record) -> FastqRecord {
        FastqRecord {
            name: format!("read{}", rec.id),
            seq: rec.seq.clone(),
            quals: rec.quals.clone(),
        }
    }
}

/// Write records in four-line FASTQ form.
pub fn write_fastq<W: Write>(out: &mut W, records: &[FastqRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(out, "@{}", rec.name)?;
        out.write_all(&rec.seq.to_ascii())?;
        writeln!(out)?;
        writeln!(out, "+")?;
        let quals: Vec<u8> = rec.quals.iter().map(|q| q.to_ascii()).collect();
        out.write_all(&quals)?;
        writeln!(out)?;
    }
    Ok(())
}

/// Errors produced while parsing FASTQ input.
#[derive(Debug)]
pub enum FastqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem at the given record index.
    Malformed {
        /// 0-based record index.
        record: usize,
        /// What went wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for FastqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastqError::Io(e) => write!(f, "I/O error: {e}"),
            FastqError::Malformed { record, what } => {
                write!(f, "malformed FASTQ at record {record}: {what}")
            }
        }
    }
}

impl std::error::Error for FastqError {}

impl From<io::Error> for FastqError {
    fn from(e: io::Error) -> Self {
        FastqError::Io(e)
    }
}

/// Parse all records (strict four-line form).
pub fn read_fastq<R: BufRead>(input: R) -> Result<Vec<FastqRecord>, FastqError> {
    let mut lines = input.lines();
    let mut records = Vec::new();
    let mut idx = 0usize;
    loop {
        let header = match lines.next() {
            None => break,
            Some(h) => h?,
        };
        if header.is_empty() {
            continue; // tolerate trailing blank lines
        }
        let name = header
            .strip_prefix('@')
            .ok_or(FastqError::Malformed {
                record: idx,
                what: "header must start with '@'",
            })?
            .to_string();
        let seq_line = lines.next().ok_or(FastqError::Malformed {
            record: idx,
            what: "missing sequence line",
        })??;
        let seq = Seq::from_ascii(seq_line.as_bytes()).ok_or(FastqError::Malformed {
            record: idx,
            what: "non-ACGT base",
        })?;
        let plus = lines.next().ok_or(FastqError::Malformed {
            record: idx,
            what: "missing '+' line",
        })??;
        if !plus.starts_with('+') {
            return Err(FastqError::Malformed {
                record: idx,
                what: "separator must start with '+'",
            });
        }
        let qual_line = lines.next().ok_or(FastqError::Malformed {
            record: idx,
            what: "missing quality line",
        })??;
        if qual_line.len() != seq.len() {
            return Err(FastqError::Malformed {
                record: idx,
                what: "quality length differs from sequence length",
            });
        }
        let quals = qual_line
            .bytes()
            .map(Phred::from_ascii)
            .collect::<Option<Vec<_>>>()
            .ok_or(FastqError::Malformed {
                record: idx,
                what: "quality character out of range",
            })?;
        records.push(FastqRecord { name, seq, quals });
        idx += 1;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn rec(name: &str, seq: &[u8], q: u8) -> FastqRecord {
        let seq = Seq::from_ascii(seq).unwrap();
        let quals = vec![Phred::new(q); seq.len()];
        FastqRecord {
            name: name.to_string(),
            seq,
            quals,
        }
    }

    #[test]
    fn roundtrip() {
        let records = vec![rec("r1", b"ACGTACGT", 35), rec("r2", b"TTTT", 2)];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let parsed = read_fastq(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn textual_form() {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &[rec("x", b"AC", 40)]).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "@x\nAC\n+\nII\n");
    }

    #[test]
    fn from_alignment_copies_fields() {
        use ultravc_bamlite::Flags;
        let seq = Seq::from_ascii(b"ACG").unwrap();
        let quals = vec![Phred::new(30); 3];
        let aln = Record::full_match(99, 5, 60, Flags::none(), seq.clone(), quals.clone()).unwrap();
        let fq = FastqRecord::from_alignment(&aln);
        assert_eq!(fq.name, "read99");
        assert_eq!(fq.seq, seq);
        assert_eq!(fq.quals, quals);
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Bad header.
        assert!(read_fastq(Cursor::new(&b"read\nAC\n+\nII\n"[..])).is_err());
        // Truncated record.
        assert!(read_fastq(Cursor::new(&b"@r\nAC\n"[..])).is_err());
        // Quality length mismatch.
        assert!(read_fastq(Cursor::new(&b"@r\nAC\n+\nI\n"[..])).is_err());
        // Bad base.
        assert!(read_fastq(Cursor::new(&b"@r\nAN\n+\nII\n"[..])).is_err());
        // Bad separator.
        assert!(read_fastq(Cursor::new(&b"@r\nAC\n-\nII\n"[..])).is_err());
    }

    #[test]
    fn empty_input() {
        assert!(read_fastq(Cursor::new(&b""[..])).unwrap().is_empty());
    }
}
