//! Position-dependent base-quality models.
//!
//! Illumina quality strings have a characteristic shape: a slightly shaky
//! start, a long plateau near the instrument ceiling, and a decay toward the
//! 3′ end; NovaSeq-class machines additionally quantize scores into a few
//! bins. The shape matters to this workspace because the caller's Poisson
//! rate `λ = Σ 10^(−Qᵢ/10)` — and therefore the approximation shortcut's
//! effectiveness — is a direct function of the quality distribution.

use serde::{Deserialize, Serialize};
use ultravc_genome::phred::Phred;
use ultravc_stats::rng::Rng;

/// Named quality-model presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityPreset {
    /// HiSeq-like: plateau ≈ Q37–38, mild 3′ decay. The benchmarking study
    /// the paper cites (\[8\] Sandmann et al.) simulated HiSeq data; this is
    /// the default everywhere.
    HiSeq,
    /// NovaSeq-like: same shape but scores quantized to {2, 12, 23, 37}.
    NovaSeqBinned,
    /// Long-read-like: low, flat, noisy qualities (mean ≈ Q12). The paper's
    /// discussion suggests the approximation favours exactly this regime
    /// (higher `p_i` ⇒ better Poisson accuracy).
    LongRead,
    /// Degraded short-read chemistry: plateau ≈ Q26 (`p ≈ 2.5e−3`). Used by
    /// the scaled Table I harness for **burden-preserving scaling**: when
    /// depth is scaled down by 10×, raising the per-base error rate ~10×
    /// keeps each column's expected mismatch count `λ = Σ pᵢ` — the
    /// quantity the exact DP's cost actually grows with — at the paper's
    /// per-tier levels.
    Degraded,
}

/// A sampling model for per-read quality strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityModel {
    preset: QualityPreset,
    /// Plateau quality.
    plateau: f64,
    /// Quality at the very start of the read.
    start: f64,
    /// Quality at the very end of the read.
    end: f64,
    /// Fraction of the read over which the start ramps up.
    ramp_frac: f64,
    /// Fraction of the read over which the tail decays.
    decay_frac: f64,
    /// Per-read mean shift standard deviation.
    read_sd: f64,
    /// Per-base jitter standard deviation.
    base_sd: f64,
    /// Quantization bins (empty = none).
    bins: Vec<u8>,
}

impl QualityModel {
    /// Build the model for a preset.
    pub fn from_preset(preset: QualityPreset) -> QualityModel {
        match preset {
            QualityPreset::HiSeq => QualityModel {
                preset,
                plateau: 38.0,
                start: 33.0,
                end: 28.0,
                ramp_frac: 0.05,
                decay_frac: 0.35,
                read_sd: 1.5,
                base_sd: 2.0,
                bins: Vec::new(),
            },
            QualityPreset::NovaSeqBinned => QualityModel {
                preset,
                plateau: 37.0,
                start: 32.0,
                end: 25.0,
                ramp_frac: 0.05,
                decay_frac: 0.35,
                read_sd: 1.5,
                base_sd: 3.0,
                bins: vec![2, 12, 23, 37],
            },
            QualityPreset::LongRead => QualityModel {
                preset,
                plateau: 13.0,
                start: 12.0,
                end: 11.0,
                ramp_frac: 0.02,
                decay_frac: 0.1,
                read_sd: 2.0,
                base_sd: 3.0,
                bins: Vec::new(),
            },
            QualityPreset::Degraded => QualityModel {
                preset,
                plateau: 26.0,
                start: 24.0,
                end: 18.0,
                ramp_frac: 0.05,
                decay_frac: 0.3,
                read_sd: 1.5,
                base_sd: 2.0,
                bins: Vec::new(),
            },
        }
    }

    /// The preset this model was built from.
    pub fn preset(&self) -> QualityPreset {
        self.preset
    }

    /// Expected quality (before jitter) at relative position `t ∈ [0, 1]`.
    fn mean_at(&self, t: f64) -> f64 {
        if t < self.ramp_frac {
            // Linear ramp from start to plateau.
            self.start + (self.plateau - self.start) * (t / self.ramp_frac)
        } else if t > 1.0 - self.decay_frac {
            // Quadratic decay into the tail (matches the droopy 3′ shape).
            let u = (t - (1.0 - self.decay_frac)) / self.decay_frac;
            self.plateau + (self.end - self.plateau) * u * u
        } else {
            self.plateau
        }
    }

    /// Sample a quality string for one read.
    pub fn sample(&self, read_len: usize, rng: &mut Rng) -> Vec<Phred> {
        let shift = rng.normal(0.0, self.read_sd);
        (0..read_len)
            .map(|i| {
                let t = if read_len <= 1 {
                    0.5
                } else {
                    i as f64 / (read_len - 1) as f64
                };
                let q = self.mean_at(t) + shift + rng.normal(0.0, self.base_sd);
                let q = q.round().clamp(2.0, 41.0) as u8;
                Phred::new(self.quantize(q))
            })
            .collect()
    }

    /// Snap a score to the nearest bin when the preset quantizes.
    fn quantize(&self, q: u8) -> u8 {
        if self.bins.is_empty() {
            return q;
        }
        *self
            .bins
            .iter()
            .min_by_key(|b| (q as i32 - **b as i32).abs())
            .expect("bins non-empty")
    }

    /// The expected per-base error probability of the plateau — a quick
    /// scale for `λ` expectations in tests and docs.
    pub fn plateau_error_prob(&self) -> f64 {
        10f64.powf(-self.plateau / 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_ramp_plateau_decay() {
        let m = QualityModel::from_preset(QualityPreset::HiSeq);
        assert!(m.mean_at(0.0) < m.mean_at(0.5));
        assert!((m.mean_at(0.5) - 38.0).abs() < 1e-9);
        assert!(m.mean_at(1.0) < m.mean_at(0.5));
        assert!((m.mean_at(1.0) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let m = QualityModel::from_preset(QualityPreset::HiSeq);
        let a = m.sample(150, &mut Rng::new(9));
        let b = m.sample(150, &mut Rng::new(9));
        assert_eq!(a, b);
        assert_eq!(a.len(), 150);
    }

    #[test]
    fn hiseq_qualities_live_in_range() {
        let m = QualityModel::from_preset(QualityPreset::HiSeq);
        let mut rng = Rng::new(1);
        for _ in 0..50 {
            for q in m.sample(150, &mut rng) {
                assert!((2..=41).contains(&q.0), "quality {q} out of range");
            }
        }
    }

    #[test]
    fn hiseq_mean_near_plateau_mid_read() {
        let m = QualityModel::from_preset(QualityPreset::HiSeq);
        let mut rng = Rng::new(7);
        let mut sum = 0.0;
        let n = 2_000;
        for _ in 0..n {
            let quals = m.sample(100, &mut rng);
            sum += quals[50].0 as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 38.0).abs() < 1.0, "mid-read mean {mean}");
    }

    #[test]
    fn tail_is_worse_than_middle() {
        let m = QualityModel::from_preset(QualityPreset::HiSeq);
        let mut rng = Rng::new(13);
        let (mut mid, mut tail) = (0.0, 0.0);
        let n = 2_000;
        for _ in 0..n {
            let quals = m.sample(100, &mut rng);
            mid += quals[50].0 as f64;
            tail += quals[99].0 as f64;
        }
        assert!(
            mid / n as f64 - tail / n as f64 > 5.0,
            "3′ decay should be pronounced"
        );
    }

    #[test]
    fn novaseq_scores_are_binned() {
        let m = QualityModel::from_preset(QualityPreset::NovaSeqBinned);
        let mut rng = Rng::new(5);
        for q in m.sample(500, &mut rng) {
            assert!(
                [2u8, 12, 23, 37].contains(&q.0),
                "unbinned NovaSeq score {q}"
            );
        }
    }

    #[test]
    fn long_read_is_low_quality() {
        let m = QualityModel::from_preset(QualityPreset::LongRead);
        let mut rng = Rng::new(3);
        let quals = m.sample(10_000, &mut rng);
        let mean: f64 = quals.iter().map(|q| q.0 as f64).sum::<f64>() / quals.len() as f64;
        assert!(
            (mean - 12.5).abs() < 1.5,
            "long-read mean quality {mean} should be ≈ 12–13"
        );
        assert!(m.plateau_error_prob() > 0.04);
    }

    #[test]
    fn degenerate_lengths() {
        let m = QualityModel::from_preset(QualityPreset::HiSeq);
        let mut rng = Rng::new(11);
        assert!(m.sample(0, &mut rng).is_empty());
        assert_eq!(m.sample(1, &mut rng).len(), 1);
    }
}
