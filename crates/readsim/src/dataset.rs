//! Whole-dataset recipes, including the paper's five depth tiers.
//!
//! Table I of the paper measures five SARS-CoV-2 read sets at average depths
//! 1 000× / 30 000× / 100 000× / 300 000× / 1 000 000×. [`paper_tiers`]
//! reproduces that ladder (optionally scaled down so the benchmark harness
//! runs in seconds instead of the paper's 415 CPU-hours), and
//! [`shared_truth_sets`] builds the cross-sample variant sharing structure
//! that Figure 3's upset plot summarizes: a small core present in every
//! sample, a pool shared by random subsets, and per-sample private variants.

use crate::quality::QualityPreset;
use crate::simulator::{Simulator, SimulatorConfig};
use serde::{Deserialize, Serialize};
use ultravc_bamlite::BalFile;
use ultravc_genome::reference::ReferenceGenome;
use ultravc_genome::variant::{TruthSet, TruthVariant};
use ultravc_stats::rng::Rng;

/// A recipe for one simulated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset label (e.g. `"30,000x"`).
    pub name: String,
    /// Target mean depth of coverage.
    pub mean_depth: f64,
    /// Simulation seed.
    pub seed: u64,
    /// Read length.
    pub read_len: usize,
    /// Quality preset.
    pub quality: QualityPreset,
    /// Number of variants to plant when no explicit truth set is given.
    pub n_variants: usize,
    /// Allele-frequency range for planted variants.
    pub freq_range: (f64, f64),
    /// Explicit truth set (overrides `n_variants` when present).
    pub truth: Option<TruthSet>,
    /// Keep implicitly-planted variants at least this many bases from the
    /// genome ends. Uniform shotgun coverage ramps down linearly over the
    /// first/last read-length of the genome (no reads can start before
    /// position 0), so edge variants would be undetectable for reasons
    /// that have nothing to do with the caller. Defaults to the read
    /// length.
    pub interior_margin: usize,
}

impl DatasetSpec {
    /// A spec with workspace defaults: 100 bp HiSeq-like reads, a dozen
    /// low-frequency variants between 0.5 % and 5 %.
    pub fn new(name: impl Into<String>, mean_depth: impl Into<f64>, seed: u64) -> DatasetSpec {
        DatasetSpec {
            name: name.into(),
            mean_depth: mean_depth.into(),
            seed,
            read_len: 100,
            quality: QualityPreset::HiSeq,
            n_variants: 12,
            freq_range: (0.005, 0.05),
            truth: None,
            interior_margin: 100,
        }
    }

    /// Override the planted-variant count and frequency range.
    pub fn with_variants(mut self, n: usize, freq_lo: f64, freq_hi: f64) -> DatasetSpec {
        self.n_variants = n;
        self.freq_range = (freq_lo, freq_hi);
        self
    }

    /// Provide an explicit truth set.
    pub fn with_truth(mut self, truth: TruthSet) -> DatasetSpec {
        self.truth = Some(truth);
        self
    }

    /// Override the read length.
    pub fn with_read_len(mut self, read_len: usize) -> DatasetSpec {
        self.read_len = read_len;
        self
    }

    /// Override the quality preset.
    pub fn with_quality(mut self, quality: QualityPreset) -> DatasetSpec {
        self.quality = quality;
        self
    }

    /// Simulate the dataset over a reference.
    pub fn simulate(&self, reference: &ReferenceGenome) -> Dataset {
        let truth = match &self.truth {
            Some(t) => t.clone(),
            None => {
                let mut rng = Rng::new(self.seed ^ seed_tag_truth());
                let margin = if reference.len() > 2 * self.interior_margin + self.n_variants {
                    self.interior_margin
                } else {
                    0
                };
                TruthSet::random_in_window(
                    reference,
                    self.n_variants,
                    self.freq_range.0,
                    self.freq_range.1,
                    margin..reference.len() - margin,
                    &mut rng,
                )
            }
        };
        let config = SimulatorConfig {
            read_len: self.read_len,
            mean_depth: self.mean_depth,
            quality: self.quality,
            ..SimulatorConfig::default()
        };
        let alignments = Simulator::new(reference, &truth, config)
            .run(self.seed)
            .expect("simulator output is sorted by construction");
        Dataset {
            name: self.name.clone(),
            mean_depth: self.mean_depth,
            reference_name: reference.name.clone(),
            alignments,
            truth,
        }
    }
}

/// A simulated dataset: alignments plus ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label.
    pub name: String,
    /// Target mean depth.
    pub mean_depth: f64,
    /// Name of the reference it was simulated against.
    pub reference_name: String,
    /// The BAL-encoded alignment store.
    pub alignments: BalFile,
    /// Planted variants.
    pub truth: TruthSet,
}

/// The five depth tiers of the paper's Table I, scaled by `scale`
/// (1.0 = the paper's depths; the benchmark harness defaults to ~1/400 so
/// each tier runs in seconds on one core).
pub fn paper_tiers(scale: f64) -> Vec<DatasetSpec> {
    assert!(scale > 0.0, "scale must be positive");
    let tiers: [(u64, f64); 5] = [
        (1, 1_000.0),
        (2, 30_000.0),
        (3, 100_000.0),
        (4, 300_000.0),
        (5, 1_000_000.0),
    ];
    tiers
        .iter()
        .map(|(i, depth)| {
            let scaled = (depth * scale).max(10.0);
            DatasetSpec::new(format_depth(*depth), scaled, 0x0D47_A5E7 + i)
        })
        .collect()
}

/// Human form of a depth tier ("30,000x").
fn format_depth(depth: f64) -> String {
    let d = depth as u64;
    let s = d.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out.push('x');
    out
}

/// Build `n_sets` truth sets with the sharing structure of the paper's
/// Figure 3:
///
/// * `core` variants present in **all** sets (the paper observed 2),
///   drawn at higher frequency (`core_freq`) — an SNV shared by every
///   sample must be common enough for even the shallowest to detect;
/// * a `pool` of variants, each joining any given set with probability
///   `pool_p` (producing varied pairwise intersections);
/// * `private` variants unique to each set (the paper's 100 000× sample had
///   735 unique SNVs).
///
/// All positions are distinct across groups so intersection counts are
/// exact by construction.
#[allow(clippy::too_many_arguments)]
pub fn shared_truth_sets(
    reference: &ReferenceGenome,
    n_sets: usize,
    core: usize,
    pool: usize,
    pool_p: f64,
    private: usize,
    freq_range: (f64, f64),
    core_freq: (f64, f64),
    seed: u64,
) -> Vec<TruthSet> {
    assert!(n_sets >= 1);
    assert!((0.0..=1.0).contains(&pool_p));
    let need = core + pool + private * n_sets;
    assert!(
        need <= reference.len(),
        "{need} variant positions exceed the {} bp genome",
        reference.len()
    );
    let mut rng = Rng::new(seed ^ seed_tag_shared());
    // One master draw guarantees distinct positions across all groups;
    // positions stay a read-length away from the genome ends, where
    // shotgun coverage ramps to zero and detectability is an artifact of
    // geometry rather than depth.
    let margin = if reference.len() > 2 * 100 + need {
        100
    } else {
        0
    };
    let master = TruthSet::random_in_window(
        reference,
        need,
        freq_range.0,
        freq_range.1,
        margin..reference.len() - margin,
        &mut rng,
    );
    let all: Vec<_> = master.iter().copied().collect();
    let (core_vs, rest) = all.split_at(core);
    let (pool_vs, private_vs) = rest.split_at(pool);

    let mut sets = vec![TruthSet::new(); n_sets];
    // Core frequencies are drawn once in the core range and shared across
    // sets: a lineage-defining allele has one population frequency.
    let core_fixed: Vec<TruthVariant> = core_vs
        .iter()
        .map(|v| {
            let lf = core_freq.0.ln() + rng.f64() * (core_freq.1.ln() - core_freq.0.ln());
            TruthVariant {
                snv: v.snv,
                frequency: lf.exp(),
            }
        })
        .collect();
    for set in sets.iter_mut() {
        for v in &core_fixed {
            set.insert(*v);
        }
    }
    for v in pool_vs {
        let mut member_of_any = false;
        for set in sets.iter_mut() {
            if rng.bernoulli(pool_p) {
                set.insert(*v);
                member_of_any = true;
            }
        }
        // Guarantee pool variants appear somewhere (keeps counts stable).
        if !member_of_any {
            let i = rng.index(n_sets);
            sets[i].insert(*v);
        }
    }
    for (i, set) in sets.iter_mut().enumerate() {
        for v in &private_vs[i * private..(i + 1) * private] {
            set.insert(*v);
        }
    }
    sets
}

/// Seed tag mixed into implicit truth-set generation so truth and read
/// streams never correlate even with equal numeric seeds.
const fn seed_tag_truth() -> u64 {
    0x7A97_0001_5EED_0001
}

/// Seed tag for the shared-truth-set generator.
const fn seed_tag_shared() -> u64 {
    0x5AA5_0002_5EED_0002
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::reference::GenomeParams;

    fn tiny_ref() -> ReferenceGenome {
        ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 5)
    }

    #[test]
    fn spec_simulation_is_deterministic() {
        let g = tiny_ref();
        let spec = DatasetSpec::new("demo", 50.0, 42);
        let a = spec.simulate(&g);
        let b = spec.simulate(&g);
        assert_eq!(a.alignments.as_bytes(), b.alignments.as_bytes());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.truth.len(), 12);
    }

    #[test]
    fn explicit_truth_respected() {
        let g = tiny_ref();
        let mut rng = Rng::new(1);
        let truth = TruthSet::random(&g, 3, 0.01, 0.1, &mut rng);
        let spec = DatasetSpec::new("demo", 20.0, 7).with_truth(truth.clone());
        let ds = spec.simulate(&g);
        assert_eq!(ds.truth, truth);
    }

    #[test]
    fn paper_tiers_ladder() {
        let tiers = paper_tiers(1.0);
        assert_eq!(tiers.len(), 5);
        assert_eq!(tiers[0].name, "1,000x");
        assert_eq!(tiers[1].name, "30,000x");
        assert_eq!(tiers[4].name, "1,000,000x");
        assert_eq!(tiers[0].mean_depth, 1_000.0);
        assert_eq!(tiers[4].mean_depth, 1_000_000.0);
        // Distinct seeds per tier.
        let seeds: std::collections::HashSet<u64> = tiers.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), 5);
    }

    #[test]
    fn paper_tiers_scaling() {
        let tiers = paper_tiers(0.01);
        assert_eq!(tiers[0].mean_depth, 10.0);
        assert_eq!(tiers[4].mean_depth, 10_000.0);
        // Labels keep the paper's nominal depths.
        assert_eq!(tiers[4].name, "1,000,000x");
    }

    #[test]
    fn format_depth_grouping() {
        assert_eq!(format_depth(1_000.0), "1,000x");
        assert_eq!(format_depth(30_000.0), "30,000x");
        assert_eq!(format_depth(1_000_000.0), "1,000,000x");
    }

    #[test]
    fn shared_truth_sets_structure() {
        let g = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(5_000), 9);
        let sets = shared_truth_sets(&g, 5, 2, 30, 0.4, 40, (0.01, 0.1), (0.05, 0.2), 77);
        assert_eq!(sets.len(), 5);
        // The 2 core variants are in every set.
        let core: Vec<_> = sets[0]
            .iter()
            .filter(|v| sets.iter().all(|s| s.at(v.snv.pos).is_some()))
            .collect();
        assert!(core.len() >= 2, "core too small: {}", core.len());
        // Private variants: each set has ≥ its 40 unique ones.
        for (i, s) in sets.iter().enumerate() {
            let unique = s
                .iter()
                .filter(|v| {
                    sets.iter()
                        .enumerate()
                        .all(|(j, o)| j == i || o.at(v.snv.pos).is_none())
                })
                .count();
            assert!(unique >= 40, "set {i} has only {unique} private variants");
        }
    }

    #[test]
    fn shared_truth_sets_deterministic() {
        let g = tiny_ref();
        let a = shared_truth_sets(&g, 3, 1, 5, 0.5, 3, (0.01, 0.1), (0.05, 0.2), 5);
        let b = shared_truth_sets(&g, 3, 1, 5, 0.5, 3, (0.01, 0.1), (0.05, 0.2), 5);
        assert_eq!(a, b);
    }
}
