//! A reusable calling session: the driver→service split.
//!
//! [`CallDriver::run`] is a batch entry point — it rebuilds the
//! [`ColumnTest`] and re-issues source advice on every call, which is
//! right for a CLI process that runs once and exits. A serving process
//! answering many region queries against the same file wants the
//! opposite: open the file once (mmap tier, advice issued once), build
//! the whole-genome tester once, and reuse both across requests.
//! [`CallSession`] is that object.
//!
//! A session is **immutably shared**: [`CallSession::call`] takes
//! `&self`, so one session behind an `Arc` serves concurrent requests —
//! each call clones the cheap handles ([`BalFile`] is Arc'd bytes +
//! index + dict), arms its own [`RunBudget`], and builds its own
//! run-scoped block cache. Nothing a request does — not a deadline
//! expiry, not a cancelled client, not a contained worker panic — can
//! poison the session for the next request.
//!
//! Result identity: a session call over `[s, e)` produces records
//! bitwise identical to a fresh [`CallDriver::run_region`] over the same
//! range, because the tester is built from the whole reference either
//! way (same Bonferroni correction) and the pileup machinery is
//! identical. That property is what lets a server's responses be
//! compared byte-for-byte against batch CLI output in CI.

use crate::driver::{CallDriver, CallOutcome};
use crate::pvalue::ColumnTest;
use crate::supervisor::RunBudget;
use std::ops::Range;
use ultravc_bamlite::{Advice, BalError, BalFile};
use ultravc_genome::reference::ReferenceGenome;
use ultravc_sync::Arc;

/// A long-lived calling session over one reference + alignment file:
/// open file, quality dictionary, whole-genome [`ColumnTest`] and source
/// advice all survive across requests. See the module docs for the
/// sharing and identity contract.
#[derive(Debug)]
pub struct CallSession {
    driver: CallDriver,
    reference: Arc<ReferenceGenome>,
    alignments: BalFile,
    tester: ColumnTest,
    /// Whether whole-file advice actually engaged at open (true only on
    /// a mapping whose platform issues real hints). Runs then skip the
    /// redundant per-plan advise and report hints as engaged.
    advised: bool,
}

impl CallSession {
    /// Open a session: build the whole-genome tester and hint the whole
    /// backing once (`WILLNEED` — a region server touches the file in
    /// request order, not scan order). A refused or inapplicable hint
    /// degrades silently to demand paging; it is never an error.
    pub fn open(
        driver: CallDriver,
        reference: Arc<ReferenceGenome>,
        alignments: BalFile,
    ) -> CallSession {
        let tester = ColumnTest::new(&driver.config, reference.len());
        let source = alignments.source();
        let advised = source
            .advise(Advice::WillNeed, 0, source.len())
            .unwrap_or(false);
        CallSession {
            driver,
            reference,
            alignments,
            tester,
            advised,
        }
    }

    /// One region call under the session driver's own budget. Records
    /// are bitwise identical to [`CallDriver::run_region`] on a fresh
    /// driver with the same configuration.
    pub fn call(&self, region: Range<u32>) -> Result<CallOutcome, BalError> {
        self.driver.run_region_with(
            &self.reference,
            &self.alignments,
            region,
            &self.tester,
            self.advised,
        )
    }

    /// One region call under a per-request budget (a server arms one per
    /// request so client deadlines and disconnects cancel that request
    /// alone). `None` runs unsupervised — no retries, no containment.
    pub fn call_with_budget(
        &self,
        region: Range<u32>,
        budget: Option<RunBudget>,
    ) -> Result<CallOutcome, BalError> {
        let mut driver = self.driver.clone();
        driver.budget = budget;
        driver.run_region_with(
            &self.reference,
            &self.alignments,
            region,
            &self.tester,
            self.advised,
        )
    }

    /// Price a region request before running it — the session-level
    /// entry to [`CallDriver::estimate_region_cost`], computed from the
    /// held-open file's index (no payload I/O). A server uses this to
    /// order its job queue, budget total in-flight cost, and weight
    /// result-cache admission.
    pub fn estimate_cost(&self, region: &Range<u32>) -> u64 {
        CallDriver::estimate_region_cost(&self.alignments, region)
    }

    /// Total cost of the whole held-open file in [`CallSession::estimate_cost`]
    /// units: every record, i.e. the price of a whole-genome call.
    pub fn total_cost(&self) -> u64 {
        self.alignments.n_records().max(1)
    }

    /// The reference the session calls against.
    pub fn reference(&self) -> &Arc<ReferenceGenome> {
        &self.reference
    }

    /// The held-open alignment file.
    pub fn alignments(&self) -> &BalFile {
        &self.alignments
    }

    /// The session's driver configuration.
    pub fn driver(&self) -> &CallDriver {
        &self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use ultravc_bamlite::SourceTier;
    use ultravc_genome::reference::GenomeParams;
    use ultravc_readsim::dataset::DatasetSpec;

    fn setup(depth: f64, seed: u64) -> (ReferenceGenome, BalFile) {
        let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), seed);
        let ds = DatasetSpec::new("t", depth, seed)
            .with_variants(10, 0.02, 0.1)
            .simulate(&reference);
        (reference, ds.alignments)
    }

    #[test]
    fn session_calls_match_fresh_driver_runs_across_tiers() {
        let (reference, alignments) = setup(250.0, 97);
        let path =
            std::env::temp_dir().join(format!("ultravc-session-tiers-{}.bal", std::process::id()));
        alignments.write_to(&path).unwrap();
        let end = reference.len() as u32;
        let regions = [0..end, 0..end / 3, end / 3..2 * end / 3, end - 1..end];
        let reference = Arc::new(reference);
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let disk = BalFile::open_with(&path, tier).unwrap();
            let session = CallSession::open(CallDriver::openmp(2), Arc::clone(&reference), disk);
            for region in &regions {
                let via_session = session.call(region.clone()).unwrap();
                let fresh = CallDriver::openmp(2)
                    .run_region(
                        &reference,
                        &BalFile::open_with(&path, tier).unwrap(),
                        region.clone(),
                    )
                    .unwrap();
                assert_eq!(via_session.records, fresh.records, "{tier:?} {region:?}");
                assert_eq!(via_session.stats, fresh.stats, "{tier:?} {region:?}");
                assert!(via_session.partial.is_empty());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn region_runs_are_column_slices_of_the_whole_genome_run() {
        // The whole-genome tester makes a region run's *unfiltered* calls
        // exactly the whole-genome calls restricted to the region.
        let (reference, alignments) = setup(300.0, 101);
        let mut driver = CallDriver::sequential();
        driver.filter = None;
        let end = reference.len() as u32;
        let whole = driver.run(&reference, &alignments).unwrap();
        let session = CallSession::open(driver, Arc::new(reference), alignments);
        for region in [0..end, end / 4..3 * end / 4, 17..18] {
            let sliced: Vec<_> = whole
                .records
                .iter()
                .filter(|r| region.contains(&(r.pos as u32)))
                .cloned()
                .collect();
            let got = session.call(region.clone()).unwrap();
            assert_eq!(got.records, sliced, "{region:?}");
        }
    }

    #[test]
    fn per_request_budgets_do_not_poison_the_session() {
        let (reference, alignments) = setup(250.0, 103);
        let end = reference.len() as u32;
        let session = CallSession::open(
            CallDriver::openmp(2),
            Arc::new(reference),
            alignments.clone(),
        );
        let clean = session.call(0..end).unwrap();
        // A cancelled request comes back partial...
        let cancelled = RunBudget::unbounded();
        cancelled.cancel.cancel();
        let partial = session.call_with_budget(0..end, Some(cancelled)).unwrap();
        assert!(!partial.partial.is_empty());
        // ...and the next plain call is untouched by it.
        let after = session.call(0..end).unwrap();
        assert_eq!(after.records, clean.records);
        assert_eq!(after.stats, clean.stats);
    }

    #[test]
    // A reversed span is one of the invalid inputs under test.
    #[allow(clippy::reversed_empty_ranges)]
    fn invalid_regions_and_zero_deadlines_are_rejected() {
        let (reference, alignments) = setup(100.0, 107);
        let end = reference.len() as u32;
        let session = CallSession::open(CallDriver::sequential(), Arc::new(reference), alignments);
        for bad in [end..end + 1, 5..4, 0..u32::MAX] {
            let err = session.call(bad.clone()).unwrap_err();
            assert!(err.to_string().contains("out of bounds"), "{bad:?}: {err}");
        }
        let err = session
            .call_with_budget(0..end, Some(RunBudget::with_deadline(Duration::ZERO)))
            .unwrap_err();
        assert!(err.to_string().contains("must be positive"), "{err}");
    }

    #[test]
    fn cost_estimates_are_monotone_and_bounded_by_the_file() {
        let (reference, alignments) = setup(300.0, 113);
        let end = reference.len() as u32;
        let session = CallSession::open(CallDriver::sequential(), Arc::new(reference), alignments);
        let whole = session.estimate_cost(&(0..end));
        let half = session.estimate_cost(&(0..end / 2));
        let sliver = session.estimate_cost(&(0..1));
        assert_eq!(
            whole,
            session.total_cost(),
            "whole span prices every record"
        );
        assert!(half <= whole && sliver <= half, "{sliver} {half} {whole}");
        assert!(sliver >= 1, "estimates are never zero");
        // Deeper file ⇒ strictly costlier whole-genome call.
        let (reference2, deeper) = setup(900.0, 113);
        let deeper = CallSession::open(CallDriver::sequential(), Arc::new(reference2), deeper);
        assert!(deeper.total_cost() > whole);
    }

    #[test]
    fn concurrent_session_calls_agree_with_sequential_ones() {
        let (reference, alignments) = setup(200.0, 109);
        let end = reference.len() as u32;
        let session = Arc::new(CallSession::open(
            CallDriver::openmp(2),
            Arc::new(reference),
            alignments,
        ));
        let regions: Vec<Range<u32>> = (0..4).map(|i| (i * end / 4)..((i + 1) * end / 4)).collect();
        let want: Vec<_> = regions
            .iter()
            .map(|r| session.call(r.clone()).unwrap().records)
            .collect();
        let handles: Vec<_> = regions
            .iter()
            .map(|r| {
                let session = Arc::clone(&session);
                let r = r.clone();
                std::thread::spawn(move || session.call(r).unwrap().records)
            })
            .collect();
        for (h, want) in handles.into_iter().zip(want) {
            assert_eq!(h.join().unwrap(), want);
        }
    }
}
