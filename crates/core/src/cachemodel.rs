//! Memory-access traces of the caller's kernels, for replay through
//! [`ultravc_cachesim`] — experiment D-1.
//!
//! The paper's discussion attributes the original caller's **>70 %** cache
//! miss rate to the exact computation "repeatedly iterat\[ing\] over an array
//! that does not fit in the cache" — original LoFreq's Poisson-binomial DP
//! keeps `O(d)` state, megabytes per thread at ultra-deep `d` — and the
//! improved caller's **<15 %** to most columns never touching that array:
//! the `O(d)` screen makes a few streaming passes over data the pileup
//! engine just wrote, and only rare fall-through columns run the (pruned,
//! `O(K)`-state) DP.
//!
//! These generators emit each kernel's reference stream so the claim is
//! *measured* against an explicit cache model rather than asserted.
//!
//! **Granularity.** Traces are emitted at cache-line granularity (one
//! reference per distinct 64-byte line in program order) — the stream that
//! reaches the modelled cache after register/L1-coalescing of element
//! accesses, which is what hardware miss-rate counters are ratios over.
//!
//! **Layout.** Each column's pileup entries live in fresh memory (the
//! engine materializes new columns as the genome streams by, at `col`-
//! dependent offsets); the DP scratch arrays are reused buffers at fixed
//! offsets, as in the real caller.
//!
//! **Three generations of column representation.** The entry-list traces
//! ([`entry_pass`], [`improved_column_trace`], [`original_column_trace`])
//! model the 2-byte-per-entry layouts the paper discusses. The **binned**
//! traces ([`histogram_pass`], [`binned_dp_trace`],
//! [`binned_column_trace`]) model what this workspace actually ships
//! since the quality-histogram columns landed: a **fixed ~3 KB histogram
//! per column** (recycled through the pileup engine's freelist, so the
//! lines are hot after warm-up) and a grouped-trial DP whose working set
//! is `O(#bins + K)` — independent of depth, which is why its miss rate
//! stays flat where the original caller's `O(d)` state thrashes.

/// Cache-line size assumed by the trace generators.
pub const LINE: u64 = 64;

/// Bytes per pileup entry (packed base+strand byte and quality byte).
const ENTRY_BYTES: u64 = 2;

/// Bytes of one histogram column: 8 (base, strand) groups × 94 quality
/// slots × 4-byte counts — fixed, independent of depth (the shipped
/// `PileupColumn` layout).
pub const HISTOGRAM_BYTES: u64 = 8 * 94 * 4;

/// Bytes per `(error probability f64, multiplicity u32)` quality bin as
/// laid out in the `QualityBins` vector (padded to 16).
const BIN_BYTES: u64 = 16;

/// Address-space bases; entry streams, histograms, the Phred table and DP
/// scratch never alias.
const ENTRY_BASE: u64 = 0x1_0000_0000;
const DP_BASE: u64 = 0x2000_0000;
const HIST_BASE: u64 = 0x3_0000_0000;
const TABLE_BASE: u64 = 0x4_0000_0000;

/// Lines of one column's entry array.
fn entry_lines(depth: usize) -> u64 {
    (depth as u64 * ENTRY_BYTES).div_ceil(LINE).max(1)
}

/// Per-column base address for its entry array (fresh memory per column).
fn entry_base(col: u64, depth: usize) -> u64 {
    ENTRY_BASE + col * (entry_lines(depth) + 1) * LINE
}

/// One sequential pass over a column's entries (the pileup build pass, the
/// mismatch-count pass, or the `λ = Σ pᵢ` screen pass — identical streams).
pub fn entry_pass(depth: usize, col: u64) -> impl Iterator<Item = u64> {
    let base = entry_base(col, depth);
    (0..entry_lines(depth)).map(move |l| base + l * LINE)
}

/// Per-thread DP scratch base: each worker owns its own reused buffer.
fn dp_base(scratch: u64) -> u64 {
    DP_BASE + scratch * 0x80_0000 // 8 MiB apart: never aliases
}

/// The pruned `O(d·K)` DP (LoFreq's production kernel, state = `K` f64s):
/// per read, its entry line, then a sweep of the `K`-element array.
/// `scratch` identifies the owning thread's reused state buffer.
pub fn pruned_dp_trace(
    depth: usize,
    k: usize,
    col: u64,
    scratch: u64,
) -> impl Iterator<Item = u64> {
    let dp_lines = ((k.max(1) as u64) * 8).div_ceil(LINE);
    let base = entry_base(col, depth);
    let dp = dp_base(scratch);
    (0..depth as u64).flat_map(move |i| {
        std::iter::once(base + (i * ENTRY_BYTES / LINE) * LINE)
            .chain((0..dp_lines).map(move |j| dp + j * LINE))
    })
}

/// The full `O(d²)` DP with `O(d)` state (the kernel the paper says
/// original LoFreq runs): read `n` sweeps the first `n + 1` pmf elements
/// of a depth-sized array.
pub fn full_dp_trace(depth: usize, col: u64, scratch: u64) -> impl Iterator<Item = u64> {
    let base = entry_base(col, depth);
    let dp = dp_base(scratch);
    (0..depth as u64).flat_map(move |n| {
        let dp_lines = ((n + 1) * 8).div_ceil(LINE);
        std::iter::once(base + (n * ENTRY_BYTES / LINE) * LINE)
            .chain((0..dp_lines).map(move |j| dp + j * LINE))
    })
}

/// A column processed by the **improved** caller: build pass (pileup
/// writes), mismatch-count pass, screen pass; the pruned DP only on
/// fall-through.
pub fn improved_column_trace(
    depth: usize,
    k: usize,
    fall_through: bool,
    col: u64,
    scratch: u64,
) -> Box<dyn Iterator<Item = u64>> {
    let passes = entry_pass(depth, col)
        .chain(entry_pass(depth, col))
        .chain(entry_pass(depth, col));
    if fall_through {
        Box::new(passes.chain(pruned_dp_trace(depth, k, col, scratch)))
    } else {
        Box::new(passes)
    }
}

/// A column processed by the **original** caller: build pass, count pass,
/// then the full `O(d)`-state DP on every mismatch column.
pub fn original_column_trace(
    depth: usize,
    col: u64,
    scratch: u64,
) -> Box<dyn Iterator<Item = u64>> {
    Box::new(
        entry_pass(depth, col)
            .chain(entry_pass(depth, col))
            .chain(full_dp_trace(depth, col, scratch)),
    )
}

/// Distinct bytes the pruned DP touches — its working set.
pub fn pruned_dp_working_set(depth: usize, k: usize) -> u64 {
    depth as u64 * ENTRY_BYTES + 8 * k.max(1) as u64
}

/// Distinct bytes the full DP touches.
pub fn full_dp_working_set(depth: usize) -> u64 {
    depth as u64 * ENTRY_BYTES + 8 * depth as u64
}

// ---------------------------------------------------------------------------
// Binned (shipped) representation
// ---------------------------------------------------------------------------

/// Lines of one histogram column.
fn histogram_lines() -> u64 {
    HISTOGRAM_BYTES.div_ceil(LINE)
}

/// Base address of a column's histogram buffer. Column buffers are
/// recycled through the pileup engine's freelist, so a stream of columns
/// cycles through a small `pool` of fixed buffers instead of touching
/// fresh memory per column — the reuse that keeps histogram misses
/// compulsory-only.
fn histogram_base(col: u64, pool: u64) -> u64 {
    HIST_BASE + (col % pool.max(1)) * (histogram_lines() + 1) * LINE
}

/// One sequential pass over a column's histogram (the pileup build pass,
/// a `base_counts` reduction, or the bin-aggregation pass — identical
/// fixed-size streams, depth-independent by construction).
pub fn histogram_pass(col: u64, pool: u64) -> impl Iterator<Item = u64> {
    let base = histogram_base(col, pool);
    (0..histogram_lines()).map(move |l| base + l * LINE)
}

/// One pass over the 94-entry `Q → p` lookup table (the screen's
/// `Σ count(q)·p(q)` dot product reads it alongside the histogram).
pub fn phred_table_pass() -> impl Iterator<Item = u64> {
    let lines = (94u64 * 8).div_ceil(LINE);
    (0..lines).map(move |l| TABLE_BASE + l * LINE)
}

/// The grouped-trial binned DP (`tail_pruned_binned`): per quality bin,
/// its `(p, m)` pair line plus a sweep of the `K`-element state array —
/// `O(#bins + K)` distinct bytes, **independent of depth**. `scratch`
/// identifies the owning thread's reused buffers.
pub fn binned_dp_trace(n_bins: usize, k: usize, scratch: u64) -> impl Iterator<Item = u64> {
    let state_lines = ((k.max(1) as u64) * 8).div_ceil(LINE);
    let dp = dp_base(scratch);
    let bins = dp + 0x40_0000; // same thread-owned region, never aliasing
    (0..n_bins as u64).flat_map(move |b| {
        std::iter::once(bins + (b * BIN_BYTES / LINE) * LINE)
            .chain((0..state_lines).map(move |j| dp + j * LINE))
    })
}

/// A column processed by the **shipped** caller: histogram build pass,
/// reduction pass, screen pass (histogram + Phred table); the binned DP
/// only on fall-through. Compare with [`improved_column_trace`] (entry
/// list, pre-binning) and [`original_column_trace`].
pub fn binned_column_trace(
    n_bins: usize,
    k: usize,
    fall_through: bool,
    col: u64,
    pool: u64,
    scratch: u64,
) -> Box<dyn Iterator<Item = u64>> {
    let passes = histogram_pass(col, pool)
        .chain(histogram_pass(col, pool))
        .chain(histogram_pass(col, pool))
        .chain(phred_table_pass());
    if fall_through {
        Box::new(passes.chain(binned_dp_trace(n_bins, k, scratch)))
    } else {
        Box::new(passes)
    }
}

/// Distinct bytes the binned DP touches — `O(#bins + K)`, no depth term.
pub fn binned_dp_working_set(n_bins: usize, k: usize) -> u64 {
    n_bins as u64 * BIN_BYTES + 8 * k.max(1) as u64
}

/// Distinct bytes a whole binned column touches (histogram + table +
/// DP working set) — the fixed ~3 KB footprint the D-1 experiment should
/// model for the shipped kernels.
pub fn binned_column_working_set(n_bins: usize, k: usize) -> u64 {
    HISTOGRAM_BYTES + 94 * 8 + binned_dp_working_set(n_bins, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_cachesim::{Cache, CacheConfig};

    #[test]
    fn trace_lengths() {
        // 130 entries × 2 B = 260 B → 5 lines.
        assert_eq!(entry_pass(130, 0).count(), 5);
        // pruned: per read 1 entry line + ceil(100·8/64) = 13 DP lines.
        assert_eq!(pruned_dp_trace(10, 100, 0, 0).count(), 10 * 14);
        // full, d=16: per read 1 + ceil(8(n+1)/64) lines; n=0..7 → 1,
        // n=8..15 → 2.
        assert_eq!(full_dp_trace(16, 0, 0).count(), 16 + 8 + 16);
    }

    #[test]
    fn columns_use_disjoint_entry_memory() {
        let a: std::collections::HashSet<u64> = entry_pass(1000, 0).collect();
        let b: std::collections::HashSet<u64> = entry_pass(1000, 1).collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn screen_reuse_keeps_misses_compulsory() {
        // Improved path, no fall-through: 3 passes over the same lines →
        // 1 compulsory miss + 2 hits per line ⇒ rate ≈ 1/3.
        let mut cache = Cache::new(CacheConfig::xeon_l2());
        for col in 0..20u64 {
            for addr in improved_column_trace(5_000, 50, false, col, 0) {
                cache.access(addr);
            }
        }
        let rate = cache.stats().miss_rate();
        assert!(
            (rate - 1.0 / 3.0).abs() < 0.05,
            "screen-only miss rate {rate} should be ≈ 1/3"
        );
    }

    #[test]
    fn small_pruned_dp_stays_resident() {
        let mut cache = Cache::new(CacheConfig::l1d());
        for addr in pruned_dp_trace(10_000, 64, 0, 0) {
            cache.access(addr);
        }
        let rate = cache.stats().miss_rate();
        assert!(rate < 0.1, "small-K DP miss rate {rate}");
    }

    #[test]
    fn full_dp_thrashes_beyond_capacity() {
        // d=10 000 → 80 KB state in a 32 KiB L1: the growing sweep evicts
        // its own tail; most DP references miss.
        let mut cache = Cache::new(CacheConfig::l1d());
        for addr in full_dp_trace(10_000, 0, 0) {
            cache.access(addr);
        }
        let rate = cache.stats().miss_rate();
        assert!(
            rate > 0.7,
            "full-DP miss rate {rate} (paper's >70 % regime)"
        );
    }

    #[test]
    fn improved_vs_original_miss_rates() {
        // The D-1 contrast at unit-test scale: depth 12 000 columns, 2 %
        // fall-through for the improved caller (measured skip rates are
        // far higher), full DP everywhere for the original.
        let depth = 12_000;
        let config = CacheConfig::l1d();

        let mut improved = Cache::new(config);
        for col in 0..50u64 {
            let fall_through = col % 50 == 0;
            for addr in improved_column_trace(depth, 40, fall_through, col, 0) {
                improved.access(addr);
            }
        }
        let mut original = Cache::new(config);
        for col in 0..3u64 {
            for addr in original_column_trace(depth, col, 0) {
                original.access(addr);
            }
        }
        let fast = improved.stats().miss_rate();
        let slow = original.stats().miss_rate();
        assert!(
            slow > 0.7,
            "original should sit in the paper's >70 % regime: {slow:.3}"
        );
        assert!(fast < 0.4, "improved should sit well below: {fast:.3}");
    }

    #[test]
    fn working_set_formulas() {
        assert_eq!(pruned_dp_working_set(100, 10), 200 + 80);
        assert_eq!(pruned_dp_working_set(100, 0), 200 + 8);
        assert_eq!(full_dp_working_set(1_000), 2_000 + 8_000);
    }

    #[test]
    fn binned_working_set_is_depth_free() {
        // The formula has no depth input at all — that *is* the claim.
        assert_eq!(binned_dp_working_set(40, 80), 40 * 16 + 8 * 80);
        assert_eq!(binned_dp_working_set(1, 1), 16 + 8);
        // A whole binned column is ~3 KB + O(#bins + K): resident in any
        // L1 for realistic parameters.
        assert!(binned_column_working_set(40, 250) < 32 * 1024);
        // The entry-based improved column at 1M× depth is megabytes.
        assert!(pruned_dp_working_set(1_000_000, 250) > 1_000_000);
    }

    #[test]
    fn binned_trace_lengths() {
        // Histogram: 3008 B → 47 lines per pass.
        assert_eq!(histogram_pass(0, 2).count(), 47);
        // DP: per bin 1 bins-array line + ceil(80·8/64)=10 state lines.
        assert_eq!(binned_dp_trace(40, 80, 0).count(), 40 * 11);
        // The phred table is 94 f64s → 12 lines.
        assert_eq!(phred_table_pass().count(), 12);
    }

    #[test]
    fn histogram_pool_reuses_lines() {
        let a: std::collections::HashSet<u64> = histogram_pass(0, 2).collect();
        let b: std::collections::HashSet<u64> = histogram_pass(2, 2).collect();
        let c: std::collections::HashSet<u64> = histogram_pass(1, 2).collect();
        assert_eq!(a, b, "freelist recycling: col 2 reuses col 0's buffer");
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn binned_columns_stay_resident_in_l1() {
        // The shipped representation at *any* depth: after the pool warms
        // up, every histogram/table/DP line hits. 200 columns, ring pool
        // of 2, 3 % fall-through.
        let mut cache = Cache::new(CacheConfig::l1d());
        for col in 0..200u64 {
            for addr in binned_column_trace(40, 80, col % 33 == 0, col, 2, 0) {
                cache.access(addr);
            }
        }
        let rate = cache.stats().miss_rate();
        assert!(
            rate < 0.02,
            "binned columns must be cache-resident: miss rate {rate:.4}"
        );
    }

    #[test]
    fn binned_vs_entry_vs_original_miss_rates() {
        // The updated D-1 contrast: the shipped binned caller sits far
        // below the entry-list improved caller, which sits far below the
        // original — at a depth where the O(d) layouts already thrash.
        let depth = 12_000;
        let config = CacheConfig::l1d();

        let mut binned = Cache::new(config);
        for col in 0..50u64 {
            for addr in binned_column_trace(40, 40, col % 50 == 0, col, 2, 0) {
                binned.access(addr);
            }
        }
        let mut entry = Cache::new(config);
        for col in 0..50u64 {
            for addr in improved_column_trace(depth, 40, col % 50 == 0, col, 0) {
                entry.access(addr);
            }
        }
        let mut original = Cache::new(config);
        for col in 0..3u64 {
            for addr in original_column_trace(depth, col, 0) {
                original.access(addr);
            }
        }
        let b = binned.stats().miss_rate();
        let e = entry.stats().miss_rate();
        let o = original.stats().miss_rate();
        assert!(
            b < 0.15,
            "binned should be in the paper's <15 % regime: {b:.3}"
        );
        assert!(b < e, "binned {b:.3} must beat entry-list {e:.3}");
        assert!(e < o, "entry-list {e:.3} must beat original {o:.3}");
        assert!(o > 0.7, "original in the >70 % regime: {o:.3}");
    }
}
