//! Memory-access traces of the caller's kernels, for replay through
//! [`ultravc_cachesim`] — experiment D-1.
//!
//! The paper's discussion attributes the original caller's **>70 %** cache
//! miss rate to the exact computation "repeatedly iterat\[ing\] over an array
//! that does not fit in the cache" — original LoFreq's Poisson-binomial DP
//! keeps `O(d)` state, megabytes per thread at ultra-deep `d` — and the
//! improved caller's **<15 %** to most columns never touching that array:
//! the `O(d)` screen makes a few streaming passes over data the pileup
//! engine just wrote, and only rare fall-through columns run the (pruned,
//! `O(K)`-state) DP.
//!
//! These generators emit each kernel's reference stream so the claim is
//! *measured* against an explicit cache model rather than asserted.
//!
//! **Granularity.** Traces are emitted at cache-line granularity (one
//! reference per distinct 64-byte line in program order) — the stream that
//! reaches the modelled cache after register/L1-coalescing of element
//! accesses, which is what hardware miss-rate counters are ratios over.
//!
//! **Layout.** Each column's pileup entries live in fresh memory (the
//! engine materializes new columns as the genome streams by, at `col`-
//! dependent offsets); the DP scratch arrays are reused buffers at fixed
//! offsets, as in the real caller.

/// Cache-line size assumed by the trace generators.
pub const LINE: u64 = 64;

/// Bytes per pileup entry (packed base+strand byte and quality byte).
const ENTRY_BYTES: u64 = 2;

/// Address-space bases; entry streams and DP scratch never alias.
const ENTRY_BASE: u64 = 0x1_0000_0000;
const DP_BASE: u64 = 0x2000_0000;

/// Lines of one column's entry array.
fn entry_lines(depth: usize) -> u64 {
    (depth as u64 * ENTRY_BYTES).div_ceil(LINE).max(1)
}

/// Per-column base address for its entry array (fresh memory per column).
fn entry_base(col: u64, depth: usize) -> u64 {
    ENTRY_BASE + col * (entry_lines(depth) + 1) * LINE
}

/// One sequential pass over a column's entries (the pileup build pass, the
/// mismatch-count pass, or the `λ = Σ pᵢ` screen pass — identical streams).
pub fn entry_pass(depth: usize, col: u64) -> impl Iterator<Item = u64> {
    let base = entry_base(col, depth);
    (0..entry_lines(depth)).map(move |l| base + l * LINE)
}

/// Per-thread DP scratch base: each worker owns its own reused buffer.
fn dp_base(scratch: u64) -> u64 {
    DP_BASE + scratch * 0x80_0000 // 8 MiB apart: never aliases
}

/// The pruned `O(d·K)` DP (LoFreq's production kernel, state = `K` f64s):
/// per read, its entry line, then a sweep of the `K`-element array.
/// `scratch` identifies the owning thread's reused state buffer.
pub fn pruned_dp_trace(
    depth: usize,
    k: usize,
    col: u64,
    scratch: u64,
) -> impl Iterator<Item = u64> {
    let dp_lines = ((k.max(1) as u64) * 8).div_ceil(LINE);
    let base = entry_base(col, depth);
    let dp = dp_base(scratch);
    (0..depth as u64).flat_map(move |i| {
        std::iter::once(base + (i * ENTRY_BYTES / LINE) * LINE)
            .chain((0..dp_lines).map(move |j| dp + j * LINE))
    })
}

/// The full `O(d²)` DP with `O(d)` state (the kernel the paper says
/// original LoFreq runs): read `n` sweeps the first `n + 1` pmf elements
/// of a depth-sized array.
pub fn full_dp_trace(depth: usize, col: u64, scratch: u64) -> impl Iterator<Item = u64> {
    let base = entry_base(col, depth);
    let dp = dp_base(scratch);
    (0..depth as u64).flat_map(move |n| {
        let dp_lines = ((n + 1) * 8).div_ceil(LINE);
        std::iter::once(base + (n * ENTRY_BYTES / LINE) * LINE)
            .chain((0..dp_lines).map(move |j| dp + j * LINE))
    })
}

/// A column processed by the **improved** caller: build pass (pileup
/// writes), mismatch-count pass, screen pass; the pruned DP only on
/// fall-through.
pub fn improved_column_trace(
    depth: usize,
    k: usize,
    fall_through: bool,
    col: u64,
    scratch: u64,
) -> Box<dyn Iterator<Item = u64>> {
    let passes = entry_pass(depth, col)
        .chain(entry_pass(depth, col))
        .chain(entry_pass(depth, col));
    if fall_through {
        Box::new(passes.chain(pruned_dp_trace(depth, k, col, scratch)))
    } else {
        Box::new(passes)
    }
}

/// A column processed by the **original** caller: build pass, count pass,
/// then the full `O(d)`-state DP on every mismatch column.
pub fn original_column_trace(
    depth: usize,
    col: u64,
    scratch: u64,
) -> Box<dyn Iterator<Item = u64>> {
    Box::new(
        entry_pass(depth, col)
            .chain(entry_pass(depth, col))
            .chain(full_dp_trace(depth, col, scratch)),
    )
}

/// Distinct bytes the pruned DP touches — its working set.
pub fn pruned_dp_working_set(depth: usize, k: usize) -> u64 {
    depth as u64 * ENTRY_BYTES + 8 * k.max(1) as u64
}

/// Distinct bytes the full DP touches.
pub fn full_dp_working_set(depth: usize) -> u64 {
    depth as u64 * ENTRY_BYTES + 8 * depth as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_cachesim::{Cache, CacheConfig};

    #[test]
    fn trace_lengths() {
        // 130 entries × 2 B = 260 B → 5 lines.
        assert_eq!(entry_pass(130, 0).count(), 5);
        // pruned: per read 1 entry line + ceil(100·8/64) = 13 DP lines.
        assert_eq!(pruned_dp_trace(10, 100, 0, 0).count(), 10 * 14);
        // full, d=16: per read 1 + ceil(8(n+1)/64) lines; n=0..7 → 1,
        // n=8..15 → 2.
        assert_eq!(full_dp_trace(16, 0, 0).count(), 16 + 8 + 16);
    }

    #[test]
    fn columns_use_disjoint_entry_memory() {
        let a: std::collections::HashSet<u64> = entry_pass(1000, 0).collect();
        let b: std::collections::HashSet<u64> = entry_pass(1000, 1).collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn screen_reuse_keeps_misses_compulsory() {
        // Improved path, no fall-through: 3 passes over the same lines →
        // 1 compulsory miss + 2 hits per line ⇒ rate ≈ 1/3.
        let mut cache = Cache::new(CacheConfig::xeon_l2());
        for col in 0..20u64 {
            for addr in improved_column_trace(5_000, 50, false, col, 0) {
                cache.access(addr);
            }
        }
        let rate = cache.stats().miss_rate();
        assert!(
            (rate - 1.0 / 3.0).abs() < 0.05,
            "screen-only miss rate {rate} should be ≈ 1/3"
        );
    }

    #[test]
    fn small_pruned_dp_stays_resident() {
        let mut cache = Cache::new(CacheConfig::l1d());
        for addr in pruned_dp_trace(10_000, 64, 0, 0) {
            cache.access(addr);
        }
        let rate = cache.stats().miss_rate();
        assert!(rate < 0.1, "small-K DP miss rate {rate}");
    }

    #[test]
    fn full_dp_thrashes_beyond_capacity() {
        // d=10 000 → 80 KB state in a 32 KiB L1: the growing sweep evicts
        // its own tail; most DP references miss.
        let mut cache = Cache::new(CacheConfig::l1d());
        for addr in full_dp_trace(10_000, 0, 0) {
            cache.access(addr);
        }
        let rate = cache.stats().miss_rate();
        assert!(
            rate > 0.7,
            "full-DP miss rate {rate} (paper's >70 % regime)"
        );
    }

    #[test]
    fn improved_vs_original_miss_rates() {
        // The D-1 contrast at unit-test scale: depth 12 000 columns, 2 %
        // fall-through for the improved caller (measured skip rates are
        // far higher), full DP everywhere for the original.
        let depth = 12_000;
        let config = CacheConfig::l1d();

        let mut improved = Cache::new(config);
        for col in 0..50u64 {
            let fall_through = col % 50 == 0;
            for addr in improved_column_trace(depth, 40, fall_through, col, 0) {
                improved.access(addr);
            }
        }
        let mut original = Cache::new(config);
        for col in 0..3u64 {
            for addr in original_column_trace(depth, col, 0) {
                original.access(addr);
            }
        }
        let fast = improved.stats().miss_rate();
        let slow = original.stats().miss_rate();
        assert!(
            slow > 0.7,
            "original should sit in the paper's >70 % regime: {slow:.3}"
        );
        assert!(fast < 0.4, "improved should sit well below: {fast:.3}");
    }

    #[test]
    fn working_set_formulas() {
        assert_eq!(pruned_dp_working_set(100, 10), 200 + 80);
        assert_eq!(pruned_dp_working_set(100, 0), 200 + 8);
        assert_eq!(full_dp_working_set(1_000), 2_000 + 8_000);
    }
}
