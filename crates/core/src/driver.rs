//! Execution drivers: sequential, script-emulation, and OpenMP-style
//! shared-memory parallel calling.
//!
//! The three modes reproduce the paper's §II.B comparison:
//!
//! * [`ParallelMode::Sequential`] — one thread, one pass, one filter.
//! * [`ParallelMode::ScriptEmulation`] — the *original* LoFreq parallel
//!   wrapper: partition the genome into equal contiguous pieces, run an
//!   independent caller per piece, **filter each piece's output**, merge,
//!   then **filter the merged set again**. Both filter applications use
//!   data-dependent thresholds, which is precisely the inconsistency the
//!   review article (\[8\] in the paper) flagged and the paper fixes.
//! * [`ParallelMode::OpenMp`] — the paper's replacement: a dynamic
//!   parallel-for over column chunks, one independent BAL reader per
//!   worker, results merged in coordinate order, and the filter applied
//!   exactly once. With batch ingest (the default) the workers share a
//!   run-scoped [`SharedBlockCache`], so a block straddling a chunk
//!   boundary is decoded exactly once per run instead of once per
//!   overlapping worker — and the [`Category::Decompress`] spans of the
//!   trace sum to the true decode work instead of multiply counting it.
//!
//! All modes share one [`ColumnTest`] built from the whole region, so the
//! *calling* decisions are identical; only filtering differs. Workers
//! attribute their time to [`Category`] spans, so an OpenMP run can be
//! rendered as the paper's Figure 2 timeline.

use crate::caller::{examine_column, CallSet, CallStats};
use crate::config::CallerConfig;
use crate::pvalue::{ColumnTest, Scratch};
use crate::supervisor::{Interrupt, IoBudget, RegionError, RegionFailure, RunBudget};
use std::time::{Duration, Instant};
use ultravc_bamlite::{BalError, BalFile, DecodeStats, IoPlan, ReadaheadHandle, SharedBlockCache};
use ultravc_genome::reference::ReferenceGenome;
use ultravc_parfor::{parallel_for, parallel_for_supervised, ItemOutcome, Schedule, TeamReport};
use ultravc_pileup::{chunk_ranges, pileup_region, pileup_region_windowed, ResolvedIngest};
use ultravc_pileup::{split_ranges, PileupIter};
use ultravc_sync::{Arc, Mutex};
use ultravc_trace::{Category, Timeline, TraceRecorder};
use ultravc_vcf::{DynamicFilter, FilterParams, FilterReport, VcfRecord};

// Re-exported so driver consumers (CLI, benches, tests) can name the
// prefetch knobs without depending on `ultravc_bamlite` directly.
pub use ultravc_bamlite::{PrefetchMode, ResolvedPrefetch};

/// How the genome's columns are executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParallelMode {
    /// One thread, front to back.
    Sequential,
    /// The paper's OpenMP port: chunked parallel-for, single filter pass.
    OpenMp {
        /// Worker count.
        n_threads: usize,
        /// Loop schedule (the paper uses dynamic).
        schedule: Schedule,
        /// Columns per chunk.
        chunk_columns: u32,
    },
    /// The original partition-script behaviour, including its
    /// double-filtering bug.
    ScriptEmulation {
        /// Number of emulated worker processes.
        n_jobs: usize,
    },
}

/// One run's scheduled-I/O state (batch ingest only): the plan, the
/// decode-once cache scoped to it, the optional stream-tier read-ahead,
/// and the effective prefetch mode to report. Built by
/// `CallDriver::schedule_io`.
struct ScheduledIo {
    plan: IoPlan,
    cache: Arc<SharedBlockCache>,
    readahead: Option<ReadaheadHandle>,
    effective: ResolvedPrefetch,
    /// Whether scheduled I/O degraded while being set up — a refused
    /// `madvise` on a tier that should take hints. The run proceeds on
    /// demand reads; the outcome records that the fast path was lost.
    degraded: bool,
}

/// A full calling run: configuration + filter + execution mode.
#[derive(Debug, Clone)]
pub struct CallDriver {
    /// Caller configuration.
    pub config: CallerConfig,
    /// Post-call filter; `None` leaves records unfiltered.
    pub filter: Option<FilterParams>,
    /// Execution mode.
    pub mode: ParallelMode,
    /// Record a per-thread trace (OpenMP mode only).
    pub trace: bool,
    /// Scheduled-I/O prefetch for disk-backed alignments: `madvise`
    /// hints on the mmap tier, bounded background read-ahead into the
    /// shared block cache on the streaming tier. `Auto` resolves against
    /// `ULTRAVC_PREFETCH`; an explicit mode wins over the environment.
    /// Ignored by script emulation (which models the original
    /// per-process pipeline) and by legacy ingest (no shared cache).
    pub prefetch: PrefetchMode,
    /// Supervision policy: deadline, retry/backoff, cancellation. The
    /// default ([`RunBudget::unbounded`]) arms retries but nothing that
    /// can trip; `None` disables supervision entirely — no retry wrapper,
    /// no stop polling, no panic containment — the pre-supervisor hot
    /// path benches measure overhead against.
    pub budget: Option<RunBudget>,
}

impl CallDriver {
    /// Sequential driver with default config and single-pass filtering.
    pub fn sequential() -> CallDriver {
        CallDriver {
            config: CallerConfig::default(),
            filter: Some(FilterParams::default()),
            mode: ParallelMode::Sequential,
            trace: false,
            prefetch: PrefetchMode::Auto,
            budget: Some(RunBudget::unbounded()),
        }
    }

    /// OpenMP-style driver with the paper's dynamic schedule.
    pub fn openmp(n_threads: usize) -> CallDriver {
        CallDriver {
            config: CallerConfig::default(),
            filter: Some(FilterParams::default()),
            mode: ParallelMode::OpenMp {
                n_threads,
                schedule: Schedule::Dynamic { chunk: 1 },
                chunk_columns: 64,
            },
            trace: false,
            prefetch: PrefetchMode::Auto,
            budget: Some(RunBudget::unbounded()),
        }
    }

    /// Script-emulation driver (reproduces the double-filtering bug).
    pub fn script(n_jobs: usize) -> CallDriver {
        CallDriver {
            config: CallerConfig::default(),
            filter: Some(FilterParams::default()),
            mode: ParallelMode::ScriptEmulation { n_jobs },
            trace: false,
            prefetch: PrefetchMode::Auto,
            budget: Some(RunBudget::unbounded()),
        }
    }

    /// Run over the whole reference.
    ///
    /// With a [`RunBudget`] set (the default), the run is supervised:
    /// the budget is armed at entry (deadline anchored to now) and
    /// attached to this run's [`BalFile`] clone, so every payload read —
    /// workers, prefetcher, sequential drain — retries transients and
    /// observes cancellation. In OpenMP mode, failures that survive the
    /// retry layer are contained per chunk: the run returns `Ok` with
    /// the failed regions itemized in [`CallOutcome::partial`] and the
    /// completed regions' calls intact. Sequential and script modes
    /// propagate the first error as `Err` (typed — an interruption stays
    /// [`BalError::Interrupted`]).
    pub fn run(
        &self,
        reference: &ReferenceGenome,
        alignments: &BalFile,
    ) -> Result<CallOutcome, BalError> {
        self.run_region(reference, alignments, 0..reference.len() as u32)
    }

    /// Estimate the cost of calling `region` before running it: the
    /// number of records held by index blocks overlapping the span —
    /// exactly the reads the [`IoPlan`](ultravc_bamlite::IoPlan) for the
    /// run would schedule, i.e. blocks × per-block depth. The estimate
    /// is computed from the index alone (no payload I/O), so a serving
    /// layer can price a request at admission time; it is monotone in
    /// both span width and depth and never zero (an empty span still
    /// costs one unit of scheduling).
    pub fn estimate_region_cost(alignments: &BalFile, region: &std::ops::Range<u32>) -> u64 {
        let index = alignments.index();
        alignments
            .blocks_overlapping(region.start, region.end)
            .iter()
            .filter_map(|&b| index.get(b))
            .map(|meta| meta.n_records as u64)
            .sum::<u64>()
            .max(1)
    }

    /// Run over one column range `[region.start, region.end)` of the
    /// reference.
    ///
    /// The [`ColumnTest`] is still built from the **whole reference**
    /// (same Bonferroni correction as a whole-genome run), so a region
    /// run's records are bitwise identical to the same columns of a
    /// whole-genome run before filtering — the property that lets a
    /// region server answer from the same statistics as the batch CLI.
    /// The region must satisfy `start ≤ end ≤ reference.len()`; anything
    /// else is an `InvalidInput` I/O error, as is a zero-duration
    /// deadline in the budget (which would expire before the run
    /// started and make every outcome trivially partial).
    pub fn run_region(
        &self,
        reference: &ReferenceGenome,
        alignments: &BalFile,
        region: std::ops::Range<u32>,
    ) -> Result<CallOutcome, BalError> {
        let tester = ColumnTest::new(&self.config, reference.len());
        self.run_region_with(reference, alignments, region, &tester, false)
    }

    /// [`run_region`](CallDriver::run_region) against a caller-held
    /// [`ColumnTest`] (a session builds it once and reuses it across
    /// requests) with optionally pre-issued source advice
    /// (`pre_advised` — the session hinted the whole mapping at open, so
    /// per-run plan advice is redundant and the run reports hints as
    /// engaged without re-issuing them).
    pub(crate) fn run_region_with(
        &self,
        reference: &ReferenceGenome,
        alignments: &BalFile,
        region: std::ops::Range<u32>,
        tester: &ColumnTest,
        pre_advised: bool,
    ) -> Result<CallOutcome, BalError> {
        let t0 = Instant::now();
        if region.start > region.end || region.end > reference.len() as u32 {
            return Err(BalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "region [{}, {}) out of bounds for reference of length {}",
                    region.start,
                    region.end,
                    reference.len()
                ),
            )));
        }
        if let Some(budget) = &self.budget {
            budget.validate().map_err(|msg| {
                BalError::Io(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))
            })?;
        }
        let io_budget = self.budget.as_ref().map(|b| Arc::new(b.arm()));
        let supervised;
        let alignments = match &io_budget {
            Some(b) => {
                supervised = alignments.clone().with_budget(Arc::clone(b));
                &supervised
            }
            None => alignments,
        };
        let mut outcome = match self.mode {
            ParallelMode::Sequential => {
                self.run_sequential(reference, alignments, tester, region, pre_advised)?
            }
            ParallelMode::OpenMp {
                n_threads,
                schedule,
                chunk_columns,
            } => self.run_openmp(
                reference,
                alignments,
                tester,
                region,
                n_threads,
                schedule,
                chunk_columns,
                io_budget.as_deref(),
                pre_advised,
            )?,
            ParallelMode::ScriptEmulation { n_jobs } => {
                self.run_script(reference, alignments, tester, region, n_jobs)?
            }
        };
        outcome.wall = t0.elapsed();
        outcome.source_tier = alignments.source().tier_name();
        if let Some(b) = &io_budget {
            outcome.io_retries = b.retries();
            if outcome.interrupt.is_none() {
                outcome.interrupt = b.interrupt();
            }
        }
        Ok(outcome)
    }

    /// Build the run's scheduled-I/O state for a batch-ingest region
    /// partition: the I/O plan, the decode-once cache scoped to it, the
    /// optional stream-tier read-ahead thread, and the **effective**
    /// prefetch mode — off whenever nothing actually engaged (legacy
    /// ingest handled by the caller, a backing with nothing to hint or
    /// read ahead, hints that are platform no-ops), so I/O numbers are
    /// never attributed to a scheduling mode that never ran. Hints are
    /// advisory: a refused `madvise` downgrades the report instead of
    /// failing a run that would succeed without it.
    fn schedule_io(
        &self,
        alignments: &BalFile,
        regions: &[std::ops::Range<u32>],
        pre_advised: bool,
    ) -> Result<ScheduledIo, BalError> {
        let prefetch = self.prefetch.resolved()?;
        let plan = IoPlan::for_regions(alignments, regions);
        let cache = Arc::new(SharedBlockCache::for_plan(alignments.clone(), &plan));
        let (readahead, hinted, degraded) = match prefetch {
            ResolvedPrefetch::Ahead(ahead) => {
                // Hints are advisory: a refused madvise downgrades the
                // report (hinted=false, degraded noted) instead of failing
                // a run that would succeed on demand reads. A session that
                // already hinted the whole mapping at open skips the
                // per-run advise (it would be redundant) and reports
                // hints engaged.
                let (hinted, degraded) = if pre_advised {
                    (true, false)
                } else {
                    match plan.advise(alignments) {
                        Ok(applied) => (applied, false),
                        Err(_) => (false, true),
                    }
                };
                // Read-ahead engages wherever reads are demand-`pread`s —
                // the stream tier, including a fault tier wrapping it.
                let handle = alignments
                    .source()
                    .is_stream_backed()
                    .then(|| plan.spawn_readahead(Arc::clone(&cache), ahead));
                (handle, hinted, degraded)
            }
            ResolvedPrefetch::Off => (None, false, false),
        };
        let effective = if hinted || readahead.is_some() {
            prefetch
        } else {
            ResolvedPrefetch::Off
        };
        Ok(ScheduledIo {
            plan,
            cache,
            readahead,
            effective,
            degraded,
        })
    }

    fn run_sequential(
        &self,
        reference: &ReferenceGenome,
        alignments: &BalFile,
        tester: &ColumnTest,
        region: std::ops::Range<u32>,
        pre_advised: bool,
    ) -> Result<CallOutcome, BalError> {
        // Legacy ingest has no shared cache to warm: plain region drain,
        // prefetch reported off.
        if self.config.pileup.ingest.resolved() == ResolvedIngest::Legacy {
            let call_set = crate::caller::call_region(
                reference,
                alignments,
                region.start,
                region.end,
                &self.config,
                tester,
            )?;
            return Ok(self.finish_single_filter(call_set, None, None, ResolvedPrefetch::Off));
        }
        // Batch ingest: one region through the scheduled-I/O stack —
        // hints on the mmap tier, read+decode overlapped with calling on
        // the streaming tier.
        let io = self.schedule_io(alignments, std::slice::from_ref(&region), pre_advised)?;
        let mut scratch = Scratch::new();
        let result = crate::caller::call_region_cached(
            reference,
            &io.cache,
            region.start,
            region.end,
            &self.config,
            tester,
            &mut scratch,
        );
        let prefetched = io.readahead.map(ReadaheadHandle::finish);
        let mut call_set = result?;
        let mut degraded = io.degraded;
        if let Some(report) = prefetched {
            call_set.decode.merge(&report.stats);
            degraded |= report.panicked;
        }
        let mut outcome = self.finish_single_filter(call_set, None, None, io.effective);
        outcome.prefetch_degraded = degraded;
        Ok(outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_openmp(
        &self,
        reference: &ReferenceGenome,
        alignments: &BalFile,
        tester: &ColumnTest,
        region: std::ops::Range<u32>,
        n_threads: usize,
        schedule: Schedule,
        chunk_columns: u32,
        io_budget: Option<&IoBudget>,
        pre_advised: bool,
    ) -> Result<CallOutcome, BalError> {
        let chunks = chunk_ranges(region.start, region.end, chunk_columns);
        let recorder = if self.trace {
            Some(TraceRecorder::new(n_threads))
        } else {
            None
        };
        // One shared byte source per run: `BalFile` handles are clones
        // over one reference-counted `ByteSource`, so whether the file is
        // in-memory, mmap'd or streamed from disk, every worker reads the
        // same backing — a disk-backed ultra-deep run opens the file once
        // and pages blocks in on demand, never copying it whole.
        //
        // Decode-once block sharing: with batch ingest every worker pulls
        // decoded arenas from one run-scoped cache, so chunk boundaries
        // cost nothing extra. Scoping the cache to the chunk list lets it
        // release each block's arena once every overlapping chunk has
        // consumed it, bounding residency by in-flight chunks rather than
        // the whole file. The legacy shim keeps the paper's original
        // one-reader-per-worker behaviour (each worker re-decodes its
        // boundary blocks), which is what `ULTRAVC_LEGACY_DECODE=1` pins.
        //
        // Scheduled I/O sits on top: the run-level plan gives every chunk
        // its block window (so workers iterate precomputed windows
        // instead of each re-walking the index), feeds the cache's
        // release expectations, and — when prefetch is on — drives
        // `madvise` hints (mmap tier) or a bounded read-ahead thread that
        // warms the cache ahead of the workers (streaming tier). The
        // read-ahead preserves decode-once (a slot decodes at most once,
        // whoever gets there first) and its decode stats are folded into
        // the run total below, so accounting stays exact.
        // The plan (and everything scheduled off it) exists only under
        // batch ingest; the legacy shim neither shares a cache nor
        // iterates windows, and its effective prefetch mode is reported
        // as off so I/O numbers are never attributed to a scheduling
        // mode that never ran.
        let mut io = match self.config.pileup.ingest.resolved() {
            ResolvedIngest::Batch => Some(self.schedule_io(alignments, &chunks, pre_advised)?),
            ResolvedIngest::Legacy => None,
        };
        let effective = io.as_ref().map_or(ResolvedPrefetch::Off, |io| io.effective);
        // One Scratch per worker, reused across all its chunks and
        // columns: the binned test path allocates nothing per column. The
        // mutex is uncontended (each worker locks only its own slot, once
        // per chunk).
        let scratches: Vec<Mutex<Scratch>> =
            (0..n_threads).map(|_| Mutex::new(Scratch::new())).collect();
        let region_start = Instant::now();
        let worker = |ctx: ultravc_parfor::WorkerCtx, idx: usize, range: &std::ops::Range<u32>| {
            // Contained worker panics make a poisoned scratch lock
            // recoverable: Scratch holds no cross-column invariants
            // (every test refills it before reading).
            let mut scratch = scratches[ctx.thread_id]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            call_chunk_traced(
                reference,
                alignments,
                io.as_ref().map(|io| (&io.cache, io.plan.window(idx))),
                range.start,
                range.end,
                &self.config,
                tester,
                &mut scratch,
                recorder.as_ref(),
                ctx.thread_id,
            )
        };
        // Supervised (budgeted) runs contain per-chunk failures and poll
        // the interrupt signal between items; unsupervised runs keep the
        // legacy all-or-nothing semantics (and its zero polling cost).
        let (outcomes, report) = match io_budget {
            None => {
                let (partials, report) = parallel_for(n_threads, &chunks, schedule, worker);
                (
                    partials.into_iter().map(ItemOutcome::Done).collect(),
                    report,
                )
            }
            Some(budget) => parallel_for_supervised(
                n_threads,
                &chunks,
                schedule,
                || budget.interrupt().is_some(),
                worker,
            ),
        };
        // Stop the read-ahead (if any) and fold the decodes it performed
        // into the run's accounting — whichever party decoded a block
        // owns its stats, so the sum stays the true per-run decode work.
        // A panicked prefetch thread is a degradation (workers demand-read
        // instead), not a failure.
        let prefetched = io
            .as_mut()
            .and_then(|io| io.readahead.take())
            .map(ReadaheadHandle::finish);
        let mut degraded = io.as_ref().is_some_and(|io| io.degraded);
        // Merge in chunk order; every chunk's records precede the next's.
        // Under supervision a failed chunk becomes a RegionError and its
        // neighbours' calls survive; unsupervised, the first error aborts.
        let mut merged = CallSet::default();
        let mut partial: Vec<RegionError> = Vec::new();
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            let region = chunks[idx].clone();
            match outcome {
                ItemOutcome::Done(Ok(set)) => merged.append(set),
                ItemOutcome::Done(Err(e)) if io_budget.is_none() => return Err(e),
                ItemOutcome::Done(Err(BalError::Interrupted(why))) => partial.push(RegionError {
                    region,
                    failure: RegionFailure::Cancelled(why),
                }),
                ItemOutcome::Done(Err(e)) => partial.push(RegionError {
                    region,
                    failure: RegionFailure::Error(e.to_string()),
                }),
                ItemOutcome::Panicked(msg) => partial.push(RegionError {
                    region,
                    failure: RegionFailure::Panic(msg),
                }),
                ItemOutcome::Skipped => partial.push(RegionError {
                    region,
                    failure: RegionFailure::Cancelled(
                        io_budget
                            .and_then(IoBudget::interrupt)
                            .unwrap_or(Interrupt::Cancelled),
                    ),
                }),
            }
        }
        if let Some(ra) = prefetched {
            merged.decode.merge(&ra.stats);
            degraded |= ra.panicked;
        }
        // Synthesize barrier spans from the team report, as HPC-Toolkit
        // displays the join idle time (dark green in the paper's Figure 2).
        let timeline = recorder.map(|rec| {
            for (t, done) in report.finished_at.iter().enumerate() {
                let start = region_start + *done;
                let end_instant = region_start + report.wall;
                if end_instant > start {
                    rec.record(t, Category::Barrier, start, end_instant);
                }
            }
            Timeline::from_spans(rec.finish())
        });
        let mut outcome = self.finish_single_filter(merged, Some(report), timeline, effective);
        outcome.partial = partial;
        outcome.prefetch_degraded = degraded;
        Ok(outcome)
    }

    fn run_script(
        &self,
        reference: &ReferenceGenome,
        alignments: &BalFile,
        tester: &ColumnTest,
        region: std::ops::Range<u32>,
        n_jobs: usize,
    ) -> Result<CallOutcome, BalError> {
        let partitions = split_ranges(region.start, region.end, n_jobs);
        let n_workers = n_jobs.min(partitions.len()).max(1);
        // Emulated processes run concurrently (static: one partition per
        // job, like the script's one-process-per-partition), each with its
        // own reusable scratch.
        let scratches: Vec<Mutex<Scratch>> =
            (0..n_workers).map(|_| Mutex::new(Scratch::new())).collect();
        let (partials, report) =
            parallel_for(n_workers, &partitions, Schedule::Static, |ctx, _, range| {
                let mut scratch = scratches[ctx.thread_id]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                crate::caller::call_region_with_scratch(
                    reference,
                    alignments,
                    range.start,
                    range.end,
                    &self.config,
                    tester,
                    &mut scratch,
                )
            });
        let mut filter_reports = Vec::new();
        let mut merged = CallSet::default();
        for partial in partials {
            let mut call_set = partial?;
            // Stage 1: each "process" filters its own output with a
            // threshold derived from *its* record count.
            if let Some(params) = self.filter {
                let report = DynamicFilter::new(params).apply(&mut call_set.records);
                filter_reports.push(report);
            }
            merged.append(call_set);
        }
        // Stage 2: the wrapper filters the combined output again — the bug.
        if let Some(params) = self.filter {
            let report = DynamicFilter::new(params).apply(&mut merged.records);
            filter_reports.push(report);
        }
        Ok(CallOutcome {
            records: merged.records,
            stats: merged.stats,
            decode: merged.decode,
            filter_reports,
            team: Some(report),
            timeline: None,
            wall: Duration::ZERO,
            kernel: ultravc_simd::kernels().name,
            // The emulated script pipeline models the original
            // one-process-per-partition tool, which had no prefetch — the
            // effective mode is off regardless of the requested one.
            prefetch: ResolvedPrefetch::Off,
            partial: Vec::new(),
            interrupt: None,
            io_retries: 0,
            prefetch_degraded: false,
            source_tier: "mem",
        })
    }

    fn finish_single_filter(
        &self,
        mut call_set: CallSet,
        team: Option<TeamReport>,
        timeline: Option<Timeline>,
        prefetch: ResolvedPrefetch,
    ) -> CallOutcome {
        let mut filter_reports = Vec::new();
        if let Some(params) = self.filter {
            let report = DynamicFilter::new(params).apply(&mut call_set.records);
            filter_reports.push(report);
        }
        CallOutcome {
            records: call_set.records,
            stats: call_set.stats,
            decode: call_set.decode,
            filter_reports,
            team,
            timeline,
            wall: Duration::ZERO,
            kernel: ultravc_simd::kernels().name,
            prefetch,
            partial: Vec::new(),
            interrupt: None,
            io_retries: 0,
            prefetch_degraded: false,
            source_tier: "mem",
        }
    }
}

/// The result of a driver run.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// Final (filtered, unless the driver had no filter) records.
    pub records: Vec<VcfRecord>,
    /// Decision-path counters (pre-filter).
    pub stats: CallStats,
    /// Block-decode accounting summed over workers. Each worker reports
    /// only decodes it performed itself, so with the shared cache this is
    /// the true whole-run decode work (boundary blocks counted once); in
    /// legacy mode it includes the per-worker re-decodes.
    pub decode: DecodeStats,
    /// One report per filter application (script mode: per partition plus
    /// the merged pass; others: one).
    pub filter_reports: Vec<FilterReport>,
    /// Team accounting for parallel modes.
    pub team: Option<TeamReport>,
    /// Per-thread trace (OpenMP mode with `trace: true`).
    pub timeline: Option<Timeline>,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Name of the SIMD kernel backend the run dispatched to
    /// (`"scalar"`, `"avx2"`, `"neon"`) — fixed per process, reported so
    /// perf numbers are attributable to a code path.
    pub kernel: &'static str,
    /// The prefetch mode that actually engaged (`Auto` settled against
    /// `ULTRAVC_PREFETCH`; always off for script mode, legacy ingest,
    /// and backings with nothing to hint or read ahead — e.g. an
    /// in-memory source). Reported so I/O numbers are attributable to a
    /// scheduling mode, like `kernel` is for compute.
    pub prefetch: ResolvedPrefetch,
    /// Regions that produced **no calls** because their chunk failed,
    /// panicked or was skipped after an interruption — supervised OpenMP
    /// runs only; empty means the run completed everywhere. Completed
    /// regions' records are bitwise identical to a fault-free run's.
    pub partial: Vec<RegionError>,
    /// Why the run stopped early, if it did (cancelled / deadline
    /// expired). `None` for runs that ran to completion.
    pub interrupt: Option<Interrupt>,
    /// Transient I/O operations that were retried away by the armed
    /// budget over the whole run (all workers plus the prefetcher).
    pub io_retries: u64,
    /// True when scheduled I/O degraded rather than failed: the
    /// `madvise` hint was refused, or the read-ahead thread died and
    /// workers fell back to demand reads.
    pub prefetch_degraded: bool,
    /// Byte-source tier the run actually read from (`"mem"`, `"mmap"`,
    /// `"stream"`, `"fault"`), reported so failure and perf numbers are
    /// attributable to an I/O path.
    pub source_tier: &'static str,
}

/// Worker body: pileup + test one chunk, attributing time to trace
/// categories. Span granularity is per chunk (one span per category),
/// which keeps recording overhead negligible while preserving the
/// per-thread category totals and timeline shape that Figure 2 shows.
///
/// The [`Category::Decompress`] span covers only decode work this worker
/// **performed** — shared-cache hits cost (and record) nothing — so
/// summing the decompress spans across threads reconstructs the true
/// decode total, fixing the double counting that per-worker boundary-block
/// re-decodes used to inject into the Figure 2 reconstruction.
#[allow(clippy::too_many_arguments)]
fn call_chunk_traced(
    reference: &ReferenceGenome,
    alignments: &BalFile,
    cached: Option<(&Arc<SharedBlockCache>, &ultravc_bamlite::BlockWindow)>,
    start: u32,
    end: u32,
    config: &CallerConfig,
    tester: &ColumnTest,
    scratch: &mut Scratch,
    recorder: Option<&TraceRecorder>,
    thread_id: usize,
) -> Result<CallSet, BalError> {
    let make_iter = || -> PileupIter {
        match cached {
            Some((cache, window)) => pileup_region_windowed(cache, window, config.pileup),
            None => pileup_region(alignments, start, end, config.pileup),
        }
    };
    if recorder.is_none() {
        return crate::caller::drain_pileup(reference, make_iter(), tester, scratch);
    }
    let recorder = recorder.expect("checked");
    let chunk_start = Instant::now();
    let mut d_decode = Duration::ZERO;
    let mut d_iter = Duration::ZERO;
    let mut d_approx = Duration::ZERO;
    let mut d_prob = Duration::ZERO;
    let mut out = CallSet::default();
    let mut iter = make_iter();
    loop {
        let t0 = Instant::now();
        let decode_before = iter.decode_stats().decode_time;
        let column = iter.next();
        let pulled = t0.elapsed();
        // Split the pull between genuine block decoding (timed inside the
        // reader) and column assembly.
        let decoded = iter.decode_stats().decode_time - decode_before;
        d_decode += decoded;
        d_iter += pulled.saturating_sub(decoded);
        let Some(column) = column else { break };
        let t1 = Instant::now();
        let calls_before = out.stats.exact_completed + out.stats.bailed_early;
        if let Some(rec) = examine_column(reference, &column, tester, scratch, &mut out.stats) {
            out.records.push(rec);
        }
        iter.recycle(column);
        let tested = t1.elapsed();
        if out.stats.exact_completed + out.stats.bailed_early > calls_before {
            d_prob += tested;
        } else {
            d_approx += tested;
        }
    }
    if let Some(e) = iter.take_error() {
        // Propagate the pileup's stop reason typed: an interruption stays
        // an interruption (the supervisor classifies it as cancellation,
        // not corruption), a real decode error keeps its diagnosis.
        return Err(e);
    }
    out.decode = iter.decode_stats();
    // Emit the chunk's category spans back-to-back from the chunk start.
    let mut cursor = chunk_start;
    for (cat, dur) in [
        (Category::Decompress, d_decode),
        (Category::BamIter, d_iter),
        (Category::ApproxFilter, d_approx),
        (Category::ProbCompute, d_prob),
    ] {
        if !dur.is_zero() {
            recorder.record(thread_id, cat, cursor, cursor + dur);
            cursor += dur;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::reference::GenomeParams;
    use ultravc_readsim::dataset::DatasetSpec;

    fn setup(depth: f64, seed: u64) -> (ReferenceGenome, BalFile) {
        let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), seed);
        let ds = DatasetSpec::new("t", depth, seed)
            .with_variants(10, 0.02, 0.1)
            .simulate(&reference);
        (reference, ds.alignments)
    }

    #[test]
    fn sequential_and_openmp_agree_exactly() {
        let (reference, alignments) = setup(300.0, 31);
        let seq = CallDriver::sequential()
            .run(&reference, &alignments)
            .unwrap();
        for n_threads in [1, 2, 4] {
            let par = CallDriver::openmp(n_threads)
                .run(&reference, &alignments)
                .unwrap();
            assert_eq!(seq.records, par.records, "n_threads={n_threads}");
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn openmp_schedules_agree() {
        let (reference, alignments) = setup(200.0, 37);
        let mut base = CallDriver::openmp(4);
        let a = base.run(&reference, &alignments).unwrap();
        base.mode = ParallelMode::OpenMp {
            n_threads: 4,
            schedule: Schedule::Static,
            chunk_columns: 50,
        };
        let b = base.run(&reference, &alignments).unwrap();
        base.mode = ParallelMode::OpenMp {
            n_threads: 3,
            schedule: Schedule::Guided { min_chunk: 2 },
            chunk_columns: 17,
        };
        let c = base.run(&reference, &alignments).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.records, c.records);
    }

    #[test]
    fn script_mode_double_filters() {
        let (reference, alignments) = setup(300.0, 41);
        let script = CallDriver::script(4).run(&reference, &alignments).unwrap();
        // 4 partition reports + 1 merged report.
        assert_eq!(script.filter_reports.len(), 5);
        let merged_report = script.filter_reports.last().unwrap();
        // The merged pass examined what survived the partition passes.
        let survivors: usize = script.filter_reports[..4].iter().map(|r| r.passed).sum();
        assert_eq!(merged_report.examined, survivors);
    }

    #[test]
    fn script_mode_can_disagree_with_single_pass() {
        // The bug: thresholds derived from partition-local counts differ
        // from the single-pass threshold. With records spread across
        // partitions, the per-partition thresholds are *looser* (smaller
        // n), so borderline records that a single pass would drop can
        // survive stage 1 — and stage 2's threshold, computed from the
        // already-thinned set, is looser than the single-pass one too.
        let (reference, alignments) = setup(150.0, 43);
        let single = CallDriver::sequential()
            .run(&reference, &alignments)
            .unwrap();
        let script = CallDriver::script(6).run(&reference, &alignments).unwrap();
        // Raw call sets are identical (same tester)...
        assert_eq!(single.stats.calls, script.stats.calls);
        // ...but the thresholds the two pipelines applied differ whenever
        // the partitioning split the records at all.
        let single_thr = single.filter_reports[0].qual_threshold;
        let stage1_thrs: Vec<f64> = script.filter_reports[..script.filter_reports.len() - 1]
            .iter()
            .map(|r| r.qual_threshold)
            .collect();
        assert!(
            stage1_thrs.iter().any(|t| (t - single_thr).abs() > 1e-9),
            "partition thresholds {stage1_thrs:?} all equal single-pass {single_thr}"
        );
    }

    #[test]
    fn trace_produces_figure2_materials() {
        let (reference, alignments) = setup(200.0, 47);
        let mut driver = CallDriver::openmp(3);
        driver.trace = true;
        let out = driver.run(&reference, &alignments).unwrap();
        let timeline = out.timeline.expect("trace requested");
        assert!(timeline.n_threads() >= 1);
        let summary = timeline.summary();
        // The trace must attribute time to iteration and probability work.
        let cats: Vec<Category> = summary.categories.iter().map(|c| c.category).collect();
        assert!(
            cats.contains(&Category::BamIter) || cats.contains(&Category::Decompress),
            "{cats:?}"
        );
        let art = timeline.render_ascii(60);
        assert!(art.contains("legend:"));
        assert!(out.team.is_some());
    }

    #[test]
    fn unfiltered_driver_returns_raw_calls() {
        let (reference, alignments) = setup(250.0, 53);
        let mut driver = CallDriver::sequential();
        driver.filter = None;
        let out = driver.run(&reference, &alignments).unwrap();
        assert!(out.filter_reports.is_empty());
        assert_eq!(out.records.len() as u64, out.stats.calls);
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn shared_cache_decodes_each_block_once() {
        use ultravc_pileup::IngestMode;
        let (reference, alignments) = setup(300.0, 61);
        let n_blocks = alignments.n_blocks() as u64;
        assert!(n_blocks > 1, "need multiple blocks for the boundary case");
        // Small chunks force most blocks to straddle chunk boundaries.
        let mut driver = CallDriver::openmp(4);
        driver.mode = ParallelMode::OpenMp {
            n_threads: 4,
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk_columns: 16,
        };
        driver.config.pileup.ingest = IngestMode::Batch;
        let batch = driver.run(&reference, &alignments).unwrap();
        assert_eq!(
            batch.decode.blocks, n_blocks,
            "cache must decode every block exactly once"
        );
        // The legacy shim re-decodes boundary blocks once per overlapping
        // chunk — the duplicated accounting this PR fixes.
        driver.config.pileup.ingest = IngestMode::Legacy;
        let legacy = driver.run(&reference, &alignments).unwrap();
        assert!(
            legacy.decode.blocks > n_blocks,
            "legacy per-worker readers duplicate boundary decodes \
             ({} blocks decoded for a {}-block file)",
            legacy.decode.blocks,
            n_blocks
        );
        // Same calls either way — the cache must not change results.
        assert_eq!(batch.records, legacy.records);
        assert_eq!(batch.stats, legacy.stats);
    }

    #[test]
    fn decompress_spans_sum_to_true_decode_work() {
        // The Figure-2 reconstruction satellite: per-thread Decompress
        // spans must sum exactly to the decode work the run performed —
        // both durations accumulate from the same per-iterator deltas, so
        // this is an exact equality, not a tolerance check.
        let (reference, alignments) = setup(250.0, 67);
        let mut driver = CallDriver::openmp(3);
        driver.mode = ParallelMode::OpenMp {
            n_threads: 3,
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk_columns: 32,
        };
        // Pinned: the blocks == n_blocks assertion below is the
        // decode-once property of the shared cache, which only the batch
        // path has (the legacy CI leg would otherwise flip Auto).
        driver.config.pileup.ingest = ultravc_pileup::IngestMode::Batch;
        driver.trace = true;
        let out = driver.run(&reference, &alignments).unwrap();
        let timeline = out.timeline.expect("trace requested");
        let decompress_total: Duration = timeline
            .spans()
            .iter()
            .filter(|s| s.category == Category::Decompress)
            .map(|s| s.duration)
            .sum();
        assert_eq!(decompress_total, out.decode.decode_time);
        assert_eq!(out.decode.blocks, alignments.n_blocks() as u64);
    }

    #[test]
    fn sequential_decode_stats_cover_the_file() {
        let (reference, alignments) = setup(200.0, 71);
        let out = CallDriver::sequential()
            .run(&reference, &alignments)
            .unwrap();
        assert_eq!(out.decode.blocks, alignments.n_blocks() as u64);
        assert_eq!(out.decode.records_out, alignments.n_records());
    }

    #[test]
    fn disk_backed_runs_match_memory_in_all_tiers_and_modes() {
        // Tempfile roundtrip through every ByteSource tier: the driver
        // must produce bitwise-identical calls whether the alignments
        // come from memory, an mmap or a streaming descriptor — in
        // sequential, OpenMP (shared cache) and script modes.
        use ultravc_bamlite::SourceTier;
        let (reference, alignments) = setup(250.0, 73);
        let path =
            std::env::temp_dir().join(format!("ultravc-driver-disk-{}.bal", std::process::id()));
        alignments.write_to(&path).unwrap();
        let drivers = [
            CallDriver::sequential(),
            CallDriver::openmp(4),
            CallDriver::script(3),
        ];
        let baselines: Vec<_> = drivers
            .iter()
            .map(|d| d.run(&reference, &alignments).unwrap())
            .collect();
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let disk = ultravc_bamlite::BalFile::open_with(&path, tier).unwrap();
            for (driver, want) in drivers.iter().zip(&baselines) {
                let got = driver.run(&reference, &disk).unwrap();
                assert_eq!(got.records, want.records, "{tier:?} {:?}", driver.mode);
                assert_eq!(got.stats, want.stats, "{tier:?} {:?}", driver.mode);
                assert_eq!(
                    got.decode.blocks, want.decode.blocks,
                    "{tier:?} {:?}: decode-once accounting must not depend on the tier",
                    driver.mode
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_modes_are_bitwise_identical_across_tiers() {
        // The prefetch acceptance invariant: calls, decision counters AND
        // decode totals (blocks / bytes / records — i.e. decode-once) are
        // unchanged by prefetching, on every byte-source tier, in both
        // non-script modes. Only wall time may differ.
        use ultravc_bamlite::SourceTier;
        let (reference, alignments) = setup(250.0, 83);
        let path = std::env::temp_dir().join(format!(
            "ultravc-driver-prefetch-{}.bal",
            std::process::id()
        ));
        alignments.write_to(&path).unwrap();
        // Batch ingest pinned: the effective-mode assertion below expects
        // prefetch to engage, and it reports off under the legacy shim
        // (which the legacy CI leg would otherwise flip Auto to).
        let mut drivers = [CallDriver::sequential(), CallDriver::openmp(4)];
        for d in &mut drivers {
            d.config.pileup.ingest = ultravc_pileup::IngestMode::Batch;
        }
        // Baselines: explicit prefetch OFF on the in-memory file, immune
        // to the ULTRAVC_PREFETCH CI pins.
        let baselines: Vec<_> = drivers
            .iter()
            .map(|d| {
                let mut d = d.clone();
                d.prefetch = PrefetchMode::Off;
                d.run(&reference, &alignments).unwrap()
            })
            .collect();
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let disk = ultravc_bamlite::BalFile::open_with(&path, tier).unwrap();
            for prefetch in [PrefetchMode::Off, PrefetchMode::On, PrefetchMode::Ahead(2)] {
                for (proto, want) in drivers.iter().zip(&baselines) {
                    let mut driver = proto.clone();
                    driver.prefetch = prefetch;
                    let got = driver.run(&reference, &disk).unwrap();
                    let what = format!("{tier:?} {prefetch:?} {:?}", proto.mode);
                    assert_eq!(got.records, want.records, "{what}: calls");
                    assert_eq!(got.stats, want.stats, "{what}: decisions");
                    assert_eq!(got.decode.blocks, want.decode.blocks, "{what}: decode-once");
                    assert_eq!(got.decode.bytes_in, want.decode.bytes_in, "{what}: bytes");
                    assert_eq!(
                        got.decode.records_out, want.decode.records_out,
                        "{what}: records"
                    );
                    // Effective mode: what actually engaged — off on
                    // the in-memory tier (nothing to hint or read
                    // ahead), the resolved request on the stream tier
                    // (read-ahead always engages there), and on the mmap
                    // tier only where the platform issues real hints
                    // (probed with a zero-length advise; false on the
                    // shim's buffered fallback backend).
                    let hints_engage = disk
                        .source()
                        .advise(ultravc_bamlite::Advice::Sequential, 0, 0)
                        .unwrap();
                    let expect_effective = match tier {
                        SourceTier::Mem => ultravc_bamlite::ResolvedPrefetch::Off,
                        SourceTier::Mmap if !hints_engage => ultravc_bamlite::ResolvedPrefetch::Off,
                        _ => prefetch.resolved().unwrap(),
                    };
                    assert_eq!(
                        got.prefetch, expect_effective,
                        "{what}: effective mode reported"
                    );
                }
            }
        }
        // Legacy ingest has no cache to warm: a prefetch request must be
        // reported as (and behave as) off, not claim a mode that never
        // ran.
        let mut legacy = CallDriver::sequential();
        legacy.config.pileup.ingest = ultravc_pileup::IngestMode::Legacy;
        legacy.prefetch = PrefetchMode::On;
        let out = legacy.run(&reference, &alignments).unwrap();
        assert_eq!(out.prefetch, ultravc_bamlite::ResolvedPrefetch::Off);
        assert_eq!(out.records, baselines[0].records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_readahead_engages_on_the_stream_tier() {
        // On the streaming tier with multiple workers, the read-ahead
        // thread must actually win some decodes (the whole point); the
        // run total still covers every block exactly once, so the
        // workers' own share shrinks. We can't observe the split from
        // CallOutcome (by design — the sum is what's exact), so assert
        // engagement via the effective mode + unchanged totals, and the
        // split via a windowed re-run against a prefetched cache.
        use ultravc_bamlite::{IoPlan, SourceTier};
        let (reference, alignments) = setup(300.0, 89);
        let path = std::env::temp_dir().join(format!(
            "ultravc-driver-prefetch-stream-{}.bal",
            std::process::id()
        ));
        alignments.write_to(&path).unwrap();
        let disk = ultravc_bamlite::BalFile::open_with(&path, SourceTier::Stream).unwrap();
        let mut driver = CallDriver::openmp(2);
        // Pinned: read-ahead engages only with the shared cache, which
        // only batch ingest has (the legacy CI leg would otherwise flip
        // Auto and the decode-once count below would not hold).
        driver.config.pileup.ingest = ultravc_pileup::IngestMode::Batch;
        driver.prefetch = PrefetchMode::On;
        let out = driver.run(&reference, &disk).unwrap();
        assert!(out.prefetch.is_on());
        assert_eq!(out.decode.blocks, disk.n_blocks() as u64);
        // Direct split check at the plan level: warm the whole schedule,
        // then consume — consumers decode nothing.
        let end = reference.len() as u32;
        let plan = IoPlan::for_regions(&disk, std::slice::from_ref(&(0..end)));
        let cache = Arc::new(SharedBlockCache::for_plan(disk.clone(), &plan));
        let handle = plan.spawn_readahead(Arc::clone(&cache), usize::MAX);
        let t0 = Instant::now();
        while cache.decoded_blocks() < disk.n_blocks() && t0.elapsed().as_secs() < 10 {
            std::thread::yield_now();
        }
        let prefetched = handle.finish();
        assert!(!prefetched.panicked);
        assert_eq!(prefetched.stats.blocks, disk.n_blocks() as u64);
        let mut iter =
            ultravc_pileup::pileup_region_windowed(&cache, plan.window(0), driver.config.pileup);
        let n_cols = iter.by_ref().count();
        assert!(n_cols > 0);
        assert_eq!(iter.decode_stats().blocks, 0, "consumer decoded nothing");
        assert_eq!(iter.cache_hits(), disk.n_blocks() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_job_script_still_double_filters() {
        // Even with one partition the script pipeline filters twice; the
        // second pass sees fewer records (those that survived), so its
        // threshold is looser and idempotent-drops nothing — matching the
        // real-world observation that the bug surfaces only with >1 job OR
        // borderline records.
        let (reference, alignments) = setup(200.0, 59);
        let script = CallDriver::script(1).run(&reference, &alignments).unwrap();
        assert_eq!(script.filter_reports.len(), 2);
    }
}
