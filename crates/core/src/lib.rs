//! # ultravc-core
//!
//! The paper's contribution: a quality-aware low-frequency SNV caller in
//! the LoFreq mould, accelerated by (1) a Poisson first-pass approximation
//! that skips the exact Poisson-binomial tail computation whenever the
//! column is provably uninteresting, and (2) an OpenMP-style shared-memory
//! parallel driver that replaces the original partition-and-spawn script
//! (and fixes its double-filtering bug).
//!
//! The algorithm per pileup column (the paper's Figure 1b):
//!
//! ```text
//! K ← # non-reference bases            (mismatches)
//! if K = 0                             → no variant, next column
//! if shortcut enabled ∧ depth ≥ 100:
//!     p̂ ← Pr[Pois(Σ pᵢ) ≥ K]           (O(d) screen)
//!     if p̂ ≥ ε + δ                     → no variant, next column  ← the speedup
//! p ← Pr[PoisBin{pᵢ} ≥ K]              (exact DP, with early exit)
//! if p·B < ε                           → call variant (QUAL = −10·log₁₀ p)
//! ```
//!
//! with `ε = 0.05`, `δ = 0.01`, Bonferroni factor `B`, per the paper's
//! defaults. The shortcut can only *suppress* calls relative to exact
//! LoFreq (never add), and on all evaluation datasets it suppresses none —
//! the invariant tested throughout this crate and asserted by the Table I
//! harness.
//!
//! Both stages consume the pileup layer's **quality-binned** column
//! representation: the screen's `λ = Σ pᵢ` is a sum over the quality
//! histogram (`O(1)` in depth) and the exact stage runs the grouped-trial
//! DP over `(probability, multiplicity)` bins (`O(#bins·K²)` instead of
//! `O(d·K)`), with per-worker [`pvalue::Scratch`] buffers making the whole
//! per-column test allocation-free.
//!
//! Modules: [`config`] (tuning surface), [`pvalue`] (the decision engine),
//! [`caller`] (column → VCF record), [`driver`] (sequential / script-mode /
//! OpenMP-mode execution), [`session`] (a reusable driver session for
//! serving region queries), [`supervisor`] (run budgets: deadlines,
//! cancellation, retry policy, per-region failure reports), [`analysis`]
//! (upset intersections, truth grading), [`cachemodel`] (memory traces
//! for the cache experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cachemodel;
pub mod caller;
pub mod config;
pub mod driver;
pub mod pvalue;
pub mod session;
pub mod supervisor;

pub use caller::{call_variants, CallSet, CallStats};
pub use config::{Bonferroni, CallerConfig, PvalueEngine, ShortcutParams};
pub use driver::{CallDriver, CallOutcome, ParallelMode};
pub use pvalue::{ColumnDecision, ColumnTest, Scratch};
pub use session::CallSession;
pub use supervisor::{CancelToken, Interrupt, RegionError, RegionFailure, RunBudget};
