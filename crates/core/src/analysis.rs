//! Call-set analysis: upset intersections (Figure 3) and truth grading.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use ultravc_genome::variant::{Snv, TruthSet};
use ultravc_vcf::VcfRecord;

/// Cross-dataset SNV sharing, as summarized by the paper's Figure 3 upset
/// plot: per-set totals plus the count of SNVs in every *exclusive*
/// combination of sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpsetTable {
    names: Vec<String>,
    sets: Vec<BTreeSet<Snv>>,
}

impl UpsetTable {
    /// Build from named call sets.
    pub fn from_call_sets(names: Vec<String>, call_sets: &[Vec<VcfRecord>]) -> UpsetTable {
        assert_eq!(names.len(), call_sets.len(), "one name per set");
        let sets = call_sets
            .iter()
            .map(|records| records.iter().map(VcfRecord::key).collect())
            .collect();
        UpsetTable { names, sets }
    }

    /// Build from raw SNV sets.
    pub fn from_snv_sets(names: Vec<String>, sets: Vec<BTreeSet<Snv>>) -> UpsetTable {
        assert_eq!(names.len(), sets.len(), "one name per set");
        UpsetTable { names, sets }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Set names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Total SNVs per set (the bottom-left bars of an upset plot).
    pub fn set_sizes(&self) -> Vec<usize> {
        self.sets.iter().map(BTreeSet::len).collect()
    }

    /// SNVs present in **every** set (the paper found exactly 2).
    pub fn shared_by_all(&self) -> usize {
        self.membership_counts()
            .iter()
            .filter(|(_, mask)| mask.count_ones() as usize == self.n_sets())
            .count()
    }

    /// SNVs unique to the given set.
    pub fn unique_to(&self, idx: usize) -> usize {
        let bit = 1u32 << idx;
        self.membership_counts()
            .iter()
            .filter(|(_, mask)| *mask == bit)
            .count()
    }

    /// Exclusive intersection counts: for every non-empty subset of sets
    /// (bitmask over set indices), the number of SNVs present in *exactly*
    /// those sets. Returned sorted by count descending, zero-count
    /// combinations omitted — the columns of an upset plot.
    pub fn exclusive_intersections(&self) -> Vec<(u32, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for (_, mask) in self.membership_counts() {
            *counts.entry(mask).or_default() += 1;
        }
        let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Pairwise intersection sizes (not exclusive): `matrix[i][j] = |Sᵢ ∩
    /// Sⱼ|`. The paper notes the 300 000× and 1 000 000× datasets share
    /// the most for any pair.
    pub fn pairwise_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.n_sets();
        let mut m = vec![vec![0usize; n]; n];
        for i in 0..n {
            for j in 0..n {
                m[i][j] = self.sets[i].intersection(&self.sets[j]).count();
            }
        }
        m
    }

    /// Every SNV with the bitmask of sets containing it.
    fn membership_counts(&self) -> Vec<(Snv, u32)> {
        let mut universe: BTreeSet<Snv> = BTreeSet::new();
        for s in &self.sets {
            universe.extend(s.iter().copied());
        }
        universe
            .into_iter()
            .map(|snv| {
                let mut mask = 0u32;
                for (i, s) in self.sets.iter().enumerate() {
                    if s.contains(&snv) {
                        mask |= 1 << i;
                    }
                }
                (snv, mask)
            })
            .collect()
    }

    /// Text rendering in upset-plot style: one row per set with ●/·
    /// membership dots per combination column, plus counts.
    pub fn render_text(&self) -> String {
        let combos = self.exclusive_intersections();
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12} {:>6} | exclusive intersections\n",
            "set", "total"
        ));
        for (i, name) in self.names.iter().enumerate() {
            out.push_str(&format!("{:>12} {:>6} | ", name, self.sets[i].len()));
            for (mask, _) in &combos {
                out.push(if mask & (1 << i) != 0 { '●' } else { '·' });
                out.push(' ');
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>12} {:>6} | ", "count", ""));
        for (_, count) in &combos {
            out.push_str(&format!("{count} "));
        }
        out.push('\n');
        out
    }
}

/// Sensitivity/precision of a call set against the planted truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grading {
    /// Planted variants recovered (position + alleles match).
    pub true_positives: usize,
    /// Calls not matching any planted variant.
    pub false_positives: usize,
    /// Planted variants missed.
    pub false_negatives: usize,
}

impl Grading {
    /// Recall = TP / (TP + FN).
    pub fn sensitivity(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision = TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Grade calls against a truth set.
pub fn grade(records: &[VcfRecord], truth: &TruthSet) -> Grading {
    let mut tp = 0;
    let mut fp = 0;
    for r in records {
        match truth.at(r.pos) {
            Some(v) if v.snv.alt_base == r.alt_base && v.snv.ref_base == r.ref_base => tp += 1,
            _ => fp += 1,
        }
    }
    Grading {
        true_positives: tp,
        false_positives: fp,
        false_negatives: truth.len() - tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::alphabet::Base;

    fn snv(pos: usize) -> Snv {
        Snv {
            pos,
            ref_base: Base::A,
            alt_base: Base::G,
        }
    }

    fn table(sets: Vec<Vec<usize>>) -> UpsetTable {
        let names = (0..sets.len()).map(|i| format!("s{i}")).collect();
        let sets = sets
            .into_iter()
            .map(|v| v.into_iter().map(snv).collect())
            .collect();
        UpsetTable::from_snv_sets(names, sets)
    }

    #[test]
    fn sizes_and_shared() {
        let t = table(vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]]);
        assert_eq!(t.set_sizes(), vec![3, 3, 3]);
        assert_eq!(t.shared_by_all(), 1); // only 3
        assert_eq!(t.unique_to(0), 1); // only 1
        assert_eq!(t.unique_to(2), 1); // only 5
    }

    #[test]
    fn exclusive_intersections_partition_the_universe() {
        let t = table(vec![vec![1, 2, 3, 10], vec![2, 3, 4], vec![3, 4, 5, 11]]);
        let combos = t.exclusive_intersections();
        let total: usize = combos.iter().map(|(_, c)| c).sum();
        // Universe: {1,2,3,4,5,10,11} = 7 elements.
        assert_eq!(total, 7);
        // mask 0b111 (all three) = {3}.
        let all = combos.iter().find(|(m, _)| *m == 0b111).unwrap();
        assert_eq!(all.1, 1);
        // mask 0b011 (s0∩s1 only) = {2}.
        let pair = combos.iter().find(|(m, _)| *m == 0b011).unwrap();
        assert_eq!(pair.1, 1);
        // No zero-count combos reported.
        assert!(combos.iter().all(|(_, c)| *c > 0));
    }

    #[test]
    fn pairwise_matrix_symmetric_with_diag_sizes() {
        let t = table(vec![vec![1, 2], vec![2, 3], vec![9]]);
        let m = t.pairwise_matrix();
        assert_eq!(m[0][0], 2);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[2][0], 0);
        assert_eq!(m[2][2], 1);
    }

    #[test]
    fn render_has_all_rows() {
        let t = table(vec![vec![1], vec![1, 2]]);
        let text = t.render_text();
        assert!(text.contains("s0"));
        assert!(text.contains("s1"));
        assert!(text.contains('●'));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn grading_counts() {
        use ultravc_genome::variant::TruthVariant;
        use ultravc_vcf::{FilterStatus, Info};
        let mut truth = TruthSet::new();
        truth.insert(TruthVariant {
            snv: Snv {
                pos: 5,
                ref_base: Base::A,
                alt_base: Base::G,
            },
            frequency: 0.05,
        });
        truth.insert(TruthVariant {
            snv: Snv {
                pos: 9,
                ref_base: Base::C,
                alt_base: Base::T,
            },
            frequency: 0.02,
        });
        let rec = |pos: usize, ref_base: Base, alt_base: Base| VcfRecord {
            chrom: "t".to_string(),
            pos,
            ref_base,
            alt_base,
            qual: 50.0,
            filter: FilterStatus::Pass,
            info: Info {
                dp: 100,
                af: 0.05,
                sb: 0.0,
                dp4: (50, 45, 3, 2),
            },
        };
        let calls = vec![
            rec(5, Base::A, Base::G),  // TP
            rec(9, Base::C, Base::A),  // wrong alt: FP
            rec(20, Base::A, Base::G), // FP
        ];
        let g = grade(&calls, &truth);
        assert_eq!(g.true_positives, 1);
        assert_eq!(g.false_positives, 2);
        assert_eq!(g.false_negatives, 1);
        assert!((g.sensitivity() - 0.5).abs() < 1e-12);
        assert!((g.precision() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_everything() {
        let g = grade(&[], &TruthSet::new());
        assert_eq!(g.sensitivity(), 1.0);
        assert_eq!(g.precision(), 1.0);
        let t = table(vec![vec![], vec![]]);
        assert_eq!(t.shared_by_all(), 0);
        assert!(t.exclusive_intersections().is_empty());
    }
}
