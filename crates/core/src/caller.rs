//! Region calling: pileup columns → decisions → VCF records.

use crate::config::CallerConfig;
use crate::pvalue::{ColumnDecision, ColumnTest, Scratch};
use serde::{Deserialize, Serialize};
use ultravc_bamlite::{BalError, BalFile, DecodeStats, SharedBlockCache};
use ultravc_genome::phred::phred_scale_pvalue;
use ultravc_genome::reference::ReferenceGenome;
use ultravc_pileup::{pileup_region, pileup_region_cached, PileupColumn, PileupIter};
use ultravc_stats::binomial::fisher_exact;
use ultravc_sync::Arc;
use ultravc_vcf::{FilterStatus, Info, VcfRecord};

/// Decision-path counters — the raw numbers behind the Figure 1b workflow
/// share reporting and the Table I "identical variant counts" check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallStats {
    /// Covered columns examined.
    pub columns: u64,
    /// Columns with at least one mismatch (entered the test).
    pub mismatch_columns: u64,
    /// Columns the Poisson screen dismissed (the fast path).
    pub skipped_by_approx: u64,
    /// Columns where the exact DP bailed early.
    pub bailed_early: u64,
    /// Columns where the exact computation ran to completion.
    pub exact_completed: u64,
    /// Variant calls made.
    pub calls: u64,
    /// Columns whose pileup hit the depth cap.
    pub truncated_columns: u64,
    /// Σ depth over examined columns.
    pub sum_depth: u64,
    /// Σ distinct quality values over *tested* (mismatch) columns — the
    /// columns the binned kernels actually run on. Depth÷bins is the
    /// compression the binned representation achieves on the hot loop.
    pub sum_distinct_quals: u64,
}

impl CallStats {
    /// Fold another accumulator in (partition merge).
    pub fn merge(&mut self, other: &CallStats) {
        self.columns += other.columns;
        self.mismatch_columns += other.mismatch_columns;
        self.skipped_by_approx += other.skipped_by_approx;
        self.bailed_early += other.bailed_early;
        self.exact_completed += other.exact_completed;
        self.calls += other.calls;
        self.truncated_columns += other.truncated_columns;
        self.sum_depth += other.sum_depth;
        self.sum_distinct_quals += other.sum_distinct_quals;
    }

    /// Fraction of mismatch columns resolved by the approximation screen.
    pub fn skip_fraction(&self) -> f64 {
        if self.mismatch_columns == 0 {
            0.0
        } else {
            self.skipped_by_approx as f64 / self.mismatch_columns as f64
        }
    }

    /// Mean reads per column.
    pub fn mean_depth(&self) -> f64 {
        if self.columns == 0 {
            0.0
        } else {
            self.sum_depth as f64 / self.columns as f64
        }
    }

    /// Mean distinct qualities per tested (mismatch) column — the
    /// working-set width of the binned kernels.
    pub fn mean_distinct_quals(&self) -> f64 {
        if self.mismatch_columns == 0 {
            0.0
        } else {
            self.sum_distinct_quals as f64 / self.mismatch_columns as f64
        }
    }
}

/// The output of a calling run: records in position order plus counters.
#[derive(Debug, Clone, Default)]
pub struct CallSet {
    /// Variant records, position-sorted, unfiltered.
    pub records: Vec<VcfRecord>,
    /// Decision-path counters.
    pub stats: CallStats,
    /// Decode work this region's pileup actually performed. With the
    /// shared block cache, per-partition values sum to the true whole-run
    /// decode cost (each block counted once); the legacy per-worker
    /// readers multiply-count boundary blocks.
    pub decode: DecodeStats,
}

impl CallSet {
    /// Merge a later partition into this one (positions must follow).
    pub fn append(&mut self, mut other: CallSet) {
        debug_assert!(
            self.records
                .last()
                .map(|a| other
                    .records
                    .first()
                    .map(|b| a.pos <= b.pos)
                    .unwrap_or(true))
                .unwrap_or(true),
            "partitions merged out of order"
        );
        self.records.append(&mut other.records);
        self.stats.merge(&other.stats);
        self.decode.merge(&other.decode);
    }
}

/// Call variants across one region with a pre-built tester.
///
/// The tester carries the Bonferroni threshold computed from the *whole
/// run's* column count, so partitioned execution makes identical decisions
/// to sequential execution.
pub fn call_region(
    reference: &ReferenceGenome,
    alignments: &BalFile,
    start: u32,
    end: u32,
    config: &CallerConfig,
    tester: &ColumnTest,
) -> Result<CallSet, BalError> {
    let mut scratch = Scratch::new();
    call_region_with_scratch(
        reference,
        alignments,
        start,
        end,
        config,
        tester,
        &mut scratch,
    )
}

/// [`call_region`] with caller-supplied scratch buffers — the form the
/// parallel driver uses so each worker reuses one [`Scratch`] across every
/// chunk (and column) it processes.
#[allow(clippy::too_many_arguments)]
pub fn call_region_with_scratch(
    reference: &ReferenceGenome,
    alignments: &BalFile,
    start: u32,
    end: u32,
    config: &CallerConfig,
    tester: &ColumnTest,
    scratch: &mut Scratch,
) -> Result<CallSet, BalError> {
    let iter = pileup_region(alignments, start, end, config.pileup);
    drain_pileup(reference, iter, tester, scratch)
}

/// [`call_region_with_scratch`] pulling decoded blocks from a run-scoped
/// [`SharedBlockCache`]: blocks straddling region boundaries are decoded
/// exactly once per run, no matter how many workers' regions overlap them.
#[allow(clippy::too_many_arguments)]
pub fn call_region_cached(
    reference: &ReferenceGenome,
    cache: &Arc<SharedBlockCache>,
    start: u32,
    end: u32,
    config: &CallerConfig,
    tester: &ColumnTest,
    scratch: &mut Scratch,
) -> Result<CallSet, BalError> {
    let iter = pileup_region_cached(cache, start, end, config.pileup);
    drain_pileup(reference, iter, tester, scratch)
}

/// Shared drain loop: test every column of an already-configured pileup
/// iterator, recycling column buffers and folding in decode accounting.
pub(crate) fn drain_pileup(
    reference: &ReferenceGenome,
    mut iter: PileupIter,
    tester: &ColumnTest,
    scratch: &mut Scratch,
) -> Result<CallSet, BalError> {
    let mut out = CallSet::default();
    while let Some(column) = iter.next() {
        let verdict = examine_column(reference, &column, tester, scratch, &mut out.stats);
        if let Some(rec) = verdict {
            out.records.push(rec);
        }
        // Hand the histogram buffer back to the engine's freelist.
        iter.recycle(column);
    }
    // Propagate the iterator's stored error *typed*: an interruption must
    // stay `Interrupted` (the supervisor reports it as cancellation, not
    // data failure) and an exhausted transient must stay `Io`.
    if let Some(e) = iter.take_error() {
        return Err(e);
    }
    out.decode = iter.decode_stats();
    Ok(out)
}

/// Test one column, update counters, build a record when a call fires.
pub(crate) fn examine_column(
    reference: &ReferenceGenome,
    column: &PileupColumn,
    tester: &ColumnTest,
    scratch: &mut Scratch,
    stats: &mut CallStats,
) -> Option<VcfRecord> {
    stats.columns += 1;
    if column.truncated() {
        stats.truncated_columns += 1;
    }
    stats.sum_depth += column.depth() as u64;
    let ref_base = reference.base(column.pos as usize);
    let decision = tester.test(column, ref_base, scratch);
    if !matches!(decision, ColumnDecision::NoMismatch) {
        // `test` filled the bins for every mismatch column; reading their
        // count here avoids a second histogram scan.
        stats.sum_distinct_quals += scratch.bins.len() as u64;
    }
    match decision {
        ColumnDecision::NoMismatch => None,
        ColumnDecision::SkippedByApprox { .. } => {
            stats.mismatch_columns += 1;
            stats.skipped_by_approx += 1;
            None
        }
        ColumnDecision::BailedEarly { .. } => {
            stats.mismatch_columns += 1;
            stats.bailed_early += 1;
            None
        }
        ColumnDecision::NotSignificant { .. } => {
            stats.mismatch_columns += 1;
            stats.exact_completed += 1;
            None
        }
        ColumnDecision::Called { pvalue } => {
            stats.mismatch_columns += 1;
            stats.exact_completed += 1;
            stats.calls += 1;
            Some(build_record(reference, column, ref_base, pvalue))
        }
    }
}

fn build_record(
    reference: &ReferenceGenome,
    column: &PileupColumn,
    ref_base: ultravc_genome::alphabet::Base,
    pvalue: f64,
) -> VcfRecord {
    let (alt_base, alt_count) = column
        .top_alt(ref_base)
        .expect("a call implies at least one mismatch");
    let depth = column.depth() as u32;
    let (ref_fwd, ref_rev) = column.strand_counts(ref_base);
    let (alt_fwd, alt_rev) = column.strand_counts(alt_base);
    let sb = fisher_exact(
        alt_fwd as u64,
        alt_rev as u64,
        ref_fwd as u64,
        ref_rev as u64,
    )
    .two_sided;
    VcfRecord {
        chrom: reference.name.clone(),
        pos: column.pos as usize,
        ref_base,
        alt_base,
        qual: phred_scale_pvalue(pvalue),
        filter: FilterStatus::Unfiltered,
        info: Info {
            dp: depth,
            af: alt_count as f64 / depth.max(1) as f64,
            sb: phred_scale_pvalue(sb),
            dp4: (ref_fwd, ref_rev, alt_fwd, alt_rev),
        },
    }
}

/// Call variants across the whole reference, sequentially, unfiltered.
///
/// This is the library's front door for simple uses; the parallel and
/// filtered paths live in [`crate::driver`].
pub fn call_variants(
    reference: &ReferenceGenome,
    alignments: &BalFile,
    config: &CallerConfig,
) -> Result<CallSet, BalError> {
    let tester = ColumnTest::new(config, reference.len());
    call_region(
        reference,
        alignments,
        0,
        reference.len() as u32,
        config,
        &tester,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::reference::GenomeParams;
    use ultravc_genome::variant::TruthSet;
    use ultravc_readsim::dataset::DatasetSpec;
    use ultravc_stats::rng::Rng;

    fn setup(depth: f64, n_variants: usize, seed: u64) -> (ReferenceGenome, BalFile, TruthSet) {
        let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), seed);
        let spec = DatasetSpec::new("t", depth, seed).with_variants(n_variants, 0.02, 0.08);
        let ds = spec.simulate(&reference);
        (reference, ds.alignments, ds.truth)
    }

    #[test]
    fn recovers_planted_variants() {
        let (reference, alignments, truth) = setup(400.0, 8, 11);
        let calls = call_variants(&reference, &alignments, &CallerConfig::default()).unwrap();
        // Every planted variant at ≥2 % frequency and 400× depth should be
        // found; a few extra marginal calls are acceptable pre-filter.
        let called: std::collections::HashSet<usize> =
            calls.records.iter().map(|r| r.pos).collect();
        let mut missed = 0;
        for v in &truth {
            if !called.contains(&v.snv.pos) {
                missed += 1;
            }
        }
        assert_eq!(
            missed,
            0,
            "missed {missed} of {} planted variants",
            truth.len()
        );
        assert!(calls.stats.calls as usize >= truth.len());
        // Alt alleles match the planted ones.
        for v in &truth {
            let rec = calls.records.iter().find(|r| r.pos == v.snv.pos).unwrap();
            assert_eq!(rec.alt_base, v.snv.alt_base, "at {}", v.snv);
            assert!((rec.info.af - v.frequency).abs() < 0.05);
        }
    }

    #[test]
    fn no_variants_no_calls_mostly() {
        let (reference, alignments, _) = setup(200.0, 0, 13);
        let calls = call_variants(&reference, &alignments, &CallerConfig::default()).unwrap();
        // With Bonferroni correction, pure-error data yields ~0 calls.
        assert!(
            calls.stats.calls <= 1,
            "unexpected calls on null data: {}",
            calls.stats.calls
        );
        assert!(calls.stats.columns >= 700, "most columns covered");
    }

    #[test]
    fn improved_equals_original_calls() {
        // The paper's headline safety result: identical call sets.
        let (reference, alignments, _) = setup(300.0, 10, 17);
        let orig = call_variants(&reference, &alignments, &CallerConfig::original()).unwrap();
        let imp = call_variants(&reference, &alignments, &CallerConfig::improved()).unwrap();
        assert_eq!(orig.records, imp.records);
        assert_eq!(orig.stats.calls, imp.stats.calls);
        // And the improved one actually used the fast path.
        assert!(imp.stats.skipped_by_approx > 0, "{:?}", imp.stats);
        assert_eq!(orig.stats.skipped_by_approx, 0);
    }

    #[test]
    fn stats_partition_decision_paths() {
        let (reference, alignments, _) = setup(300.0, 6, 19);
        let calls = call_variants(&reference, &alignments, &CallerConfig::default()).unwrap();
        let s = calls.stats;
        assert_eq!(
            s.mismatch_columns,
            s.skipped_by_approx + s.bailed_early + s.exact_completed,
            "decision paths must partition mismatch columns: {s:?}"
        );
        assert!(s.columns >= s.mismatch_columns);
        assert_eq!(s.calls, calls.records.len() as u64);
        assert!(
            s.skip_fraction() > 0.5,
            "deep data should mostly skip: {s:?}"
        );
    }

    #[test]
    fn call_region_splits_cleanly() {
        let (reference, alignments, _) = setup(250.0, 8, 23);
        let config = CallerConfig::default();
        let tester = ColumnTest::new(&config, reference.len());
        let whole = call_region(
            &reference,
            &alignments,
            0,
            reference.len() as u32,
            &config,
            &tester,
        )
        .unwrap();
        let mut merged = call_region(&reference, &alignments, 0, 400, &config, &tester).unwrap();
        merged.append(
            call_region(
                &reference,
                &alignments,
                400,
                reference.len() as u32,
                &config,
                &tester,
            )
            .unwrap(),
        );
        assert_eq!(whole.records, merged.records);
        assert_eq!(whole.stats, merged.stats);
    }

    #[test]
    fn record_fields_are_consistent() {
        let (reference, alignments, _) = setup(500.0, 5, 29);
        let calls = call_variants(&reference, &alignments, &CallerConfig::default()).unwrap();
        assert!(!calls.records.is_empty());
        for r in &calls.records {
            let (rf, rr, af_, ar) = r.info.dp4;
            assert!(rf + rr + af_ + ar <= r.info.dp, "DP4 exceeds depth");
            assert!(r.info.af > 0.0 && r.info.af <= 1.0);
            assert!(r.qual > 0.0);
            assert_ne!(r.ref_base, r.alt_base);
            assert_eq!(reference.base(r.pos), r.ref_base);
        }
        // Position-sorted.
        for w in calls.records.windows(2) {
            assert!(w[0].pos < w[1].pos);
        }
    }

    #[test]
    fn subset_safety_property_randomized() {
        // Improved ⊆ original on arbitrary data — even data engineered to
        // sit near the threshold.
        let mut rng = Rng::new(99);
        for trial in 0..3 {
            let seed = rng.next_u64();
            let (reference, alignments, _) = setup(150.0, 15, seed);
            let orig = call_variants(&reference, &alignments, &CallerConfig::original()).unwrap();
            let imp = call_variants(&reference, &alignments, &CallerConfig::improved()).unwrap();
            let orig_keys: std::collections::HashSet<_> =
                orig.records.iter().map(|r| r.key()).collect();
            for r in &imp.records {
                assert!(
                    orig_keys.contains(&r.key()),
                    "trial {trial}: improved called {} which original did not",
                    r.key()
                );
            }
        }
    }
}
