//! The run supervisor: deadlines, cancellation, retry policy and
//! per-region failure reporting for [`crate::CallDriver`] runs.
//!
//! A [`RunBudget`] is the driver-level statement of supervision policy —
//! *relative* deadline, retry/backoff parameters, and a shareable
//! [`CancelToken`]. At run start the driver [`arm`](RunBudget::arm)s it
//! into a [`IoBudget`] (deadline anchored to that instant) and attaches
//! it to its [`ultravc_bamlite::BalFile`] clone, so every payload read
//! this run issues — worker demand reads, the prefetch thread, the
//! sequential path — retries transients with capped exponential backoff
//! and observes cancellation/deadline promptly. The default driver
//! budget is [`RunBudget::unbounded`]: no deadline, never cancelled,
//! retries armed — supervision as a safety net with nothing to trip it.
//!
//! Failures that survive the retry layer are **contained per region**
//! rather than aborting the run: the OpenMP driver runs its chunks under
//! [`ultravc_parfor::parallel_for_supervised`], converts each failed,
//! panicked or skipped chunk into a [`RegionError`], and returns a
//! *partial* [`crate::CallOutcome`] — completed regions' calls (bitwise
//! identical to a fault-free run), failed regions itemized in
//! [`partial`](crate::CallOutcome::partial).

use std::ops::Range;
use std::time::{Duration, Instant};

pub use ultravc_bamlite::{CancelToken, Interrupt, IoBudget};

/// Driver-level supervision policy: a *relative* deadline plus the retry
/// and cancellation parameters a run is armed with. Cloning shares the
/// cancel token (cancel once, every clone's runs observe it) but nothing
/// else — each `run` call arms its own deadline and retry counter.
#[derive(Debug, Clone)]
pub struct RunBudget {
    /// Wall-clock allowance for one run, measured from `run()` entry.
    /// `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Transient-I/O retries per operation before the error escalates.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// External cancellation signal, shared across clones.
    pub cancel: CancelToken,
}

impl RunBudget {
    /// No deadline, never cancelled (unless the token is), default
    /// retry/backoff parameters. The driver default.
    pub fn unbounded() -> RunBudget {
        RunBudget {
            deadline: None,
            max_retries: IoBudget::DEFAULT_MAX_RETRIES,
            backoff: IoBudget::DEFAULT_BACKOFF_BASE,
            backoff_cap: IoBudget::DEFAULT_BACKOFF_CAP,
            cancel: CancelToken::new(),
        }
    }

    /// An otherwise-default budget that expires `deadline` after the run
    /// starts.
    pub fn with_deadline(deadline: Duration) -> RunBudget {
        RunBudget {
            deadline: Some(deadline),
            ..RunBudget::unbounded()
        }
    }

    /// Check the policy is coherent before arming. A zero-duration
    /// deadline would expire the instant the run starts — every run
    /// would come back trivially partial with nothing attempted — so it
    /// is rejected here with a clear message instead of armed. (Arming
    /// itself stays permissive: [`arm`](RunBudget::arm) is also used to
    /// construct already-expired budgets in tests.) The driver calls
    /// this at run entry; front ends should call it at parse time so
    /// the error points at the flag, not the run.
    pub fn validate(&self) -> Result<(), String> {
        if self.deadline == Some(Duration::ZERO) {
            return Err(
                "deadline must be positive: a zero deadline expires before the run starts"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Arm the budget for one run starting now: the relative deadline
    /// becomes an absolute instant, the retry counter starts at zero, and
    /// the cancel token is shared with this policy (and every clone).
    pub fn arm(&self) -> IoBudget {
        IoBudget::new(
            self.deadline.map(|d| Instant::now() + d),
            self.max_retries,
            self.backoff,
            self.backoff_cap,
            self.cancel.clone(),
        )
    }
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget::unbounded()
    }
}

/// Why one region of a partial run produced no calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionFailure {
    /// The worker panicked on this region; the payload is the contained
    /// panic message.
    Panic(String),
    /// The region failed with a real error (rendered) — corrupt bytes, or
    /// a transient that exhausted its retries.
    Error(String),
    /// The run was interrupted before (or while) this region ran.
    Cancelled(Interrupt),
}

impl std::fmt::Display for RegionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionFailure::Panic(msg) => write!(f, "worker panic: {msg}"),
            RegionFailure::Error(msg) => write!(f, "{msg}"),
            RegionFailure::Cancelled(why) => write!(f, "{why}"),
        }
    }
}

/// One failed region of a partial run: which columns produced no calls,
/// and why. Regions absent from the list completed normally — their calls
/// are in the outcome, bitwise identical to a fault-free run's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionError {
    /// The genomic column range of the failed chunk.
    pub region: Range<u32>,
    /// What happened to it.
    pub failure: RegionFailure,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}): {}",
            self.region.start, self.region.end, self.failure
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_anchors_the_deadline_and_shares_the_token() {
        let budget = RunBudget::with_deadline(Duration::from_secs(3600));
        let armed = budget.arm();
        assert!(armed.interrupt().is_none(), "far deadline, not cancelled");
        budget.cancel.cancel();
        assert_eq!(armed.interrupt(), Some(Interrupt::Cancelled));
        // A clone shares the token too.
        let clone_armed = budget.clone().arm();
        assert_eq!(clone_armed.interrupt(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_promptly() {
        let budget = RunBudget::with_deadline(Duration::ZERO);
        let armed = budget.arm();
        assert_eq!(armed.interrupt(), Some(Interrupt::DeadlineExpired));
        assert!(RunBudget::unbounded().arm().interrupt().is_none());
    }

    #[test]
    fn zero_deadline_fails_validation_but_positive_passes() {
        assert!(RunBudget::with_deadline(Duration::ZERO).validate().is_err());
        assert!(RunBudget::with_deadline(Duration::from_millis(1))
            .validate()
            .is_ok());
        assert!(RunBudget::unbounded().validate().is_ok());
    }

    #[test]
    fn region_errors_render_for_reports() {
        let e = RegionError {
            region: 128..256,
            failure: RegionFailure::Panic("index out of bounds".into()),
        };
        assert_eq!(
            e.to_string(),
            "[128, 256): worker panic: index out of bounds"
        );
        let c = RegionError {
            region: 0..64,
            failure: RegionFailure::Cancelled(Interrupt::DeadlineExpired),
        };
        assert!(c.to_string().contains("deadline"));
    }
}
