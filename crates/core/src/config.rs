//! Caller configuration.

use serde::{Deserialize, Serialize};
use ultravc_pileup::PileupParams;

/// Which exact tail kernel computes `Pr[X ≥ K]` when a column falls
/// through the screen — the ablation axis of experiment A-4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PvalueEngine {
    /// Pruned DP with LoFreq's early exit (production default). Runs the
    /// grouped-trial binned kernel — `O(#bins·K²)` per column instead of
    /// `O(d·K)` — over the pileup quality histogram.
    PrunedDp,
    /// Full `O(d²)` DP (the recurrence as printed in the paper; reference).
    FullDp,
    /// DFT of the characteristic function (Hong 2013).
    DftCf,
}

/// The approximation shortcut's tuning (§II.A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShortcutParams {
    /// Safety margin above the significance level: skip the exact
    /// computation only when `p̂ ≥ ε + delta`. Paper default 0.01, chosen
    /// "intentionally conservative".
    pub delta: f64,
    /// Minimum column depth for the shortcut. Below this the Poisson error
    /// bound is weak and the pruned DP fits in cache anyway; paper uses
    /// 100.
    pub min_depth: usize,
}

impl Default for ShortcutParams {
    fn default() -> Self {
        ShortcutParams {
            delta: 0.01,
            min_depth: 100,
        }
    }
}

/// Multiple-testing correction for the per-column significance threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bonferroni {
    /// Correct by the number of columns in the called region × 3 possible
    /// alternate alleles — LoFreq's "dynamic" default.
    Auto,
    /// A fixed factor.
    Fixed(f64),
    /// No correction (each column tested at raw `ε`).
    None,
}

impl Bonferroni {
    /// The factor for a region of `n_columns`.
    pub fn factor(&self, n_columns: usize) -> f64 {
        match self {
            Bonferroni::Auto => (n_columns as f64 * 3.0).max(1.0),
            Bonferroni::Fixed(f) => f.max(1.0),
            Bonferroni::None => 1.0,
        }
    }
}

/// Full caller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallerConfig {
    /// Significance level `ε` (paper default 0.05).
    pub sig_level: f64,
    /// Multiple-testing correction.
    pub bonferroni: Bonferroni,
    /// The approximation shortcut; `None` reproduces *original* LoFreq.
    pub shortcut: Option<ShortcutParams>,
    /// Exact-kernel choice.
    pub engine: PvalueEngine,
    /// Pileup filters and depth cap.
    #[serde(skip, default)]
    pub pileup: PileupParams,
    /// Use the exact DP's early-exit optimization (LoFreq has it; turning
    /// it off isolates the shortcut's contribution in ablations).
    pub early_exit: bool,
}

impl Default for CallerConfig {
    fn default() -> Self {
        CallerConfig {
            sig_level: 0.05,
            bonferroni: Bonferroni::Auto,
            shortcut: Some(ShortcutParams::default()),
            engine: PvalueEngine::PrunedDp,
            pileup: PileupParams::default(),
            early_exit: true,
        }
    }
}

impl CallerConfig {
    /// Original LoFreq: no approximation shortcut, early exit on.
    pub fn original() -> CallerConfig {
        CallerConfig {
            shortcut: None,
            ..CallerConfig::default()
        }
    }

    /// The improved caller (the paper's contribution) — same as `default`.
    pub fn improved() -> CallerConfig {
        CallerConfig::default()
    }

    /// The per-column significance threshold for a region of `n_columns`:
    /// `ε / B`.
    pub fn column_threshold(&self, n_columns: usize) -> f64 {
        self.sig_level / self.bonferroni.factor(n_columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_factors() {
        assert_eq!(Bonferroni::Auto.factor(1_000), 3_000.0);
        assert_eq!(Bonferroni::Auto.factor(0), 1.0);
        assert_eq!(Bonferroni::Fixed(42.0).factor(9), 42.0);
        assert_eq!(Bonferroni::Fixed(0.5).factor(9), 1.0, "clamped to ≥ 1");
        assert_eq!(Bonferroni::None.factor(1_000_000), 1.0);
    }

    #[test]
    fn presets_differ_only_in_shortcut() {
        let orig = CallerConfig::original();
        let imp = CallerConfig::improved();
        assert!(orig.shortcut.is_none());
        assert!(imp.shortcut.is_some());
        assert_eq!(orig.sig_level, imp.sig_level);
        assert_eq!(orig.engine, imp.engine);
    }

    #[test]
    fn column_threshold_math() {
        let cfg = CallerConfig {
            bonferroni: Bonferroni::Fixed(100.0),
            ..CallerConfig::default()
        };
        assert!((cfg.column_threshold(123) - 0.0005).abs() < 1e-12);
        let raw = CallerConfig {
            bonferroni: Bonferroni::None,
            ..CallerConfig::default()
        };
        assert_eq!(raw.column_threshold(123), 0.05);
    }

    #[test]
    fn shortcut_defaults_match_paper() {
        let s = ShortcutParams::default();
        assert_eq!(s.delta, 0.01);
        assert_eq!(s.min_depth, 100);
        assert_eq!(CallerConfig::default().sig_level, 0.05);
    }
}
