//! The per-column decision engine — the paper's Figure 1b as code.

use crate::config::{CallerConfig, PvalueEngine};
use serde::{Deserialize, Serialize};
use ultravc_genome::alphabet::Base;
use ultravc_pileup::{PileupColumn, QualityBins};
use ultravc_stats::approx::poisson_tail_from_lambda;
use ultravc_stats::poisson_binomial::{
    BinnedTailScratch, PoissonBinomial, TailBudget, TailOutcome,
};

/// Reusable per-worker buffers for the binned calling path: the quality-bin
/// view of the column under test plus the grouped-trial DP state. One
/// `Scratch` lives per worker thread (or per sequential run) and is reused
/// across every column it tests, so the production path performs **zero
/// per-column heap allocations** — the working set is the fixed histogram,
/// ~100 bins, and a `K`-sized DP vector.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// After [`ColumnTest::test`] returns a non-`NoMismatch` decision,
    /// holds the tested column's quality bins (the caller reads its length
    /// for the bins-per-column statistic without re-scanning the
    /// histogram).
    pub(crate) bins: QualityBins,
    dp: BinnedTailScratch,
}

impl Scratch {
    /// Fresh scratch; buffers grow to the worker's high-water column.
    pub fn new() -> Scratch {
        Scratch::default()
    }
}

/// How a column's test concluded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ColumnDecision {
    /// No non-reference bases: nothing to test.
    NoMismatch,
    /// The `O(d)` Poisson screen proved the column uninteresting
    /// (`p̂ ≥ ε + δ`); the exact computation was skipped. The speedup path.
    SkippedByApprox {
        /// The approximate p-value.
        p_hat: f64,
    },
    /// The exact DP bailed early once its running tail crossed the
    /// significance threshold (LoFreq's pre-existing optimization).
    BailedEarly {
        /// Certified lower bound on the p-value at the bail point.
        lower_bound: f64,
    },
    /// Exact p-value computed; significant → variant call.
    Called {
        /// The exact p-value.
        pvalue: f64,
    },
    /// Exact p-value computed; not significant.
    NotSignificant {
        /// The exact p-value.
        pvalue: f64,
    },
}

impl ColumnDecision {
    /// Whether the decision produces a variant call.
    pub fn is_call(&self) -> bool {
        matches!(self, ColumnDecision::Called { .. })
    }

    /// Whether the expensive exact kernel ran (to completion or bail).
    pub fn ran_exact(&self) -> bool {
        !matches!(
            self,
            ColumnDecision::NoMismatch | ColumnDecision::SkippedByApprox { .. }
        )
    }
}

/// The column tester: configuration plus the per-region significance
/// threshold (Bonferroni-corrected), fixed once per run.
#[derive(Debug, Clone, Copy)]
pub struct ColumnTest {
    sig_level: f64,
    threshold: f64,
    shortcut: Option<crate::config::ShortcutParams>,
    engine: PvalueEngine,
    early_exit: bool,
}

impl ColumnTest {
    /// Build from a config and the number of columns the run will test.
    pub fn new(config: &CallerConfig, n_columns: usize) -> ColumnTest {
        ColumnTest {
            sig_level: config.sig_level,
            threshold: config.column_threshold(n_columns),
            shortcut: config.shortcut,
            engine: config.engine,
            early_exit: config.early_exit,
        }
    }

    /// The per-column significance threshold in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Run the Figure 1b workflow on one column.
    ///
    /// `scratch` carries the reusable bin/DP buffers; the production
    /// (`PrunedDp`) path reads the column's quality histogram straight
    /// into them and allocates nothing per column. The reference engines
    /// (`FullDp`, `DftCf`) expand per-trial probabilities — they exist for
    /// ablations, not production.
    pub fn test(
        &self,
        column: &PileupColumn,
        ref_base: Base,
        scratch: &mut Scratch,
    ) -> ColumnDecision {
        let k = column.mismatch_count(ref_base) as usize;
        if k == 0 {
            return ColumnDecision::NoMismatch;
        }
        let depth = column.depth();

        // One histogram aggregation serves both stages: λ for the screen
        // is a sum over the bins (O(#bins), independent of depth) and the
        // exact stage consumes the same bins.
        column.fill_quality_bins(&mut scratch.bins);

        // First-pass screen (the paper's contribution).
        if let Some(sc) = self.shortcut {
            if depth >= sc.min_depth {
                let p_hat = poisson_tail_from_lambda(scratch.bins.lambda(), k);
                if p_hat >= self.sig_level + sc.delta {
                    return ColumnDecision::SkippedByApprox { p_hat };
                }
            }
        }

        // Exact computation.
        let pvalue = match self.engine {
            PvalueEngine::PrunedDp => {
                let budget = if self.early_exit {
                    // Any tail above the *uncorrected* sig level can never
                    // be significant after correction, so bail there.
                    TailBudget {
                        bail_above: self.sig_level,
                    }
                } else {
                    TailBudget {
                        bail_above: f64::INFINITY,
                    }
                };
                match PoissonBinomial::tail_early_exit_binned(
                    scratch.bins.as_slice(),
                    k,
                    budget,
                    &mut scratch.dp,
                ) {
                    TailOutcome::Exact(p) => p,
                    TailOutcome::Bailed { lower_bound, .. } => {
                        return ColumnDecision::BailedEarly { lower_bound };
                    }
                }
            }
            PvalueEngine::FullDp => {
                PoissonBinomial::from_phred_probs(column.error_probs()).tail_full(k)
            }
            PvalueEngine::DftCf => {
                PoissonBinomial::from_phred_probs(column.error_probs()).tail_dft(k)
            }
        };
        if pvalue < self.threshold {
            ColumnDecision::Called { pvalue }
        } else {
            ColumnDecision::NotSignificant { pvalue }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Bonferroni;
    use ultravc_genome::phred::Phred;
    use ultravc_pileup::PileupEntry;

    fn column(n_ref: usize, n_alt: usize, q: u8) -> PileupColumn {
        let mut col = PileupColumn::new(0);
        for i in 0..n_ref {
            col.push(PileupEntry {
                base: Base::A,
                qual: Phred::new(q),
                reverse: i % 2 == 0,
            });
        }
        for i in 0..n_alt {
            col.push(PileupEntry {
                base: Base::G,
                qual: Phred::new(q),
                reverse: i % 2 == 0,
            });
        }
        col
    }

    fn test_with(config: &CallerConfig, col: &PileupColumn) -> ColumnDecision {
        ColumnTest::new(config, 1_000).test(col, Base::A, &mut Scratch::new())
    }

    #[test]
    fn pure_reference_column_short_circuits() {
        let cfg = CallerConfig::default();
        let col = column(500, 0, 30);
        assert_eq!(test_with(&cfg, &col), ColumnDecision::NoMismatch);
    }

    #[test]
    fn obvious_variant_is_called() {
        // 50 alt reads at Q30 among 1000: λ = 1, P[X ≥ 50] astronomically
        // small.
        let cfg = CallerConfig::default();
        let col = column(950, 50, 30);
        let d = test_with(&cfg, &col);
        assert!(d.is_call(), "{d:?}");
        if let ColumnDecision::Called { pvalue } = d {
            assert!(pvalue < 1e-30);
        }
    }

    #[test]
    fn error_level_mismatches_are_skipped_by_approx() {
        // At Q20 (p=0.01), 1000 reads ⇒ λ=10; seeing 8 mismatches is
        // thoroughly unremarkable: p̂ ≈ 0.78 ≥ 0.06 ⇒ skip.
        let cfg = CallerConfig::default();
        let col = column(992, 8, 20);
        match test_with(&cfg, &col) {
            ColumnDecision::SkippedByApprox { p_hat } => assert!(p_hat > 0.5, "{p_hat}"),
            other => panic!("expected approx skip, got {other:?}"),
        }
    }

    #[test]
    fn original_config_runs_exact_on_same_column() {
        let cfg = CallerConfig::original();
        let col = column(992, 8, 20);
        let d = test_with(&cfg, &col);
        assert!(d.ran_exact());
        assert!(!d.is_call());
        // With early exit on, an unremarkable column bails.
        assert!(matches!(d, ColumnDecision::BailedEarly { .. }), "{d:?}");
    }

    #[test]
    fn shallow_columns_bypass_the_shortcut() {
        // depth 50 < min_depth 100: the screen must not fire even though
        // p̂ would be large.
        let cfg = CallerConfig::default();
        let col = column(48, 2, 20);
        let d = test_with(&cfg, &col);
        assert!(d.ran_exact(), "{d:?}");
    }

    #[test]
    fn skip_is_safe_near_threshold() {
        // The safety property of δ: whenever the screen skips, the exact
        // p-value is indeed above ε. Sweep K to cover the decision
        // boundary at Q20/Q30 mixes.
        let cfg = CallerConfig {
            bonferroni: Bonferroni::None,
            ..CallerConfig::default()
        };
        let mut scratch = Scratch::new();
        for q in [20u8, 30] {
            for k in 1..40usize {
                let col = column(2_000 - k, k, q);
                let tester = ColumnTest::new(&cfg, 1);
                if let ColumnDecision::SkippedByApprox { .. } =
                    tester.test(&col, Base::A, &mut scratch)
                {
                    // Exact must agree it's not significant at ε.
                    let probs = col.error_probs();
                    let pb = PoissonBinomial::new(probs).unwrap();
                    let exact = pb.tail_pruned(k);
                    assert!(
                        exact > cfg.sig_level,
                        "q={q} k={k}: skipped but exact p = {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn engines_agree_on_calls() {
        for engine in [
            PvalueEngine::PrunedDp,
            PvalueEngine::FullDp,
            PvalueEngine::DftCf,
        ] {
            let cfg = CallerConfig {
                engine,
                shortcut: None,
                early_exit: false,
                ..CallerConfig::default()
            };
            let col = column(970, 30, 25);
            let d = test_with(&cfg, &col);
            match d {
                ColumnDecision::Called { pvalue } => {
                    assert!(pvalue < 1e-10, "{engine:?}: {pvalue}")
                }
                other => panic!("{engine:?} failed to call: {other:?}"),
            }
        }
    }

    #[test]
    fn early_exit_toggle_changes_outcome_kind_not_calls() {
        let col = column(500, 6, 20); // λ = 5.06, K=6 — unremarkable
        let with = CallerConfig {
            shortcut: None,
            early_exit: true,
            ..CallerConfig::default()
        };
        let without = CallerConfig {
            shortcut: None,
            early_exit: false,
            ..CallerConfig::default()
        };
        let d1 = test_with(&with, &col);
        let d2 = test_with(&without, &col);
        assert!(!d1.is_call() && !d2.is_call());
        assert!(matches!(d1, ColumnDecision::BailedEarly { .. }));
        assert!(matches!(d2, ColumnDecision::NotSignificant { .. }));
    }

    #[test]
    fn bonferroni_tightens_threshold() {
        // A marginal variant: significant uncorrected, not after ×3000.
        let col = column(995, 5, 20); // λ ≈ 10 … K=5 is below the mean; pick stronger
        let col2 = column(1_000, 9, 30); // λ ≈ 1.009, K=9: p ≈ 1e-7
        let _ = col;
        let loose = CallerConfig {
            bonferroni: Bonferroni::None,
            shortcut: None,
            ..CallerConfig::default()
        };
        let strict = CallerConfig {
            bonferroni: Bonferroni::Fixed(1e9),
            shortcut: None,
            ..CallerConfig::default()
        };
        assert!(test_with(&loose, &col2).is_call());
        assert!(!test_with(&strict, &col2).is_call());
    }

    #[test]
    fn decision_predicates() {
        assert!(ColumnDecision::Called { pvalue: 0.01 }.is_call());
        assert!(!ColumnDecision::NoMismatch.is_call());
        assert!(!ColumnDecision::NoMismatch.ran_exact());
        assert!(!ColumnDecision::SkippedByApprox { p_hat: 0.5 }.ran_exact());
        assert!(ColumnDecision::BailedEarly { lower_bound: 0.1 }.ran_exact());
        assert!(ColumnDecision::NotSignificant { pvalue: 0.5 }.ran_exact());
    }
}
