//! End-to-end supervision tests: seeded fault plans injected under the
//! real ingest→call pipeline, across byte-source tiers, execution modes
//! and prefetch settings.
//!
//! The contract under test (the crate's failure model):
//!
//! * **Transient** faults (EIO, EINTR, short reads) are retried away by
//!   the armed [`RunBudget`] and are *invisible* — the outcome is bitwise
//!   identical to a fault-free run, only `io_retries` records they
//!   happened.
//! * **Fatal** faults (dead device, truncated file) surface as typed
//!   errors: sequential runs return `Err`, supervised OpenMP runs contain
//!   them per chunk and return a *partial* outcome whose completed
//!   regions are bitwise identical to the fault-free baseline.
//! * **Interruptions** (cancel, deadline) drain the run promptly and are
//!   reported on the outcome, never as panics or hangs.
//! * No scenario leaks a thread.

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use ultravc_bamlite::{BalError, BalFile, FaultPlan, SourceTier};
use ultravc_core::driver::{CallDriver, CallOutcome, ParallelMode, PrefetchMode};
use ultravc_core::{Interrupt, RegionFailure, RunBudget};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_parfor::Schedule;
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_vcf::VcfRecord;

/// The shared scenario: one tiny ultra-deep dataset written to disk once,
/// reopened per test through whichever tier the test pins.
fn scenario() -> &'static (ReferenceGenome, PathBuf) {
    static SCENARIO: OnceLock<(ReferenceGenome, PathBuf)> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::tiny(), 2021);
        let ds = DatasetSpec::new("fault", 300.0, 2021)
            .with_variants(8, 0.02, 0.1)
            .simulate(&reference);
        let path = std::env::temp_dir().join(format!(
            "ultravc_fault_supervisor_{}.bal",
            std::process::id()
        ));
        ds.alignments.write_to(&path).unwrap();
        (reference, path)
    })
}

fn open(tier: SourceTier) -> BalFile {
    let (_, path) = scenario();
    BalFile::open_with(path, tier).unwrap()
}

/// A filterless driver: identity assertions compare *calls*, and the
/// dynamic filter's thresholds are data-dependent (a partial record set
/// would shift them), so these tests bypass it.
fn driver(mode: ParallelMode, prefetch: PrefetchMode) -> CallDriver {
    let mut d = CallDriver::sequential();
    d.filter = None;
    d.mode = mode;
    d.prefetch = prefetch;
    d
}

fn openmp(n_threads: usize) -> ParallelMode {
    ParallelMode::OpenMp {
        n_threads,
        schedule: Schedule::Dynamic { chunk: 1 },
        chunk_columns: 64,
    }
}

/// Run on a helper thread with a hang watchdog: a supervised run that
/// fails to return is itself a bug this suite exists to catch.
fn run_with_watchdog(
    driver: &CallDriver,
    bal: BalFile,
    timeout: Duration,
) -> Result<CallOutcome, BalError> {
    let (reference, _) = scenario();
    let reference = reference.clone();
    let driver = driver.clone();
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(driver.run(&reference, &bal));
    });
    let result = rx
        .recv_timeout(timeout)
        .unwrap_or_else(|_| panic!("run did not return within {timeout:?} (hang)"));
    worker.join().expect("runner thread");
    result
}

/// Live thread count of this process (includes the test harness's own
/// threads, so assertions compare against a baseline, never an absolute).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(usize::MAX)
}

/// Assert the run left no thread behind. Worker/prefetch threads are
/// joined before `run` returns, but the OS entry can lag a beat — retry
/// until the count settles back to (or below) the baseline.
fn assert_no_leaked_threads(baseline: usize) {
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(5) {
        if live_threads() <= baseline {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "leaked threads: {} live vs baseline {}",
        live_threads(),
        baseline
    );
}

/// The partial-outcome identity check: completed regions' records must be
/// bitwise identical to the fault-free baseline's records in those
/// regions, and failed regions contribute nothing.
fn assert_partial_identity(baseline: &[VcfRecord], outcome: &CallOutcome) {
    let expected: Vec<VcfRecord> = baseline
        .iter()
        .filter(|r| {
            !outcome
                .partial
                .iter()
                .any(|e| (e.region.start as usize..e.region.end as usize).contains(&r.pos))
        })
        .cloned()
        .collect();
    assert_eq!(
        outcome.records, expected,
        "completed regions must match the fault-free baseline exactly"
    );
}

/// Fault-free baseline records (no filter). Sequential and OpenMP agree
/// exactly (pinned elsewhere), so one baseline serves every mode.
fn baseline_records() -> &'static Vec<VcfRecord> {
    static BASELINE: OnceLock<Vec<VcfRecord>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let d = driver(ParallelMode::Sequential, PrefetchMode::Off);
        let out = d.run(&scenario().0, &open(SourceTier::Mem)).unwrap();
        assert!(!out.records.is_empty(), "scenario must produce calls");
        out.records.clone()
    })
}

/// The issue's acceptance scenario: a seeded plan mixing transient EIO,
/// short reads and one worker panic, on the OpenMP driver over the mmap
/// tier with prefetch requested. The run must return a *partial*
/// `CallOutcome` — the panicked region itemized, every completed region
/// bitwise identical to the fault-free baseline — with zero leaked
/// threads.
#[test]
fn mixed_faults_yield_a_partial_outcome_with_identical_survivors() {
    let baseline = baseline_records();
    let threads_before = live_threads();
    let bal = open(SourceTier::Mmap);
    // Panic on the first read of a mid-file block: exactly one chunk's
    // demand decode trips it (one-shot), everything else must survive.
    let mid = bal.index()[bal.n_blocks() / 2].offset;
    let plan = FaultPlan::parse(&format!("seed=11,eio=0.25,short=0.25,panic_at={mid}")).unwrap();
    let d = driver(openmp(4), PrefetchMode::On);
    let out = run_with_watchdog(&d, bal.with_faults(plan), Duration::from_secs(60)).unwrap();

    assert_eq!(out.source_tier, "fault");
    assert_eq!(
        out.partial.len(),
        1,
        "exactly one region fails: {:?}",
        out.partial
    );
    assert!(
        matches!(out.partial[0].failure, RegionFailure::Panic(_)),
        "the failure is the contained panic: {:?}",
        out.partial[0]
    );
    assert!(
        out.interrupt.is_none(),
        "a contained panic is not an interruption"
    );
    assert!(
        out.io_retries > 0,
        "the transient EIO/short faults were retried away"
    );
    assert_partial_identity(baseline, &out);
    assert_no_leaked_threads(threads_before);
}

#[test]
fn transient_faults_are_invisible_under_the_default_budget() {
    let baseline = baseline_records();
    for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
        let plan = FaultPlan::parse("seed=7,eio=0.06,eintr=0.06,short=0.06").unwrap();
        let d = driver(openmp(2), PrefetchMode::Off);
        let out = run_with_watchdog(&d, open(tier).with_faults(plan), Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{tier:?}: transients must be retried away, got {e}"));
        assert!(out.partial.is_empty(), "{tier:?}: no region may fail");
        assert_eq!(
            &out.records, baseline,
            "{tier:?}: outcome must be identical"
        );
        assert!(out.io_retries > 0, "{tier:?}: the faults did fire");
    }
}

#[test]
fn a_dead_device_is_a_typed_error_sequentially_and_a_partial_report_in_parallel() {
    let baseline = baseline_records();
    let plan = FaultPlan::parse("seed=3,fail_after=2048").unwrap();

    // Sequential: the first post-threshold read escalates after retries.
    let seq = driver(ParallelMode::Sequential, PrefetchMode::Off);
    let err = run_with_watchdog(
        &seq,
        open(SourceTier::Stream).with_faults(plan),
        Duration::from_secs(60),
    )
    .expect_err("a permanently dead device cannot produce a complete run");
    assert!(
        !matches!(err, BalError::Interrupted(_)),
        "a dead device is a real error, not an interruption: {err}"
    );

    // OpenMP: contained per chunk; whatever completed before the device
    // died is reported and identical to the baseline.
    let par = driver(openmp(3), PrefetchMode::Off);
    let out = run_with_watchdog(
        &par,
        open(SourceTier::Stream).with_faults(plan),
        Duration::from_secs(60),
    )
    .expect("supervised parallel runs contain fatal faults");
    assert!(!out.partial.is_empty(), "the dead device must fail regions");
    assert!(out
        .partial
        .iter()
        .all(|e| matches!(e.failure, RegionFailure::Error(_))));
    assert_partial_identity(baseline, &out);
}

#[test]
fn cancellation_from_another_thread_returns_promptly_with_completed_regions() {
    let baseline = baseline_records();
    let threads_before = live_threads();
    // 20ms of injected latency per read makes the clean run take seconds
    // — long enough that a 50ms cancel lands mid-run, short enough that a
    // prompt drain is provable.
    let plan = FaultPlan::parse("seed=5,latency_us=20000").unwrap();
    let mut d = driver(openmp(2), PrefetchMode::Off);
    let budget = RunBudget::unbounded();
    let token = budget.cancel.clone();
    d.budget = Some(budget);

    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
        Instant::now()
    });
    let out = run_with_watchdog(
        &d,
        open(SourceTier::Stream).with_faults(plan),
        Duration::from_secs(60),
    )
    .expect("a cancelled OpenMP run reports partially, it does not error");
    let returned = Instant::now();
    let cancelled_at = canceller.join().unwrap();

    assert_eq!(out.interrupt, Some(Interrupt::Cancelled));
    assert!(
        !out.partial.is_empty(),
        "the cancelled tail must be itemized"
    );
    assert!(out
        .partial
        .iter()
        .all(|e| e.failure == RegionFailure::Cancelled(Interrupt::Cancelled)));
    // Promptness: the drain is bounded by in-flight reads (injected
    // latency) plus one backoff slice, far under the clean run's span.
    let drain = returned.saturating_duration_since(cancelled_at);
    assert!(
        drain < Duration::from_secs(2),
        "cancel → return took {drain:?}"
    );
    assert_partial_identity(baseline, &out);
    assert_no_leaked_threads(threads_before);
}

#[test]
fn an_expired_deadline_interrupts_the_run() {
    let baseline = baseline_records();
    let plan = FaultPlan::parse("seed=9,latency_us=20000").unwrap();
    let mut d = driver(openmp(2), PrefetchMode::Off);
    d.budget = Some(RunBudget::with_deadline(Duration::from_millis(50)));
    let t0 = Instant::now();
    let out = run_with_watchdog(
        &d,
        open(SourceTier::Stream).with_faults(plan),
        Duration::from_secs(60),
    )
    .expect("a deadline expiry reports partially, it does not error");
    assert_eq!(out.interrupt, Some(Interrupt::DeadlineExpired));
    assert!(!out.partial.is_empty());
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "expiry must not wait out the full fault schedule"
    );
    assert_partial_identity(baseline, &out);
}

#[test]
fn refused_advise_degrades_the_run_instead_of_failing_it() {
    let baseline = baseline_records();
    let plan = FaultPlan::parse("seed=1,advise_fail=1").unwrap();
    let d = driver(openmp(2), PrefetchMode::On);
    let out = run_with_watchdog(
        &d,
        open(SourceTier::Mmap).with_faults(plan),
        Duration::from_secs(60),
    )
    .expect("a refused madvise must not fail the run");
    assert!(out.prefetch_degraded, "the lost fast path is recorded");
    assert!(out.partial.is_empty());
    assert_eq!(&out.records, baseline);
}

/// Strategy for a random (but printable and replayable) fault plan.
/// Bit-flips are excluded: silent corruption deliberately breaks the
/// bitwise-identity contract the other classes must uphold (its own
/// behaviour is pinned in `ultravc-bamlite`'s fault tests).
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::sample::select(vec![0.0, 0.04, 0.1]),
        prop::sample::select(vec![0.0, 0.04, 0.1]),
        prop::sample::select(vec![0.0, 0.04, 0.1]),
        prop::sample::select(vec![None, Some(1u64 << 11), Some(1 << 14)]),
        prop::sample::select(vec![None, Some(1usize << 12)]),
    )
        .prop_map(
            |(seed, eio, eintr, short, fail_after, truncate_at)| FaultPlan {
                seed,
                eio,
                eintr,
                short,
                fail_after,
                truncate_at,
                ..FaultPlan::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The robustness sweep: random fault plans across every tier,
    /// execution mode and prefetch setting either (a) complete bitwise
    /// identical to the fault-free baseline, (b) fail with a clean typed
    /// error (sequential), or (c) return a partial report whose completed
    /// regions are bitwise identical — and never panic, hang or leak a
    /// thread.
    #[test]
    fn random_fault_plans_never_panic_hang_leak_or_corrupt(
        plan in plan_strategy(),
        tier_ix in 0usize..3,
        parallel in any::<bool>(),
        prefetch_on in any::<bool>(),
    ) {
        let baseline = baseline_records();
        let threads_before = live_threads();
        let tier = [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream][tier_ix];
        let mode = if parallel { openmp(3) } else { ParallelMode::Sequential };
        let prefetch = if prefetch_on { PrefetchMode::On } else { PrefetchMode::Off };
        let d = driver(mode, prefetch);
        let result = run_with_watchdog(
            &d,
            open(tier).with_faults(plan),
            Duration::from_secs(60),
        );
        match result {
            Ok(out) => {
                // Complete or partial — either way the surviving regions
                // are exactly the baseline's.
                prop_assert!(parallel || out.partial.is_empty(),
                    "sequential runs never report partially");
                assert_partial_identity(baseline, &out);
                if out.partial.is_empty() {
                    prop_assert_eq!(&out.records, baseline);
                }
            }
            // A typed error is a legitimate outcome of a fatal plan; a
            // panic would have crossed the watchdog thread and failed the
            // test, a hang trips the watchdog itself.
            Err(e) => prop_assert!(
                !matches!(e, BalError::Interrupted(_)),
                "nothing cancels this run, so Interrupted is wrong: {}", e
            ),
        }
        assert_no_leaked_threads(threads_before);
    }
}
