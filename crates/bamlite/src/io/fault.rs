//! Deterministic fault injection for the ingest stack: a seeded,
//! scripted failure tier under any real [`ByteSource`].
//!
//! A [`FaultSource`] wraps a real tier (mem/mmap/stream) and implements
//! the same byte-serving contract while injecting the failure classes
//! the run supervisor must survive:
//!
//! * **transient `EIO`** (`eio=P`) — a probability-`P` device error per
//!   read, retryable ([`crate::BalError::is_transient`]);
//! * **`EINTR`** (`eintr=P`) — a probability-`P` interrupted syscall,
//!   retried for free by [`crate::io::IoBudget::run_io`];
//! * **short reads** (`short=P`) — a probability-`P` partial transfer,
//!   surfaced as a transient `WouldBlock` error the retry layer re-issues
//!   (the real streaming tier loops these internally; the fault tier
//!   models the loop giving up);
//! * **per-read latency** (`latency_us=N`) — a slow device, for
//!   cancellation/deadline promptness tests;
//! * **fail-after-N-bytes** (`fail_after=N`) — a device that dies once
//!   `N` payload bytes have been served: every later read fails with
//!   `EIO`, so retries exhaust and the error escalates;
//! * **truncate-at-offset** (`truncate_at=N`) — the concurrent-writer
//!   case: reads past offset `N` behave as if the file shrank after
//!   open ([`crate::BalError::Corrupt`], fatal);
//! * **payload bit-flips** (`flip=P`) — probability-`P` silent single-bit
//!   corruption of a served payload, for detector coverage;
//! * **one-shot panic** (`panic_at=N`) — the first read covering offset
//!   `N` panics, then the trigger disarms: a deterministic stand-in for
//!   a worker bug the supervisor must contain exactly once;
//! * **advise failure** (`advise_fail=1`) — `madvise` refusal, driving
//!   the prefetch degradation path.
//!
//! # Determinism
//!
//! All randomness comes from one splitmix64 stream seeded by the plan
//! (`seed=N`), so a given spec replays the same fault schedule for the
//! same sequence of reads. Offset triggers (`fail_after`, `truncate_at`,
//! `panic_at`) are deterministic even under parallelism; probability
//! faults depend on thread interleaving of reads, which is why only
//! transient classes (retried away, outcome-identical) use them.
//!
//! # Selection
//!
//! `ULTRAVC_FAULT=<spec>` wraps every [`crate::BalFile::open`] after
//! parsing (the index/dictionary read is not faulted, so opens succeed
//! and faults land on the payload path where the supervisor operates);
//! the hidden `--fault <spec>` CLI flag does the same per invocation and
//! wins over the environment. Specs are comma-separated `key=value`
//! pairs, e.g. `seed=42,eio=0.05,short=0.1,latency_us=200,panic_at=4096`.

use crate::io::{Advice, ByteSource};
use crate::BalError;
use std::borrow::Cow;
use std::time::Duration;
use ultravc_sync::Mutex;

/// A parsed fault schedule: seed, per-class probabilities and offset
/// triggers. See the module docs for the spec grammar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plan's deterministic rng stream.
    pub seed: u64,
    /// Per-read probability of a transient `EIO`.
    pub eio: f64,
    /// Per-read probability of an `EINTR`.
    pub eintr: f64,
    /// Per-read probability of a short read (transient partial transfer).
    pub short: f64,
    /// Injected latency per read.
    pub latency: Duration,
    /// Persistent `EIO` on every read once this many payload bytes have
    /// been served.
    pub fail_after: Option<u64>,
    /// Reads extending past this offset fail as a truncated file.
    pub truncate_at: Option<usize>,
    /// Per-read probability of flipping one bit in the served payload.
    pub flip: f64,
    /// The first read covering this offset panics, then the trigger
    /// disarms.
    pub panic_at: Option<usize>,
    /// Whether `advise` calls fail (driving prefetch degradation).
    pub advise_fail: bool,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            eio: 0.0,
            eintr: 0.0,
            short: 0.0,
            latency: Duration::ZERO,
            fail_after: None,
            truncate_at: None,
            flip: 0.0,
            panic_at: None,
            advise_fail: false,
        }
    }
}

fn invalid(msg: String) -> BalError {
    BalError::Io(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))
}

impl FaultPlan {
    /// Parse a `ULTRAVC_FAULT` / `--fault` spec: comma-separated
    /// `key=value` pairs. Unknown keys and malformed values are errors —
    /// a typo must not silently run a CI leg fault-free. An empty spec
    /// is an error too (use an unset variable for "no faults").
    pub fn parse(spec: &str) -> Result<FaultPlan, BalError> {
        if spec.trim().is_empty() {
            return Err(invalid(
                "empty fault spec (unset ULTRAVC_FAULT instead)".into(),
            ));
        }
        let mut plan = FaultPlan::default();
        for pair in spec.split(',') {
            let pair = pair.trim();
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| invalid(format!("fault spec item {pair:?} is not key=value")))?;
            let prob = |v: &str| -> Result<f64, BalError> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| invalid(format!("fault {key}={v:?} is not a probability")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(invalid(format!("fault {key}={v} outside [0, 1]")));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, BalError> {
                v.parse()
                    .map_err(|_| invalid(format!("fault {key}={v:?} is not an integer")))
            };
            match key {
                "seed" => plan.seed = int(value)?,
                "eio" => plan.eio = prob(value)?,
                "eintr" => plan.eintr = prob(value)?,
                "short" => plan.short = prob(value)?,
                "latency_us" => plan.latency = Duration::from_micros(int(value)?),
                "fail_after" => plan.fail_after = Some(int(value)?),
                "truncate_at" => {
                    plan.truncate_at = Some(usize::try_from(int(value)?).map_err(|_| {
                        invalid(format!("fault truncate_at={value} overflows usize"))
                    })?)
                }
                "flip" => plan.flip = prob(value)?,
                "panic_at" => {
                    plan.panic_at =
                        Some(usize::try_from(int(value)?).map_err(|_| {
                            invalid(format!("fault panic_at={value} overflows usize"))
                        })?)
                }
                "advise_fail" => plan.advise_fail = int(value)? != 0,
                _ => return Err(invalid(format!("unrecognized fault key {key:?}"))),
            }
        }
        Ok(plan)
    }

    /// The plan `ULTRAVC_FAULT` scripts, if any (strictly validated).
    pub fn env_plan() -> Result<Option<FaultPlan>, BalError> {
        match std::env::var("ULTRAVC_FAULT") {
            Err(_) => Ok(None),
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => FaultPlan::parse(&v).map(Some),
        }
    }
}

/// Mutable fault state, serialized under one lock: the rng stream, the
/// served-byte odometer and the one-shot panic trigger.
#[derive(Debug)]
struct FaultState {
    rng: u64,
    bytes_served: u64,
    panic_armed: bool,
}

/// A [`ByteSource`] wrapper executing a [`FaultPlan`]. See the module
/// docs for the fault classes and determinism contract.
#[derive(Debug)]
pub struct FaultSource {
    inner: ByteSource,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

/// One splitmix64 step — the same generator the readsim stack uses;
/// deterministic, seedable, no external dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultSource {
    /// Wrap `inner` (a real tier) under `plan`.
    pub fn new(inner: ByteSource, plan: FaultPlan) -> FaultSource {
        FaultSource {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng: plan.seed,
                bytes_served: 0,
                panic_armed: plan.panic_at.is_some(),
            }),
        }
    }

    /// The wrapped real tier.
    pub fn inner(&self) -> &ByteSource {
        &self.inner
    }

    /// The plan this source executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The diagnostic tier name: the fault tier reports itself, not the
    /// tier it wraps (a faulted run must never be mistaken for a clean
    /// one in bench labels or effective-mode reports).
    pub fn tier_name(&self) -> &'static str {
        "fault"
    }

    /// Total length in bytes (the inner tier's open-time length — a
    /// `truncate_at` trigger models the file shrinking *after* open, so
    /// it does not change the advertised length, mirroring
    /// [`crate::io::StreamFile`]).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the source holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Serve `[offset, offset + len)`, first consulting the fault
    /// schedule. Injected failures are returned as the corresponding
    /// [`BalError`]; a bit-flip fault serves corrupted payload bytes
    /// silently (that is the point). The one-shot `panic_at` trigger
    /// disarms before panicking, so the read can be retried successfully
    /// once the panic has been contained.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Cow<'_, [u8]>, BalError> {
        if !self.plan.latency.is_zero() {
            std::thread::sleep(self.plan.latency);
        }
        let verdict = {
            let mut st = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.judge(&mut st, offset, len)
        };
        match verdict {
            Verdict::Panic => {
                panic!("injected fault: panic_at offset {offset} (one-shot, now disarmed)")
            }
            Verdict::Fail(e) => Err(e),
            Verdict::Serve { flip_bit } => {
                let data = self.inner.slice(offset, len)?;
                match flip_bit {
                    None => Ok(data),
                    Some(bit) if len > 0 => {
                        let mut owned = data.into_owned();
                        let idx = (bit / 8) as usize % owned.len();
                        owned[idx] ^= 1 << (bit % 8);
                        Ok(Cow::Owned(owned))
                    }
                    Some(_) => Ok(data),
                }
            }
        }
    }

    /// Decide this read's fate under the plan. Runs under the state lock;
    /// the panic itself is raised by the caller after the lock is
    /// released, so a contained panic cannot poison the fault schedule.
    fn judge(&self, st: &mut FaultState, offset: usize, len: usize) -> Verdict {
        let p = &self.plan;
        let end = offset.saturating_add(len);
        if st.panic_armed
            && p.panic_at
                .is_some_and(|at| offset <= at && at < end.max(offset + 1))
        {
            st.panic_armed = false;
            return Verdict::Panic;
        }
        if p.truncate_at.is_some_and(|at| end > at) {
            return Verdict::Fail(BalError::Corrupt(
                "file truncated while reading (shrank after open)",
            ));
        }
        if p.fail_after.is_some_and(|at| st.bytes_served >= at) {
            return Verdict::Fail(BalError::Io(std::io::Error::from_raw_os_error(5)));
        }
        if p.eintr > 0.0 && unit(&mut st.rng) < p.eintr {
            return Verdict::Fail(BalError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected fault: EINTR",
            )));
        }
        if p.eio > 0.0 && unit(&mut st.rng) < p.eio {
            return Verdict::Fail(BalError::Io(std::io::Error::from_raw_os_error(5)));
        }
        if p.short > 0.0 && unit(&mut st.rng) < p.short {
            return Verdict::Fail(BalError::Io(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "injected fault: short read (partial transfer)",
            )));
        }
        st.bytes_served += len as u64;
        let flip_bit = (p.flip > 0.0 && unit(&mut st.rng) < p.flip)
            .then(|| splitmix64(&mut st.rng) % (8 * len.max(1) as u64));
        Verdict::Serve { flip_bit }
    }

    /// Hint pass-through, unless the plan scripts advise failure — then
    /// an `EIO`, which planners treat as "hints unavailable" and degrade.
    pub fn advise(&self, advice: Advice, offset: usize, len: usize) -> Result<bool, BalError> {
        if self.plan.advise_fail {
            return Err(BalError::Io(std::io::Error::from_raw_os_error(5)));
        }
        self.inner.advise(advice, offset, len)
    }
}

/// The outcome of one scheduled read decision.
enum Verdict {
    Serve { flip_bit: Option<u64> },
    Fail(BalError),
    Panic,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoBudget;
    use bytes::Bytes;

    fn mem(n: usize) -> ByteSource {
        ByteSource::Mem(Bytes::from((0..n).map(|i| i as u8).collect::<Vec<u8>>()))
    }

    #[test]
    fn spec_parsing_round_trips_every_key() {
        let plan = FaultPlan::parse(
            "seed=42,eio=0.25,eintr=0.5,short=1,latency_us=250,fail_after=1024,\
             truncate_at=2048,flip=0.125,panic_at=99,advise_fail=1",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.eio, 0.25);
        assert_eq!(plan.eintr, 0.5);
        assert_eq!(plan.short, 1.0);
        assert_eq!(plan.latency, Duration::from_micros(250));
        assert_eq!(plan.fail_after, Some(1024));
        assert_eq!(plan.truncate_at, Some(2048));
        assert_eq!(plan.flip, 0.125);
        assert_eq!(plan.panic_at, Some(99));
        assert!(plan.advise_fail);
        // Spaces around items tolerated, unknown keys and junk rejected.
        assert!(FaultPlan::parse("seed=1, eio=0.1").is_ok());
        for bad in [
            "",
            "seed",
            "seed=x",
            "eio=1.5",
            "eio=-0.1",
            "nope=1",
            "seed=1,,eio=0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let plan = FaultPlan::parse("seed=7,eio=0.3,short=0.3").unwrap();
        let script = |plan: FaultPlan| -> Vec<bool> {
            let src = mem(4096).with_faults(plan);
            (0..64).map(|i| src.slice(i * 64, 64).is_ok()).collect()
        };
        let a = script(plan);
        let b = script(plan);
        assert_eq!(a, b, "same seed, same read sequence, same fault schedule");
        assert!(a.iter().any(|ok| !ok), "p=0.3 over 64 reads must fault");
        assert!(a.iter().any(|ok| *ok), "and must also serve");
        let c = script(FaultPlan::parse("seed=8,eio=0.3,short=0.3").unwrap());
        assert_ne!(a, c, "a different seed reschedules");
    }

    #[test]
    fn injected_faults_have_the_right_classification() {
        let eio = mem(64).with_faults(FaultPlan::parse("eio=1").unwrap());
        let err = eio.slice(0, 16).unwrap_err();
        assert!(err.is_transient(), "EIO is transient: {err}");
        let eintr = mem(64).with_faults(FaultPlan::parse("eintr=1").unwrap());
        assert!(eintr.slice(0, 16).unwrap_err().is_transient());
        let short = mem(64).with_faults(FaultPlan::parse("short=1").unwrap());
        assert!(short.slice(0, 16).unwrap_err().is_transient());
        let trunc = mem(64).with_faults(FaultPlan::parse("truncate_at=32").unwrap());
        assert_eq!(&trunc.slice(0, 16).unwrap().to_vec()[..4], &[0, 1, 2, 3]);
        let err = trunc.slice(24, 16).unwrap_err();
        assert!(matches!(err, BalError::Corrupt(_)) && !err.is_transient());
    }

    #[test]
    fn fail_after_kills_the_device_permanently() {
        let src = mem(4096).with_faults(FaultPlan::parse("fail_after=128").unwrap());
        assert!(src.slice(0, 100).is_ok());
        assert!(src.slice(100, 28).is_ok());
        for _ in 0..8 {
            assert!(src.slice(0, 1).unwrap_err().is_transient());
        }
        // A budgeted read exhausts its retries and escalates unchanged.
        let budget = IoBudget::new(
            None,
            2,
            Duration::from_micros(10),
            Duration::from_micros(50),
            crate::io::CancelToken::new(),
        );
        let err = budget
            .run_io(|| src.slice(0, 1).map(|c| c.len()))
            .unwrap_err();
        assert!(matches!(err, BalError::Io(_)));
        assert_eq!(budget.retries(), 2);
    }

    #[test]
    fn transient_faults_are_retried_away_under_a_budget() {
        let src =
            mem(4096).with_faults(FaultPlan::parse("seed=3,eio=0.4,eintr=0.3,short=0.4").unwrap());
        let budget = IoBudget::new(
            None,
            32,
            Duration::from_micros(10),
            Duration::from_micros(50),
            crate::io::CancelToken::new(),
        );
        for i in 0..32 {
            let got = budget
                .run_io(|| src.slice(i * 64, 64).map(|c| c.to_vec()))
                .unwrap();
            assert_eq!(got[0] as usize, (i * 64) % 256, "bytes survive retries");
        }
        assert!(budget.retries() > 0, "p≈0.6 over 32 reads must retry");
    }

    #[test]
    fn bit_flips_corrupt_silently_and_deterministically() {
        let plan = FaultPlan::parse("seed=11,flip=1").unwrap();
        let clean = mem(256);
        let flipped = clean.clone().with_faults(plan);
        let a = flipped.slice(0, 256).unwrap().to_vec();
        assert_ne!(a, clean.slice(0, 256).unwrap().to_vec());
        // Exactly one bit differs per read.
        let diff: u32 = a
            .iter()
            .zip(clean.slice(0, 256).unwrap().iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(diff, 1);
        let b = clean
            .clone()
            .with_faults(plan)
            .slice(0, 256)
            .unwrap()
            .to_vec();
        assert_eq!(a, b, "same seed flips the same bit");
    }

    #[test]
    fn panic_at_fires_exactly_once_then_disarms() {
        let src = mem(4096).with_faults(FaultPlan::parse("panic_at=1000").unwrap());
        assert!(
            src.slice(0, 64).is_ok(),
            "reads not covering the offset pass"
        );
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = src.slice(960, 128);
        }));
        assert!(hit.is_err(), "first covering read panics");
        assert!(src.slice(960, 128).is_ok(), "trigger disarmed after firing");
    }

    #[test]
    fn cancellation_cuts_latency_and_backoff_short() {
        let src = mem(4096).with_faults(FaultPlan::parse("eio=1").unwrap());
        let cancel = crate::io::CancelToken::new();
        let budget = IoBudget::new(
            None,
            1_000,
            Duration::from_millis(50),
            Duration::from_secs(5),
            cancel.clone(),
        );
        let t0 = std::time::Instant::now();
        let killer = std::thread::spawn({
            let cancel = cancel.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                cancel.cancel();
            }
        });
        let err = budget
            .run_io(|| src.slice(0, 16).map(|c| c.len()))
            .unwrap_err();
        killer.join().unwrap();
        assert!(matches!(
            err,
            BalError::Interrupted(crate::io::Interrupt::Cancelled)
        ));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "cancel must cut the backoff short, not wait out the cap"
        );
    }

    #[test]
    fn deadline_interrupts_io() {
        let src = mem(64).with_faults(FaultPlan::parse("eio=1").unwrap());
        let budget = IoBudget::new(
            Some(std::time::Instant::now() + Duration::from_millis(20)),
            1_000,
            Duration::from_millis(5),
            Duration::from_millis(50),
            crate::io::CancelToken::new(),
        );
        let err = budget
            .run_io(|| src.slice(0, 16).map(|c| c.len()))
            .unwrap_err();
        assert!(matches!(
            err,
            BalError::Interrupted(crate::io::Interrupt::DeadlineExpired)
        ));
    }

    #[test]
    fn wrapper_replaces_rather_than_stacks() {
        let a = FaultPlan::parse("eio=1").unwrap();
        let b = FaultPlan::parse("seed=9").unwrap(); // benign plan
        let src = mem(64).with_faults(a).with_faults(b);
        assert!(
            src.slice(0, 16).is_ok(),
            "explicit plan replaced the eio one"
        );
        match &src {
            ByteSource::Fault(f) => assert!(matches!(f.inner(), ByteSource::Mem(_))),
            other => panic!("expected fault tier, got {}", other.tier_name()),
        }
        assert_eq!(src.tier_name(), "fault");
        assert!(!src.is_stream_backed());
    }

    #[test]
    fn advise_fail_degrades_hints() {
        let src = mem(64).with_faults(FaultPlan::parse("advise_fail=1").unwrap());
        assert!(src.advise(Advice::Sequential, 0, 64).is_err());
        let benign = mem(64).with_faults(FaultPlan::parse("seed=1").unwrap());
        assert!(!benign.advise(Advice::Sequential, 0, 64).unwrap());
    }
}
