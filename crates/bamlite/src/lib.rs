//! # ultravc-bamlite
//!
//! Alignment-store substrate: a from-scratch replacement for the
//! htslib/BAM machinery LoFreq iterates over.
//!
//! The paper's parallel driver gives **each thread an independent `.bam`
//! reader** and pays a per-block decompression cost while iterating pileup
//! columns (the teal and light-blue bands of its Figure 2 trace). What the
//! caller needs from the storage layer is therefore:
//!
//! 1. position-sorted alignment records with bases + Phred qualities,
//! 2. a blocked on-disk layout where every block decodes independently,
//! 3. a genomic index mapping regions to block ranges, so a thread can jump
//!    to its partition without scanning the file,
//! 4. cheap per-thread readers over shared immutable bytes.
//!
//! The **BAL** ("Binary ALignment-lite") format provides exactly that, with
//! honest-but-simple codecs instead of DEFLATE: delta+varint positions,
//! 2-bit packed bases, run-length-encoded qualities. See `DESIGN.md`
//! (Substitutions) for the BGZF-equivalence argument.
//!
//! # The v2 payload: decode once, already binned
//!
//! Since v2 (the default written format), a file carries a
//! [`QualityDict`] — its spectrum of distinct Phred scores, sorted
//! descending, at most [`QUALITY_DICT_CAP`](batch::QUALITY_DICT_CAP)
//! entries before spilling to the identity mapping — and blocks store
//! per-base qualities as **bin indices** into that dictionary. The hot
//! ingest path ([`BalReader::decode_batch`]) expands a block into one
//! reusable [`RecordBatch`] arena (unpacked base codes, bin indices,
//! CIGAR ops; records as offset+len [`RecordView`]s) with zero per-record
//! allocations, so the pileup layer stacks bin ids directly instead of
//! re-deriving them per read. The owned-[`Record`] decoder remains as a
//! compatibility shim, and v1 files stay readable through the identity
//! dictionary. [`SharedBlockCache`] layers run-scoped decode-once
//! semantics on top for parallel callers whose partitions straddle block
//! boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cigar;
pub mod codec;
pub mod file;
pub mod record;

pub use batch::{QualityDict, RecordBatch, RecordView, SharedBlockCache};
pub use cigar::{Cigar, CigarOp};
pub use file::{BalFile, BalReader, BalWriter, DecodeStats, FormatVersion};
pub use record::{Flags, Record};

/// Errors produced by the BAL encoder/decoder.
#[derive(Debug)]
pub enum BalError {
    /// The byte stream is not a BAL file or is structurally damaged.
    Corrupt(&'static str),
    /// Records pushed to a writer out of coordinate order.
    Unsorted {
        /// Position of the previous record.
        prev: u32,
        /// Position of the offending record.
        next: u32,
    },
    /// A record failed internal validation.
    BadRecord(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for BalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalError::Corrupt(what) => write!(f, "corrupt BAL stream: {what}"),
            BalError::Unsorted { prev, next } => {
                write!(f, "records out of order: {next} after {prev}")
            }
            BalError::BadRecord(msg) => write!(f, "invalid record: {msg}"),
            BalError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for BalError {}

impl From<std::io::Error> for BalError {
    fn from(e: std::io::Error) -> Self {
        BalError::Io(e)
    }
}
