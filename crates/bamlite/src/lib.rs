//! # ultravc-bamlite
//!
//! Alignment-store substrate: a from-scratch replacement for the
//! htslib/BAM machinery LoFreq iterates over.
//!
//! The paper's parallel driver gives **each thread an independent `.bam`
//! reader** and pays a per-block decompression cost while iterating pileup
//! columns (the teal and light-blue bands of its Figure 2 trace). What the
//! caller needs from the storage layer is therefore:
//!
//! 1. position-sorted alignment records with bases + Phred qualities,
//! 2. a blocked on-disk layout where every block decodes independently,
//! 3. a genomic index mapping regions to block ranges, so a thread can jump
//!    to its partition without scanning the file,
//! 4. cheap per-thread readers over shared immutable bytes.
//!
//! The **BAL** ("Binary ALignment-lite") format provides exactly that, with
//! honest-but-simple codecs instead of DEFLATE: delta+varint positions,
//! 2-bit packed bases, run-length-encoded qualities. See `DESIGN.md`
//! (Substitutions) for the BGZF-equivalence argument.
//!
//! # On-disk ingest: the `ByteSource` tiers
//!
//! A [`BalFile`]'s bytes live behind a [`ByteSource`] with three tiers:
//!
//! * **`Mem`** — the whole serialized stream as shared [`bytes::Bytes`].
//!   What the writer produces and what [`BalFile::from_bytes`] wraps;
//!   right for simulator output and small files.
//! * **`Mmap`** — a read-only `mmap(2)` of the file (via the in-repo
//!   `memmap2` shim). **The default for [`BalFile::open`]**: block
//!   payloads are borrowed straight from the mapping and paged in on
//!   first touch, so an ultra-deep file larger than RAM streams through
//!   the page cache with zero up-front copies and the kernel reclaims
//!   cold pages under pressure.
//! * **`Stream`** — an open descriptor plus positioned (`pread`-style)
//!   reads into owned buffers. Selected automatically when mapping fails
//!   (e.g. an unmappable filesystem), or explicitly for files a
//!   concurrent writer might truncate — the one case where mmap's
//!   `SIGBUS` hazard matters.
//!
//! `open` resolves [`SourceTier::Auto`](io::SourceTier) as
//! mmap-with-streaming-fallback; `ULTRAVC_BAL_SOURCE=mem|mmap|stream`
//! pins a tier process-wide (CI's on-disk legs run the suites through
//! every tier), but an **explicitly named tier always wins** — the
//! variable is only consulted (and strictly validated) when resolving
//! `Auto`. Only the index/dictionary region is read eagerly — parsing
//! bounds-checks every offset, length and count it reads, so a corrupt
//! or truncated file fails with [`BalError::Corrupt`] instead of
//! panicking, no matter which tier serves it. All tiers feed the same
//! decode-once machinery ([`BalReader::decode_batch`],
//! [`SharedBlockCache`]) and produce bitwise-identical batches.
//!
//! # Scheduled I/O: the `prefetch` layer
//!
//! On top of the byte source sits the third layer of the ingest stack —
//! [`prefetch`], which turns the block index into a per-run I/O plan.
//! [`IoPlan::for_regions`](prefetch::IoPlan::for_regions) computes each
//! region's **block window** (its own blocks plus shared boundary
//! blocks — what a parallel worker's pileup iterator walks instead of
//! re-deriving the overlap), a distinct-block schedule in first-use
//! order, and coalesced payload byte runs. The plan then drives the two
//! disk tiers differently: `madvise(SEQUENTIAL/WILLNEED)` hints on the
//! mmap tier ([`IoPlan::advise`](prefetch::IoPlan::advise), through the
//! advice API on the `memmap2` shim), and a bounded background
//! read-ahead thread on the streaming tier
//! ([`IoPlan::spawn_readahead`](prefetch::IoPlan::spawn_readahead)) that
//! warms the run's [`SharedBlockCache`] ahead of the workers. Decode-once
//! is preserved — a cache slot decodes at most once no matter whether the
//! prefetcher or a worker gets there first — and so is [`DecodeStats`]
//! accounting: every decode is owned by exactly one party, with the
//! read-ahead's share returned from
//! [`ReadaheadHandle::finish`](prefetch::ReadaheadHandle::finish) for
//! the driver to fold into the run total. `ULTRAVC_PREFETCH=on|off|N`
//! resolves driver-level [`PrefetchMode::Auto`](prefetch::PrefetchMode),
//! with the same explicit-wins precedence as the tier pin.
//!
//! # The v2 payload: decode once, already binned
//!
//! Since v2, a file carries a
//! [`QualityDict`] — its spectrum of distinct Phred scores, sorted
//! descending, at most [`QUALITY_DICT_CAP`](batch::QUALITY_DICT_CAP)
//! entries before spilling to the identity mapping — and blocks store
//! per-base qualities as **bin indices** into that dictionary. The hot
//! ingest path ([`BalReader::decode_batch`]) expands a block into one
//! reusable [`RecordBatch`] arena (unpacked base codes, bin indices,
//! CIGAR ops; records as offset+len [`RecordView`]s) with zero per-record
//! allocations, so the pileup layer stacks bin ids directly instead of
//! re-deriving them per read. The owned-[`Record`] decoder remains as a
//! compatibility shim, and v1 files stay readable through the identity
//! dictionary. [`SharedBlockCache`] layers run-scoped decode-once
//! semantics on top for parallel callers whose partitions straddle block
//! boundaries.
//!
//! # The v3 payload: columnar streams, per-stream compression
//!
//! v3 (the default written format) keeps the container framing and the
//! v2 quality dictionary but re-arranges each block payload into **four
//! columnar streams** — per-record metadata (position deltas, ids, mapq,
//! flags, counts), concatenated CIGAR ops, concatenated 2-bit packed
//! bases, concatenated qual-bin indices — each independently wrapped in a
//! [`codec::compress_stream`] container that stores whichever of
//! raw/RLE/LZ encodes it smallest — provided the winner at least halves
//! the stream, because decode sits on the serving hot path and marginal
//! byte savings don't pay for their CPU. Ultra-deep viral stacks are massively
//! redundant column-wise (every read covers the same 30 kb reference, the
//! qual spectrum is a handful of plateaus), so the base and qual streams
//! crush and cold ingest moves a fraction of the bytes v2 did — which
//! multiplies the prefetch layer's win, since [`IoPlan`] byte runs are
//! computed from the index's (now compressed) block lengths. Decode stays
//! single-pass: bulk-decompress the four streams into warmed scratch,
//! then one linear walk fills the same [`RecordBatch`] arenas the v2 path
//! fills, bitwise identically. The index schema is unchanged across
//! versions, so region cost estimates (`n_records` sums) are
//! format-independent by construction. Writers default to v3;
//! `ULTRAVC_BAL_FORMAT=1|2|3` pins the default and
//! `simulate --format v1|v2|v3` overrides per file.
//!
//! # Failure model
//!
//! Every fallible ingest operation returns [`BalError`]; the variants
//! split into three classes a supervisor treats differently:
//!
//! * **Transient** ([`BalError::is_transient`]) — `Io` errors a retry can
//!   plausibly clear: `EINTR`, `EIO` from a flaky device, timeouts,
//!   injected short reads. [`IoBudget::run_io`](io::IoBudget::run_io)
//!   retries these with capped exponential backoff up to the budget's
//!   `max_retries`, then escalates the final [`BalError::Io`] unchanged.
//!   `EINTR` specifically is retried without consuming budget, matching
//!   the kernel contract the streaming tier's read loop already honours.
//! * **Fatal** — `Corrupt`, `Unsorted`, `BadRecord`, and non-transient
//!   `Io` errors. Retrying cannot help (the bytes themselves are wrong),
//!   so these surface immediately.
//! * **Interruptions** ([`BalError::Interrupted`]) — not failures at all:
//!   the run's [`CancelToken`](io::CancelToken) fired or its deadline
//!   expired. I/O entry points checked against an armed
//!   [`IoBudget`](io::IoBudget) return this promptly so workers and the
//!   read-ahead drain instead of finishing doomed work.
//!
//! **Degradation ladder.** Tiers degrade rather than fail the run:
//! `mem ← mmap ← stream ← fault`. An `Auto` mmap open that fails falls
//! back to streaming ([`ByteSource::open`]); a refused `madvise` hint
//! downgrades the effective prefetch report instead of erroring; a dead
//! read-ahead thread ([`ReadaheadReport::panicked`]) degrades the run to
//! demand reads — workers decode cache misses themselves, bitwise
//! identically. The [`fault`](io::fault) tier sits at the bottom of the
//! ladder: a deterministic, seeded wrapper over any real tier
//! ([`FaultPlan`], `ULTRAVC_FAULT`) that injects the failures above so
//! CI can replay exact failure schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cigar;
pub mod codec;
pub mod file;
pub mod io;
pub mod prefetch;
pub mod record;

pub use batch::{QualityDict, RecordBatch, RecordView, SharedBlockCache};
pub use cigar::{Cigar, CigarOp};
pub use file::{
    BalFile, BalReader, BalWriter, DecodeStats, FormatVersion, StreamStats, WriterStats,
};
pub use io::fault::{FaultPlan, FaultSource};
pub use io::{
    Advice, ByteSource, CancelToken, FileFingerprint, Interrupt, IoBudget, SourceTier, StreamFile,
};
pub use prefetch::{
    BlockWindow, IoPlan, PrefetchMode, ReadaheadHandle, ReadaheadReport, ResolvedPrefetch,
};
pub use record::{Flags, Record};

/// Errors produced by the BAL encoder/decoder.
#[derive(Debug)]
pub enum BalError {
    /// The byte stream is not a BAL file or is structurally damaged.
    Corrupt(&'static str),
    /// Records pushed to a writer out of coordinate order.
    Unsorted {
        /// Position of the previous record.
        prev: u32,
        /// Position of the offending record.
        next: u32,
    },
    /// A record failed internal validation.
    BadRecord(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The run's supervision budget cut the operation short — the cancel
    /// token fired or the deadline expired. Not a data failure: completed
    /// work is still valid, remaining work was abandoned on purpose.
    Interrupted(Interrupt),
}

impl BalError {
    /// Whether a retry can plausibly clear this error: `EINTR`, a device
    /// `EIO`, timeouts, and short-read/partial-transfer conditions are
    /// transient; corrupt bytes, validation failures and interruptions
    /// are not. This is the classification
    /// [`IoBudget::run_io`](io::IoBudget::run_io) retries on.
    pub fn is_transient(&self) -> bool {
        match self {
            BalError::Io(e) => {
                matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::WouldBlock
                ) || e.raw_os_error() == Some(5) // EIO
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for BalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalError::Corrupt(what) => write!(f, "corrupt BAL stream: {what}"),
            BalError::Unsorted { prev, next } => {
                write!(f, "records out of order: {next} after {prev}")
            }
            BalError::BadRecord(msg) => write!(f, "invalid record: {msg}"),
            BalError::Io(e) => write!(f, "I/O error: {e}"),
            BalError::Interrupted(why) => write!(f, "run interrupted: {why}"),
        }
    }
}

impl std::error::Error for BalError {}

impl From<std::io::Error> for BalError {
    fn from(e: std::io::Error) -> Self {
        BalError::Io(e)
    }
}
