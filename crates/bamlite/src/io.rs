//! On-disk I/O tiers for BAL files: the [`ByteSource`] abstraction behind
//! [`crate::BalFile::open`].
//!
//! # The three tiers
//!
//! | tier | backing | block payload access | when |
//! |------|---------|----------------------|------|
//! | [`ByteSource::Mem`] | whole file as [`Bytes`] | borrowed slice | writer output, `from_bytes`, small files |
//! | [`ByteSource::Mmap`] | `mmap(2)` of the file | borrowed slice, paged in on first touch | **default for `open`** — ultra-deep files larger than RAM stream through the page cache with zero copies |
//! | [`ByteSource::Stream`] | open fd + positioned reads | owned buffer per request | filesystems where mapping fails (or is undesirable: network mounts, files a concurrent writer may truncate) |
//!
//! `open` resolves [`SourceTier::Auto`] to mmap and falls back to
//! streaming when the mapping fails, so callers never have to care; the
//! `ULTRAVC_BAL_SOURCE` environment variable (`mem`/`mmap`/`stream`) pins
//! a tier process-wide, which is what CI's on-disk ingest legs use to run
//! the same suites through every tier.
//!
//! All tiers hand out block payloads through [`ByteSource::slice`], which
//! bounds-checks every request against the source length — a corrupt
//! index can therefore name impossible byte ranges without ever reaching
//! an out-of-bounds slice.
//!
//! # Supervision and faults
//!
//! Two additions serve the run supervisor (see the crate-level "Failure
//! model" section): [`CancelToken`]/[`IoBudget`] carry deadlines,
//! cancellation and the retry/backoff policy into every I/O entry point
//! ([`IoBudget::run_io`]), and the [`fault`] submodule provides
//! [`ByteSource::Fault`] — a deterministic, seeded fault-injection
//! wrapper over any real tier, so the retry and degradation paths are
//! testable with replayable failure schedules.

use crate::BalError;
use bytes::Bytes;
use std::borrow::Cow;
use std::fs::File;
use std::path::Path;
use std::time::{Duration, Instant};
use ultravc_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use ultravc_sync::Arc;

pub mod fault;

pub use fault::{FaultPlan, FaultSource};
pub use memmap2::Advice;

/// Why a supervised run stopped before finishing its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// An external [`CancelToken::cancel`] call.
    Cancelled,
    /// The run's deadline expired.
    DeadlineExpired,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

/// A cooperative cancellation flag. Cheap to clone (all clones share one
/// flag); any holder can [`cancel`](CancelToken::cancel), and every I/O
/// entry point checked against an [`IoBudget`] carrying the token
/// returns [`BalError::Interrupted`] promptly afterwards.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fire the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// An armed supervision budget for one run: absolute deadline, transient
/// retry policy, cancellation, and a shared retry counter. Attached to a
/// [`crate::BalFile`] via [`crate::BalFile::with_budget`], it gates every
/// block payload read — workers, the read-ahead thread and sequential
/// drains all pass through [`IoBudget::run_io`].
#[derive(Debug)]
pub struct IoBudget {
    deadline: Option<Instant>,
    max_retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    cancel: CancelToken,
    retries: AtomicU64,
}

impl Default for IoBudget {
    fn default() -> IoBudget {
        IoBudget::unbounded()
    }
}

impl IoBudget {
    /// Default transient-retry attempts before escalation.
    pub const DEFAULT_MAX_RETRIES: u32 = 4;
    /// Default first-retry backoff.
    pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(1);
    /// Default cap on a single backoff sleep.
    pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(100);

    /// A budget with no deadline, a fresh cancel token and the default
    /// retry policy.
    pub fn unbounded() -> IoBudget {
        IoBudget {
            deadline: None,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            backoff_base: Self::DEFAULT_BACKOFF_BASE,
            backoff_cap: Self::DEFAULT_BACKOFF_CAP,
            cancel: CancelToken::new(),
            retries: AtomicU64::new(0),
        }
    }

    /// A fully specified budget. `deadline` is absolute (arm it at run
    /// start); `backoff` doubles per attempt from `base`, capped at `cap`.
    pub fn new(
        deadline: Option<Instant>,
        max_retries: u32,
        backoff_base: Duration,
        backoff_cap: Duration,
        cancel: CancelToken,
    ) -> IoBudget {
        IoBudget {
            deadline,
            max_retries,
            backoff_base,
            backoff_cap,
            cancel,
            retries: AtomicU64::new(0),
        }
    }

    /// The budget's cancel token (cloneable; hand it to whoever may need
    /// to cancel the run).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The cap on a single backoff sleep.
    pub fn backoff_cap(&self) -> Duration {
        self.backoff_cap
    }

    /// Transient retries performed so far across every I/O path sharing
    /// this budget.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Why the budget would interrupt right now, if it would. Checked by
    /// workers before claiming work and by [`IoBudget::run_io`] before
    /// every attempt.
    pub fn interrupt(&self) -> Option<Interrupt> {
        if self.cancel.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(Interrupt::DeadlineExpired),
            _ => None,
        }
    }

    /// [`IoBudget::interrupt`] as a `Result`, for `?`-chaining in I/O
    /// paths.
    pub fn check(&self) -> Result<(), BalError> {
        match self.interrupt() {
            Some(why) => Err(BalError::Interrupted(why)),
            None => Ok(()),
        }
    }

    /// Run `op` under this budget: transient failures
    /// ([`BalError::is_transient`]) retry with capped exponential backoff
    /// up to `max_retries`, then the final error escalates unchanged.
    /// `EINTR` retries immediately without consuming budget (the kernel
    /// contract — nothing failed). Cancellation or deadline expiry is
    /// checked before every attempt and during backoff sleeps, so an
    /// interrupted run returns within one backoff slice, not one cap.
    pub fn run_io<T>(&self, mut op: impl FnMut() -> Result<T, BalError>) -> Result<T, BalError> {
        let mut attempt = 0u32;
        loop {
            self.check()?;
            match op() {
                Ok(v) => return Ok(v),
                Err(BalError::Io(e)) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.is_transient() && attempt < self.max_retries => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff_sleep(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sleep the exponential backoff for `attempt` (1-based), in short
    /// slices so a cancellation or deadline cuts the sleep short.
    fn backoff_sleep(&self, attempt: u32) {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let mut left = exp.min(self.backoff_cap);
        const SLICE: Duration = Duration::from_millis(1);
        while !left.is_zero() {
            if self.interrupt().is_some() {
                return;
            }
            let nap = left.min(SLICE);
            std::thread::sleep(nap);
            left = left.saturating_sub(nap);
        }
    }
}

/// Which backing a [`crate::BalFile::open_with`] call should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceTier {
    /// Mmap, falling back to streaming if the mapping fails; the
    /// `ULTRAVC_BAL_SOURCE` environment variable (`mem`/`mmap`/`stream`)
    /// overrides the choice process-wide.
    #[default]
    Auto,
    /// Read the whole file into memory up front.
    Mem,
    /// Memory-map the file (error if the platform refuses).
    Mmap,
    /// Keep only an open descriptor; read byte ranges on demand.
    Stream,
}

impl SourceTier {
    /// Parse one `ULTRAVC_BAL_SOURCE` value. An unrecognized value is an
    /// error — a typo must not silently re-route a CI leg or repro
    /// session onto a different tier than it believes it is testing.
    /// Pure (the environment read is [`SourceTier::env_pin`]'s job), so
    /// the precedence rules are testable without mutating process state.
    pub fn parse_pin(v: &str) -> Result<Option<SourceTier>, BalError> {
        match v {
            "" => Ok(None),
            "mem" => Ok(Some(SourceTier::Mem)),
            "mmap" => Ok(Some(SourceTier::Mmap)),
            "stream" => Ok(Some(SourceTier::Stream)),
            _ => Err(BalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unrecognized ULTRAVC_BAL_SOURCE={v:?} (want mem|mmap|stream)"),
            ))),
        }
    }

    /// The tier `ULTRAVC_BAL_SOURCE` pins, if any. Consulted **only**
    /// when a caller asked for [`SourceTier::Auto`] — an explicit tier
    /// always wins, so the variable (even an invalid value of it) cannot
    /// override or fail a caller that named its tier.
    fn env_pin() -> Result<Option<SourceTier>, BalError> {
        match std::env::var("ULTRAVC_BAL_SOURCE") {
            Err(_) => Ok(None),
            Ok(v) => SourceTier::parse_pin(&v),
        }
    }

    /// Resolve `Auto` against the `ULTRAVC_BAL_SOURCE` environment
    /// override. Explicit tiers always win. Infallible summary form
    /// (unrecognized env values fall back to the mmap default);
    /// [`ByteSource::open`] validates the variable strictly.
    pub fn resolved(self) -> SourceTier {
        match self {
            SourceTier::Auto => SourceTier::env_pin()
                .ok()
                .flatten()
                .unwrap_or(SourceTier::Mmap),
            explicit => explicit,
        }
    }
}

/// The identity of an on-disk file at a point in time: byte length plus
/// modification timestamp, as one `stat` call reports them. A serving
/// layer that holds a [`crate::BalFile`] open across requests probes
/// this before reusing the session — a changed fingerprint means the
/// file was rewritten under it, so the held mapping (and any results
/// cached against the old fingerprint) must be discarded. `Hash`/`Eq`
/// so it can key a result cache directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileFingerprint {
    /// File length in bytes.
    pub len: u64,
    /// Modification time, when the filesystem reports one.
    pub modified: Option<std::time::SystemTime>,
}

impl FileFingerprint {
    /// Stat `path` and capture its current identity.
    pub fn probe(path: impl AsRef<std::path::Path>) -> std::io::Result<FileFingerprint> {
        let md = std::fs::metadata(path)?;
        Ok(FileFingerprint {
            len: md.len(),
            modified: md.modified().ok(),
        })
    }
}

/// Where a [`crate::BalFile`]'s bytes live. Cheap to clone (all variants
/// are reference-counted), so every reader/worker shares one backing.
#[derive(Debug, Clone)]
pub enum ByteSource {
    /// The whole serialized file in memory.
    Mem(Bytes),
    /// A read-only memory map; payload slices borrow straight from the
    /// mapping and fault in on first touch.
    Mmap(Arc<memmap2::Mmap>),
    /// An open file descriptor; payload requests are positioned reads
    /// into owned buffers.
    Stream(Arc<StreamFile>),
    /// A fault-injection wrapper over one of the real tiers (never over
    /// another `Fault`): serves the inner tier's bytes while injecting
    /// the seeded, scripted failures of its [`FaultPlan`]. Built by
    /// [`ByteSource::with_faults`] / `ULTRAVC_FAULT`.
    Fault(Arc<FaultSource>),
}

impl ByteSource {
    /// Total length in bytes.
    pub fn len(&self) -> usize {
        match self {
            ByteSource::Mem(b) => b.len(),
            ByteSource::Mmap(m) => m.len(),
            ByteSource::Stream(f) => f.len(),
            ByteSource::Fault(f) => f.len(),
        }
    }

    /// Whether the source holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes at `[offset, offset + len)`. Borrowed for the in-memory
    /// and mapped tiers, owned (one positioned read) for the streaming
    /// tier. Any request outside the source — including one whose end
    /// overflows `usize` — is [`BalError::Corrupt`], never a panic.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Cow<'_, [u8]>, BalError> {
        let end = offset
            .checked_add(len)
            .ok_or(BalError::Corrupt("byte range overflows"))?;
        if end > self.len() {
            return Err(BalError::Corrupt("byte range past end of file"));
        }
        match self {
            ByteSource::Mem(b) => Ok(Cow::Borrowed(&b[offset..end])),
            ByteSource::Mmap(m) => Ok(Cow::Borrowed(&m[offset..end])),
            ByteSource::Stream(f) => f.read_range(offset, len).map(Cow::Owned),
            ByteSource::Fault(f) => f.slice(offset, len),
        }
    }

    /// Hint the expected access pattern of `[offset, offset + len)` to
    /// the backing, if the tier has one that listens.
    ///
    /// Only the mmap tier actually issues hints (`madvise(2)` through the
    /// `memmap2` shim); the in-memory tier has nothing to page in and the
    /// streaming tier prefetches through [`crate::prefetch`]'s read-ahead
    /// instead. Returns whether a hint was issued, so planners can report
    /// what the run effectively did. Out-of-range requests are
    /// [`BalError::Corrupt`], mirroring [`ByteSource::slice`].
    pub fn advise(&self, advice: Advice, offset: usize, len: usize) -> Result<bool, BalError> {
        let end = offset
            .checked_add(len)
            .ok_or(BalError::Corrupt("byte range overflows"))?;
        if end > self.len() {
            return Err(BalError::Corrupt("byte range past end of file"));
        }
        match self {
            ByteSource::Mem(_) | ByteSource::Stream(_) => Ok(false),
            ByteSource::Mmap(m) => {
                m.advise_range(advice, offset, len).map_err(BalError::Io)?;
                // The shim's buffered fallback accepts and ignores hints;
                // report only genuinely-issued ones.
                Ok(memmap2::Mmap::advice_effective())
            }
            ByteSource::Fault(f) => f.advise(advice, offset, len),
        }
    }

    /// The tier's name, for diagnostics and bench labels.
    pub fn tier_name(&self) -> &'static str {
        match self {
            ByteSource::Mem(_) => "mem",
            ByteSource::Mmap(_) => "mmap",
            ByteSource::Stream(_) => "stream",
            ByteSource::Fault(f) => f.tier_name(),
        }
    }

    /// Whether payload reads ultimately go through the streaming tier
    /// (directly or under a fault wrapper) — the tiers whose reads the
    /// background read-ahead can usefully overlap with decoding.
    pub fn is_stream_backed(&self) -> bool {
        match self {
            ByteSource::Stream(_) => true,
            ByteSource::Fault(f) => matches!(f.inner(), ByteSource::Stream(_)),
            ByteSource::Mem(_) | ByteSource::Mmap(_) => false,
        }
    }

    /// Wrap this source in a fault-injection tier executing `plan`. A
    /// source already under a fault wrapper is re-wrapped at its real
    /// tier (plans replace, they don't stack), so an explicit plan always
    /// wins over an `ULTRAVC_FAULT` one.
    pub fn with_faults(self, plan: FaultPlan) -> ByteSource {
        let inner = match self {
            ByteSource::Fault(f) => f.inner().clone(),
            real => real,
        };
        ByteSource::Fault(Arc::new(FaultSource::new(inner, plan)))
    }

    /// Open `path` through the given tier (with `Auto` resolved against
    /// `ULTRAVC_BAL_SOURCE`, and the mmap→stream fallback applied).
    ///
    /// Precedence is deterministic: an explicit tier always wins and the
    /// environment is not even read for it; only `Auto` consults (and
    /// strictly validates) `ULTRAVC_BAL_SOURCE`.
    pub fn open(path: &Path, tier: SourceTier) -> Result<ByteSource, BalError> {
        // mmap is "chosen" (fallback to streaming allowed) only when it is
        // the Auto default; a caller- or env-pinned mmap must surface a
        // mapping failure instead of silently serving another tier.
        let (resolved, mmap_pinned) = match tier {
            SourceTier::Auto => match SourceTier::env_pin()? {
                Some(pinned) => (pinned, pinned == SourceTier::Mmap),
                None => (SourceTier::Mmap, false),
            },
            explicit => (explicit, explicit == SourceTier::Mmap),
        };
        match resolved {
            SourceTier::Mem => {
                let data = std::fs::read(path)?;
                Ok(ByteSource::Mem(Bytes::from(data)))
            }
            SourceTier::Stream => Ok(ByteSource::Stream(Arc::new(StreamFile::open(path)?))),
            SourceTier::Mmap => {
                let file = File::open(path)?;
                match memmap2::Mmap::map(&file) {
                    Ok(map) => Ok(ByteSource::Mmap(Arc::new(map))),
                    Err(e) if mmap_pinned => Err(BalError::Io(e)),
                    Err(_) => Ok(ByteSource::Stream(Arc::new(StreamFile::from_file(file)?))),
                }
            }
            SourceTier::Auto => unreachable!("Auto resolved above"),
        }
    }
}

/// The streaming tier's backing: an open descriptor plus the length
/// observed at open time. Reads are positioned (`pread`-style), so many
/// threads can share one descriptor without a seek-offset race.
#[derive(Debug)]
pub struct StreamFile {
    file: File,
    len: usize,
    /// Non-Unix fallback path: positioned reads emulated under a lock.
    #[cfg(not(unix))]
    seek_lock: std::sync::Mutex<()>,
}

impl StreamFile {
    /// Open `path` for streaming reads.
    pub fn open(path: &Path) -> Result<StreamFile, BalError> {
        StreamFile::from_file(File::open(path)?)
    }

    /// Wrap an already-open descriptor.
    pub fn from_file(file: File) -> Result<StreamFile, BalError> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| BalError::Corrupt("file larger than usize"))?;
        Ok(StreamFile {
            file,
            len,
            #[cfg(not(unix))]
            seek_lock: std::sync::Mutex::new(()),
        })
    }

    /// Length observed at open time.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file was empty at open time.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read exactly `[offset, offset + len)` into a fresh buffer. The
    /// caller (`ByteSource::slice`) has already bounds-checked the range
    /// against the open-time length.
    ///
    /// Positioned reads are not `read_exact`: the kernel may return fewer
    /// bytes than asked (signals, pipes-backed filesystems, readahead
    /// boundaries) and may fail with `EINTR` without transferring
    /// anything, so this loops `read_exact_at`-style until the buffer is
    /// full. Hitting end-of-file first means the file shrank between
    /// `open` and this read — the concurrent-writer case the module docs
    /// call out — and is reported as [`BalError::Corrupt`], not an
    /// unchecked I/O error (and certainly not a panic).
    fn read_range(&self, offset: usize, len: usize) -> Result<Vec<u8>, BalError> {
        let mut buf = vec![0u8; len];
        let mut filled = 0usize;
        while filled < len {
            let r = {
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    self.file
                        .read_at(&mut buf[filled..], (offset + filled) as u64)
                }
                #[cfg(not(unix))]
                {
                    use std::io::{Read, Seek, SeekFrom};
                    // A panic while holding the lock leaves no partial
                    // state behind (the seek is re-issued every attempt),
                    // so a poisoned lock is safe to recover.
                    let _guard = self
                        .seek_lock
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let mut f = &self.file;
                    // Re-seek every attempt: a retried short read must
                    // continue from where the previous one stopped.
                    f.seek(SeekFrom::Start((offset + filled) as u64))
                        .and_then(|_| f.read(&mut buf[filled..]))
                }
            };
            match r {
                Ok(0) => {
                    return Err(BalError::Corrupt(
                        "file truncated while reading (shrank after open)",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(BalError::Io(e)),
            }
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, data: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("ultravc-io-{}-{tag}.bin", std::process::id()));
        File::create(&path).unwrap().write_all(data).unwrap();
        path
    }

    #[test]
    fn all_tiers_serve_identical_slices() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let path = temp_file("tiers", &data);
        let sources = [
            ByteSource::Mem(Bytes::from(data.clone())),
            ByteSource::open(&path, SourceTier::Mmap).unwrap(),
            ByteSource::open(&path, SourceTier::Stream).unwrap(),
        ];
        for src in &sources {
            assert_eq!(src.len(), data.len());
            for (off, len) in [(0usize, 16usize), (100, 0), (9_990, 10), (0, 10_000)] {
                assert_eq!(
                    &src.slice(off, len).unwrap()[..],
                    &data[off..off + len],
                    "{} [{off}, +{len})",
                    src.tier_name()
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_slices_are_corrupt_not_panics() {
        let path = temp_file("oob", &[1, 2, 3, 4]);
        for src in [
            ByteSource::Mem(Bytes::from(vec![1, 2, 3, 4])),
            ByteSource::open(&path, SourceTier::Mmap).unwrap(),
            ByteSource::open(&path, SourceTier::Stream).unwrap(),
        ] {
            assert!(matches!(
                src.slice(0, 5),
                Err(BalError::Corrupt("byte range past end of file"))
            ));
            assert!(matches!(src.slice(4, 1), Err(BalError::Corrupt(_))));
            assert!(matches!(
                src.slice(usize::MAX, 2),
                Err(BalError::Corrupt("byte range overflows"))
            ));
            assert_eq!(&src.slice(4, 0).unwrap()[..], b"", "empty at EOF is fine");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tier_resolution_prefers_explicit() {
        assert_eq!(SourceTier::Mem.resolved(), SourceTier::Mem);
        assert_eq!(SourceTier::Mmap.resolved(), SourceTier::Mmap);
        assert_eq!(SourceTier::Stream.resolved(), SourceTier::Stream);
        // Auto resolves to something concrete.
        assert_ne!(SourceTier::Auto.resolved(), SourceTier::Auto);
    }

    #[test]
    fn stream_read_of_truncated_file_is_corrupt() {
        // The concurrent-writer case: the file shrinks between `open` and
        // a payload read. The open-time length still bounds-checks the
        // request, so the failure must come from the read loop itself —
        // as `Corrupt`, not an unchecked error or a panic.
        let data = vec![9u8; 8_192];
        let path = temp_file("shrunk", &data);
        let src = ByteSource::open(&path, SourceTier::Stream).unwrap();
        assert_eq!(src.len(), data.len());
        // Shrink the file on disk underneath the open descriptor.
        File::create(&path).unwrap().write_all(&[9u8; 100]).unwrap();
        assert_eq!(&src.slice(0, 100).unwrap()[..], &data[..100]);
        assert!(matches!(
            src.slice(0, 8_192),
            Err(BalError::Corrupt(
                "file truncated while reading (shrank after open)"
            ))
        ));
        assert!(matches!(src.slice(4_000, 200), Err(BalError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advise_applies_only_on_the_mmap_tier() {
        let data = vec![5u8; 10_000];
        let path = temp_file("advise", &data);
        let mem = ByteSource::Mem(Bytes::from(data));
        let mmap = ByteSource::open(&path, SourceTier::Mmap).unwrap();
        let stream = ByteSource::open(&path, SourceTier::Stream).unwrap();
        // The mmap tier reports hints as applied only when the shim's
        // backend issues real madvise calls (not the buffered fallback).
        let real_hints = memmap2::Mmap::advice_effective();
        for advice in [Advice::Sequential, Advice::WillNeed, Advice::Normal] {
            assert!(!mem.advise(advice, 0, 10_000).unwrap());
            assert!(!stream.advise(advice, 100, 500).unwrap());
            assert_eq!(mmap.advise(advice, 0, 10_000).unwrap(), real_hints);
            assert_eq!(mmap.advise(advice, 4_097, 123).unwrap(), real_hints);
        }
        for src in [&mem, &mmap, &stream] {
            assert!(matches!(
                src.advise(Advice::WillNeed, 9_999, 2),
                Err(BalError::Corrupt("byte range past end of file"))
            ));
            assert!(matches!(
                src.advise(Advice::WillNeed, usize::MAX, 2),
                Err(BalError::Corrupt("byte range overflows"))
            ));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn env_pin_parser_is_strict_but_only_consulted_for_auto() {
        // The parser itself: exact values only.
        assert_eq!(SourceTier::parse_pin("").unwrap(), None);
        assert_eq!(SourceTier::parse_pin("mem").unwrap(), Some(SourceTier::Mem));
        assert_eq!(
            SourceTier::parse_pin("mmap").unwrap(),
            Some(SourceTier::Mmap)
        );
        assert_eq!(
            SourceTier::parse_pin("stream").unwrap(),
            Some(SourceTier::Stream)
        );
        for bad in ["Mmap", "disk", "auto", "mmap ", "1"] {
            assert!(SourceTier::parse_pin(bad).is_err(), "{bad:?}");
        }
        // Explicit tiers never read the environment: opening with every
        // explicit tier succeeds regardless of what ULTRAVC_BAL_SOURCE
        // holds in this process (the disk-ingest CI legs run this test
        // under each pin; an explicit-tier open consulting the variable
        // would make `Auto`-only validation unobservable).
        let path = temp_file("precedence", &[1, 2, 3, 4]);
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let src = ByteSource::open(&path, tier).unwrap();
            assert_eq!(
                src.tier_name(),
                match tier {
                    SourceTier::Mem => "mem",
                    SourceTier::Mmap => "mmap",
                    SourceTier::Stream => "stream",
                    SourceTier::Auto => unreachable!(),
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("ultravc-io-definitely-missing.bal");
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            assert!(matches!(
                ByteSource::open(&path, tier),
                Err(BalError::Io(_))
            ));
        }
    }
}
