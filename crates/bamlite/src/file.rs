//! The BAL container: blocked storage, genomic index, per-thread readers.
//!
//! Layout (identical container framing for every version):
//!
//! ```text
//! "BAL3" · block₀ · block₁ · … · index · dict · index_offset(u64 LE) · "BEND"
//! ```
//!
//! Each block is an independently decodable run of position-sorted records.
//! The index records every block's byte range plus its genomic extent
//! `[min_pos, max_end)`, so a region query touches only the blocks it must
//! — this is the `.bai` analogue that lets each worker thread of the
//! parallel caller jump straight to its partition with its own independent
//! reader.
//!
//! **Format versions.** The index and trailer schema never changed; only
//! the block payload encoding did, so cost estimates and prefetch plans
//! built from the index are format-independent by construction.
//!
//! * **v1** (`"BAL1"`): interleaved per-record fields, raw Phred RLE
//!   qualities, no dictionary (decoded through the identity dictionary).
//! * **v2** (`"BAL2"`): interleaved per-record fields, but qualities are
//!   **bin indices** against a per-file [`QualityDict`] (built at write
//!   time from the observed spectrum and serialized after the index), so
//!   decode hands the pileup layer pre-binned qualities without a per-base
//!   Phred→probability translation.
//! * **v3** (`"BAL3"`, the default): **columnar** block payloads. The
//!   payload is a record count, four varint stream lengths, then four
//!   independently compressed streams laid back to back:
//!
//!   ```text
//!   n_records · len(meta) · len(cigar) · len(base) · len(qual)
//!     · meta-stream · cigar-stream · base-stream · qual-stream
//!   ```
//!
//!   The *meta* stream interleaves the small per-record fields (position
//!   delta, id, mapq, flags, cigar-op count, read length); the *cigar*
//!   stream concatenates every record's ops; the *base* stream
//!   concatenates each record's 2-bit packed codes (byte aligned per
//!   record); the *qual* stream concatenates each record's qual-bin
//!   indices verbatim. Each stream is wrapped in a
//!   [`crate::codec::compress_stream`] container (raw / RLE / LZ —
//!   smallest wins, but only if it at least halves the bytes; marginal
//!   winners stay raw so decode CPU is never spent on sub-2× savings), so
//!   the redundant base and qual columns of an
//!   ultra-deep viral stack crush while the decoder stays a bulk
//!   decompress plus one linear columnar walk into the same arenas the v2
//!   path fills.
//!
//! Older versions remain fully readable through the same [`BalFile::open`];
//! all three decode bitwise-identically through every tier and decode
//! path. Writers default to v3; `ULTRAVC_BAL_FORMAT=1|2|3` pins the
//! default (CI uses it to keep the legacy write paths exercised) and the
//! CLI's `simulate --format` overrides per file.

use crate::batch::{QualityDict, RecordBatch, QUAL_SLOTS};
use crate::cigar::{Cigar, CigarOp};
use crate::codec::{
    compress_stream, get_bytes, get_varint, put_bytes, put_u64_le, put_varint, rle_decode,
    rle_encode,
};
use crate::io::{fault::FaultPlan, ByteSource, IoBudget, SourceTier};
use crate::record::{Flags, Record};
use crate::BalError;
use bytes::{Buf, Bytes};
use std::borrow::Cow;
use std::path::Path;
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;
use ultravc_sync::Arc;

const MAGIC_V1: &[u8; 4] = b"BAL1";
const MAGIC_V2: &[u8; 4] = b"BAL2";
const MAGIC_V3: &[u8; 4] = b"BAL3";
const INDEX_MAGIC: &[u8; 4] = b"BIDX";
const DICT_MAGIC: &[u8; 4] = b"BDCT";
const END_MAGIC: &[u8; 4] = b"BEND";

/// Upper bound on a single read length accepted by the decoder; corrupt
/// length fields beyond this are rejected instead of allocated.
const MAX_READ_LEN: usize = 1 << 20;

/// Upper bound on one decompressed v3 stream (per block). The decoder
/// refuses anything larger before allocating, and the writer splits blocks
/// whose estimated raw streams would approach it, so legitimate files
/// always decode and corrupt headers cannot size absurd allocations.
pub(crate) const MAX_STREAM_RAW: usize = 1 << 26;

/// Convert a varint-decoded count/length to `usize`, rejecting anything
/// past [`MAX_READ_LEN`]. The conversion happens **before** the bound
/// check, so a value that would wrap a 32-bit `usize` cannot sneak under
/// the cap.
pub(crate) fn checked_len(v: u64, what: &'static str) -> Result<usize, BalError> {
    usize::try_from(v)
        .ok()
        .filter(|&n| n <= MAX_READ_LEN)
        .ok_or(BalError::Corrupt(what))
}

/// Default records per block. Small enough that region queries stay tight,
/// large enough that per-block overhead is negligible.
pub const DEFAULT_BLOCK_CAPACITY: usize = 1024;

/// Index entry for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte offset of the block payload within the file.
    pub offset: usize,
    /// Byte length of the block payload.
    pub len: usize,
    /// Smallest record start position in the block.
    pub min_pos: u32,
    /// Largest exclusive record end position in the block.
    pub max_end: u32,
    /// Number of records in the block.
    pub n_records: u32,
}

/// Decode-side accounting: how much compressed data was expanded and how
/// long it took. The trace harness uses this to attribute "decompression"
/// work as the paper's Figure 2 does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Blocks decoded.
    pub blocks: u64,
    /// Compressed payload bytes consumed.
    pub bytes_in: u64,
    /// Records materialized.
    pub records_out: u64,
    /// Wall time spent inside block decoding.
    pub decode_time: std::time::Duration,
}

impl DecodeStats {
    /// Fold another accumulator in (per-thread stats reduction).
    pub fn merge(&mut self, other: &DecodeStats) {
        self.blocks += other.blocks;
        self.bytes_in += other.bytes_in;
        self.records_out += other.records_out;
        self.decode_time += other.decode_time;
    }
}

/// Raw-vs-stored accounting for one v3 stream kind across a whole write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Uncompressed stream bytes.
    pub raw: u64,
    /// Bytes as stored (compression container included).
    pub compressed: u64,
}

/// Write-side accounting from [`BalWriter::finish_with_stats`] — the
/// bytes/base and per-stream compression-ratio numbers `bench_ingest`
/// records for the Table-1 scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Blocks written.
    pub blocks: u64,
    /// Records written.
    pub records: u64,
    /// Total read bases written.
    pub bases: u64,
    /// Total block payload bytes as stored.
    pub payload_bytes: u64,
    /// Per-stream accounting in payload order (meta, cigar, base, qual).
    /// All-zero for v1/v2, whose interleaved payloads have no streams.
    pub streams: [StreamStats; 4],
}

impl WriterStats {
    /// Display names for [`WriterStats::streams`] entries, in order.
    pub const STREAM_NAMES: [&'static str; 4] = ["meta", "cigar", "base", "qual"];
}

/// An immutable BAL file. Cheap to clone (shared [`ByteSource`] + shared
/// index + shared dictionary), so every thread can hold its own handle.
///
/// The backing bytes live behind a [`ByteSource`]: wholly in memory
/// (writer output, [`BalFile::from_bytes`]), memory-mapped, or streamed
/// from an open descriptor ([`BalFile::open`]); block payloads are pulled
/// from the source on demand, so a disk-backed ultra-deep file is never
/// copied whole into memory.
#[derive(Debug, Clone)]
pub struct BalFile {
    source: ByteSource,
    index: Arc<[BlockMeta]>,
    dict: Arc<QualityDict>,
    version: u8,
    /// Supervision budget payload reads run under (`None` = direct reads,
    /// the pre-supervisor behaviour benches use as the overhead baseline).
    budget: Option<Arc<IoBudget>>,
}

/// On-disk format version a [`BalWriter`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatVersion {
    /// Legacy: interleaved records, raw Phred RLE, no quality dictionary.
    V1,
    /// Interleaved records with bin-indexed qualities against a per-file
    /// [`QualityDict`].
    V2,
    /// Columnar, per-stream-compressed block payloads (default); see the
    /// module docs for the stream layout.
    V3,
}

impl FormatVersion {
    /// The version writers default to: v3, unless `ULTRAVC_BAL_FORMAT`
    /// pins `1`/`2`/`3` (or `v1`/`v2`/`v3`). CI uses the pin to keep the
    /// legacy write paths exercised. An unrecognized value panics — a
    /// typoed pin must not silently write the wrong format.
    pub fn default_version() -> FormatVersion {
        match std::env::var("ULTRAVC_BAL_FORMAT") {
            Err(_) => FormatVersion::V3,
            Ok(raw) => match raw.trim() {
                "" | "3" | "v3" => FormatVersion::V3,
                "2" | "v2" => FormatVersion::V2,
                "1" | "v1" => FormatVersion::V1,
                other => panic!("ULTRAVC_BAL_FORMAT must be 1, 2 or 3; got {other:?}"),
            },
        }
    }

    /// The version byte stored in the container.
    fn as_byte(self) -> u8 {
        match self {
            FormatVersion::V1 => 1,
            FormatVersion::V2 => 2,
            FormatVersion::V3 => 3,
        }
    }
}

/// Writer: push position-sorted records, receive a [`BalFile`].
///
/// The v2/v3 encoders need the whole quality spectrum before they can
/// assign bin indices, so records are buffered and blocks are encoded at
/// [`BalWriter::finish`]. (Every producer in this workspace builds files
/// in memory anyway — the simulator, the CLI, the benches.)
#[derive(Debug)]
pub struct BalWriter {
    block_capacity: usize,
    version: FormatVersion,
    records: Vec<Record>,
    prev_pos: Option<u32>,
}

impl BalWriter {
    /// Default-format writer ([`FormatVersion::default_version`]) with the
    /// default block capacity.
    pub fn new() -> BalWriter {
        BalWriter::with_options(DEFAULT_BLOCK_CAPACITY, FormatVersion::default_version())
    }

    /// Default-format writer with an explicit records-per-block bound (≥ 1).
    pub fn with_block_capacity(block_capacity: usize) -> BalWriter {
        BalWriter::with_options(block_capacity, FormatVersion::default_version())
    }

    /// Legacy v1 writer (compatibility shim; round-trip parity tests).
    pub fn legacy() -> BalWriter {
        BalWriter::with_options(DEFAULT_BLOCK_CAPACITY, FormatVersion::V1)
    }

    /// Writer with explicit block capacity and format version.
    pub fn with_options(block_capacity: usize, version: FormatVersion) -> BalWriter {
        assert!(block_capacity >= 1, "block capacity must be positive");
        BalWriter {
            block_capacity,
            version,
            records: Vec::new(),
            prev_pos: None,
        }
    }

    /// Append a record; must be in non-decreasing position order.
    pub fn push(&mut self, rec: Record) -> Result<(), BalError> {
        if let Some(prev) = self.prev_pos {
            if rec.pos < prev {
                return Err(BalError::Unsorted {
                    prev,
                    next: rec.pos,
                });
            }
        }
        self.prev_pos = Some(rec.pos);
        self.records.push(rec);
        Ok(())
    }

    /// Finish the file: build the quality dictionary (v2/v3), encode
    /// blocks, index, dictionary section and trailer.
    pub fn finish(self) -> BalFile {
        self.finish_with_stats().0
    }

    /// [`BalWriter::finish`], also reporting write-side compression
    /// accounting (per-stream raw-vs-stored bytes for v3; the stream rows
    /// stay zero for the interleaved v1/v2 formats).
    pub fn finish_with_stats(self) -> (BalFile, WriterStats) {
        let version = self.version.as_byte();
        let dict = match self.version {
            FormatVersion::V1 => QualityDict::identity(),
            FormatVersion::V2 | FormatVersion::V3 => {
                let mut counts = [0u64; QUAL_SLOTS];
                for rec in &self.records {
                    for q in &rec.quals {
                        counts[(q.0 as usize).min(QUAL_SLOTS - 1)] += 1;
                    }
                }
                QualityDict::from_histogram(&counts)
            }
        };
        let mut out = match self.version {
            FormatVersion::V1 => MAGIC_V1.to_vec(),
            FormatVersion::V2 => MAGIC_V2.to_vec(),
            FormatVersion::V3 => MAGIC_V3.to_vec(),
        };
        // Block chunking: the records-per-block cap applies to every
        // format; v3 adds a raw-byte budget so no block's decompressed
        // stream can approach the decoder's [`MAX_STREAM_RAW`] cap.
        // Normal inputs never trip the byte budget, so v3 chunk boundaries
        // match v1/v2 exactly and index-derived cost estimates stay
        // format-independent.
        let v3 = matches!(self.version, FormatVersion::V3);
        const RAW_BUDGET: u64 = (MAX_STREAM_RAW / 2) as u64;
        let mut bounds: Vec<(usize, usize)> = Vec::new();
        {
            let mut start = 0usize;
            let mut est = 0u64;
            for (i, rec) in self.records.iter().enumerate() {
                let rec_est = 2 * rec.seq.len() as u64 + 10 * rec.cigar.ops().len() as u64 + 32;
                if i - start >= self.block_capacity
                    || (v3 && i > start && est + rec_est > RAW_BUDGET)
                {
                    bounds.push((start, i));
                    start = i;
                    est = 0;
                }
                est += rec_est;
            }
            if start < self.records.len() {
                bounds.push((start, self.records.len()));
            }
        }
        let mut stats = WriterStats::default();
        let mut metas = Vec::new();
        let mut qual_scratch = Vec::new();
        // v3 columnar stream scratch, reused across blocks.
        let (mut s_meta, mut s_cigar, mut s_base, mut s_qual) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let mut packed_streams: Vec<u8> = Vec::new();
        for (bs, be) in bounds {
            let block = &self.records[bs..be];
            let offset = out.len();
            let min_pos = block.first().map(|r| r.pos).unwrap_or(0);
            let max_end = block.iter().map(Record::end_pos).max().unwrap_or(0);
            let n_records = block.len() as u32;
            let mut payload = Vec::new();
            put_varint(&mut payload, n_records as u64);
            let mut prev = 0u32;
            if v3 {
                s_meta.clear();
                s_cigar.clear();
                s_base.clear();
                s_qual.clear();
                for rec in block {
                    put_varint(&mut s_meta, (rec.pos - prev) as u64);
                    prev = rec.pos;
                    put_varint(&mut s_meta, rec.id);
                    s_meta.push(rec.mapq);
                    s_meta.push(rec.flags.0);
                    put_varint(&mut s_meta, rec.cigar.ops().len() as u64);
                    put_varint(&mut s_meta, rec.seq.len() as u64);
                    for op in rec.cigar.ops() {
                        put_varint(&mut s_cigar, ((op.len() as u64) << 2) | op.code() as u64);
                    }
                    s_base.extend_from_slice(rec.seq.packed_bytes());
                    s_qual.extend(rec.quals.iter().map(|&q| dict.bin_of(q)));
                    stats.bases += rec.seq.len() as u64;
                }
                packed_streams.clear();
                let mut lens = [0usize; 4];
                let raws: [&[u8]; 4] = [&s_meta, &s_cigar, &s_base, &s_qual];
                for (si, raw) in raws.into_iter().enumerate() {
                    let before = packed_streams.len();
                    compress_stream(&mut packed_streams, raw);
                    lens[si] = packed_streams.len() - before;
                    stats.streams[si].raw += raw.len() as u64;
                    stats.streams[si].compressed += lens[si] as u64;
                }
                for len in lens {
                    put_varint(&mut payload, len as u64);
                }
                payload.extend_from_slice(&packed_streams);
            } else {
                for rec in block {
                    put_varint(&mut payload, (rec.pos - prev) as u64);
                    prev = rec.pos;
                    put_varint(&mut payload, rec.id);
                    payload.push(rec.mapq);
                    payload.push(rec.flags.0);
                    put_varint(&mut payload, rec.cigar.ops().len() as u64);
                    for op in rec.cigar.ops() {
                        put_varint(&mut payload, ((op.len() as u64) << 2) | op.code() as u64);
                    }
                    put_varint(&mut payload, rec.seq.len() as u64);
                    put_bytes(&mut payload, rec.seq.packed_bytes());
                    qual_scratch.clear();
                    match self.version {
                        FormatVersion::V1 => qual_scratch.extend(rec.quals.iter().map(|q| q.0)),
                        FormatVersion::V2 | FormatVersion::V3 => {
                            qual_scratch.extend(rec.quals.iter().map(|&q| dict.bin_of(q)))
                        }
                    }
                    rle_encode(&mut payload, &qual_scratch);
                    stats.bases += rec.seq.len() as u64;
                }
            }
            stats.blocks += 1;
            stats.records += n_records as u64;
            stats.payload_bytes += payload.len() as u64;
            out.extend_from_slice(&payload);
            metas.push(BlockMeta {
                offset,
                len: payload.len(),
                min_pos,
                max_end,
                n_records,
            });
        }
        let index_offset = out.len() as u64;
        // Index.
        out.extend_from_slice(INDEX_MAGIC);
        put_varint(&mut out, metas.len() as u64);
        for m in &metas {
            put_varint(&mut out, m.offset as u64);
            put_varint(&mut out, m.len as u64);
            put_varint(&mut out, m.min_pos as u64);
            put_varint(&mut out, m.max_end as u64);
            put_varint(&mut out, m.n_records as u64);
        }
        // Dictionary section (v2 only).
        if version >= 2 {
            out.extend_from_slice(DICT_MAGIC);
            out.push(dict.spilled() as u8);
            put_varint(&mut out, dict.quals().len() as u64);
            out.extend(dict.quals().iter().map(|q| q.0));
        }
        // Trailer.
        put_u64_le(&mut out, index_offset);
        out.extend_from_slice(END_MAGIC);
        let file = BalFile {
            source: ByteSource::Mem(Bytes::from(out)),
            index: metas.into(),
            dict: Arc::new(dict),
            version,
            budget: None,
        };
        (file, stats)
    }
}

impl Default for BalWriter {
    fn default() -> Self {
        BalWriter::new()
    }
}

impl BalFile {
    /// Build a default-format file from an iterator of sorted records.
    pub fn from_records<I: IntoIterator<Item = Record>>(records: I) -> Result<BalFile, BalError> {
        let mut w = BalWriter::new();
        for rec in records {
            w.push(rec)?;
        }
        Ok(w.finish())
    }

    /// Build a legacy v1 file from an iterator of sorted records.
    pub fn from_records_legacy<I: IntoIterator<Item = Record>>(
        records: I,
    ) -> Result<BalFile, BalError> {
        let mut w = BalWriter::legacy();
        for rec in records {
            w.push(rec)?;
        }
        Ok(w.finish())
    }

    /// Parse a BAL byte stream (zero-copy; blocks decode lazily).
    pub fn from_bytes(data: Bytes) -> Result<BalFile, BalError> {
        BalFile::from_source(ByteSource::Mem(data))
    }

    /// Open an on-disk BAL file through the default [`SourceTier`]
    /// (mmap, falling back to streaming; `ULTRAVC_BAL_SOURCE` overrides).
    /// Only the index and dictionary are read up front — block payloads
    /// are paged/read in on demand as readers request them.
    pub fn open(path: impl AsRef<Path>) -> Result<BalFile, BalError> {
        BalFile::open_with(path, SourceTier::Auto)
    }

    /// Open an on-disk BAL file through an explicit [`SourceTier`].
    ///
    /// If `ULTRAVC_FAULT` scripts a [`FaultPlan`], the source is wrapped
    /// in the fault tier **after** the index/dictionary parse — opens
    /// succeed and faults land on the payload path, where the run
    /// supervisor operates. A malformed spec is an error (a typo must not
    /// silently run fault-free).
    pub fn open_with(path: impl AsRef<Path>, tier: SourceTier) -> Result<BalFile, BalError> {
        let file = BalFile::from_source(ByteSource::open(path.as_ref(), tier)?)?;
        match FaultPlan::env_plan()? {
            Some(plan) => Ok(file.with_faults(plan)),
            None => Ok(file),
        }
    }

    /// Parse a BAL file from any [`ByteSource`].
    ///
    /// Every length and offset in the container — the trailer's
    /// `index_offset`, each index entry's byte range and record count,
    /// the dictionary size — is bounds- and overflow-checked here, so a
    /// corrupt or truncated file yields [`BalError::Corrupt`] rather than
    /// an out-of-bounds panic or an absurd allocation.
    pub fn from_source(source: ByteSource) -> Result<BalFile, BalError> {
        let total = source.len();
        if total < 16 {
            return Err(BalError::Corrupt("missing BAL magic"));
        }
        let version = {
            let head = source.slice(0, 4)?;
            match &head[..] {
                m if m == MAGIC_V1 => 1u8,
                m if m == MAGIC_V2 => 2u8,
                m if m == MAGIC_V3 => 3u8,
                _ => return Err(BalError::Corrupt("missing BAL1/BAL2/BAL3 magic")),
            }
        };
        // Trailer: index_offset (u64 LE) then the BEND magic.
        let index_offset = {
            let trailer = source.slice(total - 12, 12)?;
            if &trailer[8..] != END_MAGIC {
                return Err(BalError::Corrupt("missing BEND trailer"));
            }
            let idx_off_bytes: [u8; 8] = trailer[..8].try_into().expect("slice is 8 bytes");
            u64::from_le_bytes(idx_off_bytes)
        };
        let index_offset = usize::try_from(index_offset)
            .map_err(|_| BalError::Corrupt("index offset out of range"))?;
        // The index must sit between the 4-byte magic and the trailer,
        // with room for its own BIDX magic. `total - 12 ≥ 4` was checked
        // above, so the subtractions cannot underflow.
        if index_offset < 4 || index_offset.checked_add(4).is_none_or(|e| e > total - 12) {
            return Err(BalError::Corrupt("index offset out of range"));
        }
        // Index + dictionary region (owned for the streaming tier,
        // borrowed otherwise) — the only part of a disk-backed file read
        // eagerly.
        let tail = source.slice(index_offset, total - 12 - index_offset)?;
        let mut buf = &tail[..];
        if &buf[..4] != INDEX_MAGIC {
            return Err(BalError::Corrupt("missing BIDX magic"));
        }
        buf = &buf[4..];
        let n_blocks = get_varint(&mut buf).ok_or(BalError::Corrupt("truncated index header"))?;
        let n_blocks = usize::try_from(n_blocks)
            .map_err(|_| BalError::Corrupt("index entry count overflows"))?;
        // Each index entry is at least five varint bytes; a count the
        // remaining buffer cannot possibly hold is corrupt, and rejecting
        // it here keeps `Vec::with_capacity` honest.
        if n_blocks > buf.len() / 5 {
            return Err(BalError::Corrupt("index entry count exceeds index size"));
        }
        let mut metas = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let mut field =
                || get_varint(&mut buf).ok_or(BalError::Corrupt("truncated index entry"));
            let offset = usize::try_from(field()?)
                .map_err(|_| BalError::Corrupt("block offset overflows"))?;
            let len = usize::try_from(field()?)
                .map_err(|_| BalError::Corrupt("block length overflows"))?;
            let min_pos = u32::try_from(field()?)
                .map_err(|_| BalError::Corrupt("block min_pos overflows"))?;
            let max_end = u32::try_from(field()?)
                .map_err(|_| BalError::Corrupt("block max_end overflows"))?;
            let n_records = u32::try_from(field()?)
                .map_err(|_| BalError::Corrupt("block record count overflows"))?;
            let end = offset
                .checked_add(len)
                .ok_or(BalError::Corrupt("block range overflows"))?;
            if offset < 4 || end > index_offset {
                return Err(BalError::Corrupt("block range overlaps index"));
            }
            // v1/v2: a record costs several payload bytes; even one byte
            // per record bounds the decode-side `with_capacity`. v3 blocks
            // are compressed, so the record count can legitimately exceed
            // the stored byte count — the batch decoder instead bounds the
            // count against the *decompressed* meta stream before
            // reserving. A non-empty v3 block still needs its count, four
            // stream lengths and four stream headers.
            if version < 3 {
                if n_records as usize > len {
                    return Err(BalError::Corrupt("block record count exceeds block size"));
                }
            } else if n_records > 0 && len < 13 {
                return Err(BalError::Corrupt("block too small for v3 streams"));
            }
            metas.push(BlockMeta {
                offset,
                len,
                min_pos,
                max_end,
                n_records,
            });
        }
        let dict = if version >= 2 {
            if buf.remaining() < 5 || &buf[..4] != DICT_MAGIC {
                return Err(BalError::Corrupt("missing BDCT quality dictionary"));
            }
            buf = &buf[4..];
            let spilled = buf.get_u8() != 0;
            let n_quals = get_varint(&mut buf).ok_or(BalError::Corrupt("truncated dict header"))?;
            let n_quals = usize::try_from(n_quals)
                .map_err(|_| BalError::Corrupt("dict entry count overflows"))?;
            if buf.remaining() < n_quals {
                return Err(BalError::Corrupt("truncated dict entries"));
            }
            QualityDict::from_bytes(&buf[..n_quals], spilled)?
        } else {
            QualityDict::identity()
        };
        Ok(BalFile {
            source,
            index: metas.into(),
            dict: Arc::new(dict),
            version,
            budget: None,
        })
    }

    /// The serialized byte stream of an **in-memory** file, or `None`
    /// when the file is disk-backed (`open` with the mmap or streaming
    /// tier). Writer output and [`BalFile::from_bytes`] files are always
    /// in-memory, so those callers can safely `expect` the value; code
    /// that may hold any tier should use [`BalFile::source`] (length,
    /// bounded slices) or [`BalFile::write_to`] (full serialization)
    /// instead — no library API panics based on the tier a file happened
    /// to be opened through.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match &self.source {
            ByteSource::Mem(data) => Some(data),
            ByteSource::Mmap(_) | ByteSource::Stream(_) | ByteSource::Fault(_) => None,
        }
    }

    /// The backing byte source.
    pub fn source(&self) -> &ByteSource {
        &self.source
    }

    /// The same file with payload reads routed through the fault tier
    /// executing `plan`. An existing fault wrapper is replaced, not
    /// stacked (an explicit plan — e.g. the CLI's `--fault` — wins over
    /// whatever `ULTRAVC_FAULT` wrapped at open).
    pub fn with_faults(mut self, plan: FaultPlan) -> BalFile {
        self.source = self.source.with_faults(plan);
        self
    }

    /// The same file with payload reads supervised by `budget`: transient
    /// failures are retried with capped backoff, cancellation/deadline
    /// interrupt reads promptly. Shared via `Arc` so every thread's clone
    /// draws on one retry/interrupt state.
    pub fn with_budget(mut self, budget: Arc<IoBudget>) -> BalFile {
        self.budget = Some(budget);
        self
    }

    /// The supervision budget payload reads run under, if any.
    pub fn budget(&self) -> Option<&Arc<IoBudget>> {
        self.budget.as_ref()
    }

    /// Write the full serialized stream to `path` (any tier). Copies in
    /// bounded chunks, so a disk-backed file larger than RAM is never
    /// materialized whole.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), BalError> {
        use std::io::Write;
        const CHUNK: usize = 4 << 20;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        let total = self.source.len();
        let mut off = 0;
        while off < total {
            let n = CHUNK.min(total - off);
            out.write_all(&self.source.slice(off, n)?)?;
            off += n;
        }
        out.flush()?;
        Ok(())
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.index.len()
    }

    /// Total record count (from the index; no decoding).
    pub fn n_records(&self) -> u64 {
        self.index.iter().map(|m| m.n_records as u64).sum()
    }

    /// Block metadata.
    pub fn index(&self) -> &[BlockMeta] {
        &self.index
    }

    /// On-disk format version (1 = raw Phred RLE, 2 = bin-indexed,
    /// 3 = columnar compressed streams).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The file's quality dictionary (identity for v1 files).
    pub fn quality_dict(&self) -> &Arc<QualityDict> {
        &self.dict
    }

    /// A content identity hash over everything the parse committed to:
    /// format version, every block's index entry, and the quality
    /// dictionary. Two files with the same `content_id` index the same
    /// blocks at the same byte ranges with the same quality mapping, so a
    /// result cache can key on it (together with a [`crate::FileFingerprint`]
    /// for cheap on-disk staleness checks) without hashing payload bytes.
    /// FNV-1a; stable across clones and source tiers.
    pub fn content_id(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.version as u64);
        mix(self.index.len() as u64);
        for m in self.index.iter() {
            mix(m.offset as u64);
            mix(m.len as u64);
            mix(m.min_pos as u64);
            mix(m.max_end as u64);
            mix(m.n_records as u64);
        }
        mix(self.dict.spilled() as u64);
        mix(self.dict.quals().len() as u64);
        for q in self.dict.quals() {
            mix(q.0 as u64);
        }
        h
    }

    /// Raw payload bytes of one block: borrowed straight from the mapping
    /// or in-memory buffer, read into an owned buffer on the streaming
    /// tier. Ranges are re-checked against the source, so even a
    /// hand-built index cannot reach out of bounds.
    pub(crate) fn block_payload(&self, meta: &BlockMeta) -> Result<Cow<'_, [u8]>, BalError> {
        match &self.budget {
            None => self.source.slice(meta.offset, meta.len),
            // Retries happen *below* the block cache: a transient fault
            // retried away here never reaches a cache slot, so it cannot
            // be cached as a permanent failure.
            Some(b) => b.run_io(|| self.source.slice(meta.offset, meta.len)),
        }
    }

    /// Largest exclusive end position across all records (0 when empty) —
    /// effectively the covered genome extent.
    pub fn max_end(&self) -> u32 {
        self.index.iter().map(|m| m.max_end).max().unwrap_or(0)
    }

    /// A fresh independent reader. Threads each create their own; readers
    /// share the underlying bytes but no mutable state.
    pub fn reader(&self) -> BalReader {
        BalReader {
            file: self.clone(),
            stats: DecodeStats::default(),
        }
    }

    /// The block indices whose genomic extent overlaps `[start, end)`.
    ///
    /// Blocks are sorted by `min_pos`, so everything at or past the first
    /// block with `min_pos ≥ end` is excluded by binary search; `max_end`
    /// is *not* monotone (a long read early in the file can span far), so
    /// the remaining prefix is filtered linearly — the same trade-off the
    /// `.bai` linear index makes.
    pub fn blocks_overlapping(&self, start: u32, end: u32) -> Vec<usize> {
        if start >= end || self.index.is_empty() {
            return Vec::new();
        }
        let hi = self.index.partition_point(|m| m.min_pos < end);
        (0..hi).filter(|&i| self.index[i].max_end > start).collect()
    }
}

/// A sequential decoder over a [`BalFile`]. One per thread.
#[derive(Debug, Clone)]
pub struct BalReader {
    file: BalFile,
    stats: DecodeStats,
}

impl BalReader {
    /// Decode block `i` into owned records — the **legacy** per-record
    /// path, kept as a compatibility shim (and the field-for-field oracle
    /// the batch path is tested against). The hot ingest path is
    /// [`BalReader::decode_batch`].
    pub fn decode_block(&mut self, i: usize) -> Result<Vec<Record>, BalError> {
        let t0 = std::time::Instant::now();
        if self.file.version >= 3 {
            // v3 payloads are columnar: there is exactly one decoder (the
            // batch path), so the legacy shim materializes records from
            // its arenas — parity with `decode_batch` by construction.
            let mut batch = RecordBatch::new();
            crate::batch::decode_block_into(&self.file, i, &mut batch)?;
            let records: Vec<Record> = batch
                .views()
                .map(|v| v.to_record(&self.file.dict))
                .collect();
            self.stats.blocks += 1;
            self.stats.bytes_in += self.file.index[i].len as u64;
            self.stats.records_out += records.len() as u64;
            self.stats.decode_time += t0.elapsed();
            return Ok(records);
        }
        let meta = *self
            .file
            .index
            .get(i)
            .ok_or(BalError::Corrupt("block index out of range"))?;
        let payload = self.file.block_payload(&meta)?;
        let mut buf = &payload[..];
        let n = get_varint(&mut buf).ok_or(BalError::Corrupt("truncated block header"))?;
        if n != meta.n_records as u64 {
            return Err(BalError::Corrupt("record count mismatch"));
        }
        let dict = if self.file.version >= 2 {
            Some(&*self.file.dict)
        } else {
            None
        };
        let mut records = Vec::with_capacity(n as usize);
        let mut prev = 0u32;
        for _ in 0..n {
            let rec = decode_record(&mut buf, &mut prev, dict)?;
            records.push(rec);
        }
        self.stats.blocks += 1;
        self.stats.bytes_in += meta.len as u64;
        self.stats.records_out += n;
        self.stats.decode_time += t0.elapsed();
        Ok(records)
    }

    /// Decode block `i` into a reusable arena [`RecordBatch`] — the
    /// zero-alloc batch path (no per-record heap objects; a warmed batch
    /// is never reallocated). Decode accounting lands in the same
    /// [`DecodeStats`] as the legacy path.
    pub fn decode_batch(&mut self, i: usize, batch: &mut RecordBatch) -> Result<(), BalError> {
        let t0 = std::time::Instant::now();
        crate::batch::decode_block_into(&self.file, i, batch)?;
        self.stats.blocks += 1;
        self.stats.bytes_in += self.file.index[i].len as u64;
        self.stats.records_out += batch.len() as u64;
        self.stats.decode_time += t0.elapsed();
        Ok(())
    }

    /// Iterate all records in the file, block by block.
    pub fn records(&mut self) -> Result<Vec<Record>, BalError> {
        let mut out = Vec::new();
        for i in 0..self.file.n_blocks() {
            out.extend(self.decode_block(i)?);
        }
        Ok(out)
    }

    /// All records whose alignment overlaps `[start, end)` — the region
    /// query a parallel worker issues for its column partition.
    pub fn records_overlapping(&mut self, start: u32, end: u32) -> Result<Vec<Record>, BalError> {
        let mut out = Vec::new();
        for i in self.file.blocks_overlapping(start, end) {
            for rec in self.decode_block(i)? {
                if rec.pos < end && rec.end_pos() > start {
                    out.push(rec);
                }
            }
        }
        Ok(out)
    }

    /// Cumulative decode accounting for this reader.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }
}

/// Decode one record. `dict` is `Some` for v2 payloads (qualities are bin
/// indices to resolve) and `None` for v1 (qualities are raw scores).
///
/// Every varint-derived quantity is range-checked before use: deltas and
/// positions against `u32`, counts and lengths against [`MAX_READ_LEN`],
/// CIGAR op lengths against their 30 usable bits — corrupt payloads
/// produce [`BalError::Corrupt`], never a wrapping cast or an absurd
/// allocation.
fn decode_record(
    buf: &mut &[u8],
    prev: &mut u32,
    dict: Option<&QualityDict>,
) -> Result<Record, BalError> {
    let delta = get_varint(buf).ok_or(BalError::Corrupt("truncated position"))?;
    let pos = u32::try_from(delta)
        .ok()
        .and_then(|d| prev.checked_add(d))
        .ok_or(BalError::Corrupt("position overflows coordinate space"))?;
    *prev = pos;
    let id = get_varint(buf).ok_or(BalError::Corrupt("truncated id"))?;
    if buf.remaining() < 2 {
        return Err(BalError::Corrupt("truncated mapq/flags"));
    }
    let mapq = buf.get_u8();
    let flags = Flags(buf.get_u8());
    let n_ops = checked_len(
        get_varint(buf).ok_or(BalError::Corrupt("truncated cigar count"))?,
        "absurd cigar op count",
    )?;
    let mut ops = Vec::with_capacity(n_ops);
    let mut ref_len = 0u64;
    for _ in 0..n_ops {
        let v = get_varint(buf).ok_or(BalError::Corrupt("truncated cigar op"))?;
        let op_len =
            u32::try_from(v >> 2).map_err(|_| BalError::Corrupt("cigar op length overflows"))?;
        let op = CigarOp::from_code((v & 0b11) as u8, op_len)
            .ok_or(BalError::Corrupt("bad cigar op code"))?;
        ref_len += op.ref_len() as u64;
        ops.push(op);
    }
    if u64::from(pos) + ref_len > u64::from(u32::MAX) {
        return Err(BalError::Corrupt("alignment extends past coordinate space"));
    }
    let seq_len = checked_len(
        get_varint(buf).ok_or(BalError::Corrupt("truncated seq length"))?,
        "absurd read length",
    )?;
    let packed = get_bytes(buf, seq_len.div_ceil(4)).ok_or(BalError::Corrupt("truncated seq"))?;
    if packed.len() != seq_len.div_ceil(4) {
        return Err(BalError::Corrupt("seq byte count mismatch"));
    }
    let seq = Seq::from_packed(packed, seq_len);
    let qual_bytes =
        rle_decode(buf, seq_len).ok_or(BalError::Corrupt("truncated or oversized quals"))?;
    if qual_bytes.len() != seq_len {
        return Err(BalError::Corrupt("qual length mismatch"));
    }
    let quals: Vec<Phred> = match dict {
        None => qual_bytes.into_iter().map(Phred::new).collect(),
        Some(dict) => {
            let n_bins = dict.len() as u8;
            let mut quals = Vec::with_capacity(seq_len);
            for b in qual_bytes {
                if b >= n_bins {
                    return Err(BalError::Corrupt("quality bin index out of dictionary"));
                }
                quals.push(dict.phred(b));
            }
            quals
        }
    };
    Record::new(id, pos, mapq, flags, seq, quals, Cigar(ops))
        .map_err(|_| BalError::Corrupt("record failed validation"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::sequence::Seq;

    fn mk_record(id: u64, pos: u32, bases: &[u8], q: u8) -> Record {
        let seq = Seq::from_ascii(bases).unwrap();
        let quals = vec![Phred::new(q); seq.len()];
        Record::full_match(id, pos, 60, Flags::none(), seq, quals).unwrap()
    }

    fn sample_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let flags = if i % 2 == 0 {
                    Flags::none()
                } else {
                    Flags::REVERSE
                };
                let seq = Seq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
                let quals: Vec<Phred> = (0..16)
                    .map(|j| Phred::new(20 + ((i + j) % 20) as u8))
                    .collect();
                Record::full_match(i as u64, (i * 3) as u32, 60, flags, seq, quals).unwrap()
            })
            .collect()
    }

    #[test]
    fn roundtrip_identity() {
        let records = sample_records(100);
        let file = BalFile::from_records(records.clone()).unwrap();
        let mut reader = file.reader();
        let decoded = reader.records().unwrap();
        assert_eq!(decoded, records);
        assert_eq!(file.n_records(), 100);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let records = sample_records(50);
        let file = BalFile::from_records(records.clone()).unwrap();
        let bytes = file.as_bytes().expect("writer output is in-memory").clone();
        let reparsed = BalFile::from_bytes(bytes).unwrap();
        assert_eq!(reparsed.n_blocks(), file.n_blocks());
        assert_eq!(reparsed.reader().clone().records().unwrap(), records);
    }

    #[test]
    fn multiple_blocks_created() {
        let mut w = BalWriter::with_block_capacity(16);
        for rec in sample_records(100) {
            w.push(rec).unwrap();
        }
        let file = w.finish();
        assert_eq!(file.n_blocks(), 7); // ceil(100/16)
        assert_eq!(file.n_records(), 100);
        assert_eq!(file.reader().records().unwrap().len(), 100);
    }

    #[test]
    fn unsorted_push_rejected() {
        let mut w = BalWriter::new();
        w.push(mk_record(0, 100, b"ACGT", 30)).unwrap();
        let err = w.push(mk_record(1, 50, b"ACGT", 30)).unwrap_err();
        assert!(matches!(
            err,
            BalError::Unsorted {
                prev: 100,
                next: 50
            }
        ));
        // Equal positions are fine.
        w.push(mk_record(2, 100, b"ACGT", 30)).unwrap();
    }

    #[test]
    fn region_query_returns_exactly_overlapping() {
        let mut w = BalWriter::with_block_capacity(8);
        for rec in sample_records(100) {
            w.push(rec).unwrap();
        }
        let file = w.finish();
        let mut reader = file.reader();
        // Reads are 16 bp at pos 3i; read i overlaps [s,e) iff 3i < e and 3i+16 > s.
        let (s, e) = (40u32, 60u32);
        let got = reader.records_overlapping(s, e).unwrap();
        let expected: Vec<u64> = (0..100u64)
            .filter(|i| (i * 3) < e as u64 && (i * 3 + 16) > s as u64)
            .collect();
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn region_query_empty_and_full() {
        let file = BalFile::from_records(sample_records(20)).unwrap();
        let mut r = file.reader();
        assert!(r.records_overlapping(10_000, 20_000).unwrap().is_empty());
        assert!(r.records_overlapping(5, 5).unwrap().is_empty());
        assert_eq!(r.records_overlapping(0, u32::MAX).unwrap().len(), 20);
    }

    #[test]
    fn decode_stats_accumulate() {
        let file = BalFile::from_records(sample_records(64)).unwrap();
        let mut r = file.reader();
        let _ = r.records().unwrap();
        let stats = r.stats();
        assert_eq!(stats.records_out, 64);
        assert_eq!(stats.blocks as usize, file.n_blocks());
        assert!(stats.bytes_in > 0);
        let mut merged = DecodeStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.records_out, 128);
    }

    #[test]
    fn independent_readers_share_bytes() {
        let file = BalFile::from_records(sample_records(32)).unwrap();
        let mut r1 = file.reader();
        let mut r2 = file.reader();
        let a = r1.records().unwrap();
        let b = r2.records().unwrap();
        assert_eq!(a, b);
        // Stats are per-reader.
        assert_eq!(r1.stats().records_out, 32);
        assert_eq!(r2.stats().records_out, 32);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(BalFile::from_bytes(Bytes::from_static(b"nope")).is_err());
        assert!(BalFile::from_bytes(Bytes::from_static(b"BAL1 but way too short")).is_err());
        let file = BalFile::from_records(sample_records(8)).unwrap();
        let mut bytes = file
            .as_bytes()
            .expect("writer output is in-memory")
            .to_vec();
        // Break the trailer magic.
        let n = bytes.len();
        bytes[n - 1] = b'X';
        assert!(BalFile::from_bytes(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn corrupt_block_payload_detected() {
        let file = BalFile::from_records(sample_records(8)).unwrap();
        let mut bytes = file
            .as_bytes()
            .expect("writer output is in-memory")
            .to_vec();
        // Zero out part of the first block payload (after magic).
        for b in bytes.iter_mut().skip(6).take(4) {
            *b = 0xff;
        }
        let reparsed = BalFile::from_bytes(Bytes::from(bytes));
        // Parsing the index still succeeds; decoding the block must fail
        // loudly rather than return garbage silently.
        if let Ok(f) = reparsed {
            assert!(f.reader().clone().decode_block(0).is_err());
        }
    }

    #[test]
    fn empty_file_roundtrip() {
        let file = BalFile::from_records(Vec::new()).unwrap();
        assert_eq!(file.n_blocks(), 0);
        assert_eq!(file.n_records(), 0);
        assert_eq!(file.max_end(), 0);
        let reparsed = BalFile::from_bytes(file.as_bytes().expect("in-memory").clone()).unwrap();
        assert!(reparsed.reader().clone().records().unwrap().is_empty());
    }

    #[test]
    fn compression_actually_compresses() {
        // Plateau qualities (the realistic Illumina shape) + 2-bit bases:
        // payload must be well under the naive 1 byte/base + 1 byte/qual.
        let records: Vec<Record> = (0..1000u32)
            .map(|i| mk_record(i as u64, i, b"ACGTACGTACGTACGTACGTACGTACGTACGT", 37))
            .collect();
        let naive: usize = records.iter().map(|r| 2 * r.read_len() + 16).sum();
        let file = BalFile::from_records(records).unwrap();
        let actual = file.as_bytes().expect("in-memory").len();
        assert!(
            actual < naive / 2,
            "BAL {actual} bytes vs naive {naive} — codec not earning its keep"
        );
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ultravc-balfile-{}-{tag}.bal", std::process::id()))
    }

    #[test]
    fn open_tiers_decode_identically() {
        let records = sample_records(100);
        let file = BalFile::from_records(records.clone()).unwrap();
        let path = temp_path("tiers");
        file.write_to(&path).unwrap();
        for tier in [
            SourceTier::Auto,
            SourceTier::Mem,
            SourceTier::Mmap,
            SourceTier::Stream,
        ] {
            let disk = BalFile::open_with(&path, tier).unwrap();
            assert_eq!(disk.version(), file.version(), "{tier:?}");
            assert_eq!(disk.index(), file.index(), "{tier:?}");
            assert_eq!(
                disk.quality_dict().as_ref(),
                file.quality_dict().as_ref(),
                "{tier:?}"
            );
            assert_eq!(
                disk.reader().clone().records().unwrap(),
                records,
                "{tier:?} legacy decode"
            );
            let mut mem_batch = RecordBatch::new();
            let mut disk_batch = RecordBatch::new();
            let mut mem_reader = file.reader();
            let mut disk_reader = disk.reader();
            for i in 0..file.n_blocks() {
                mem_reader.decode_batch(i, &mut mem_batch).unwrap();
                disk_reader.decode_batch(i, &mut disk_batch).unwrap();
                assert_eq!(mem_batch, disk_batch, "{tier:?} batch decode, block {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn content_id_stable_across_tiers_and_sensitive_to_content() {
        let records = sample_records(48);
        let file = BalFile::from_records(records.clone()).unwrap();
        // Deterministic: same records, same id.
        assert_eq!(
            BalFile::from_records(records).unwrap().content_id(),
            file.content_id()
        );
        // Sensitive: different record set, different id.
        let other = BalFile::from_records(sample_records(47)).unwrap();
        assert_ne!(other.content_id(), file.content_id());
        // Stable across a disk round trip on every tier.
        let path = temp_path("content-id");
        file.write_to(&path).unwrap();
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let disk = BalFile::open_with(&path, tier).unwrap();
            assert_eq!(disk.content_id(), file.content_id(), "{tier:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_tracks_rewrites() {
        use crate::io::FileFingerprint;
        let path = temp_path("fingerprint");
        BalFile::from_records(sample_records(16))
            .unwrap()
            .write_to(&path)
            .unwrap();
        let before = FileFingerprint::probe(&path).unwrap();
        assert_eq!(before, FileFingerprint::probe(&path).unwrap());
        // Rewriting with different content changes the length, so the
        // fingerprint differs even on coarse-mtime filesystems.
        BalFile::from_records(sample_records(64))
            .unwrap()
            .write_to(&path)
            .unwrap();
        let after = FileFingerprint::probe(&path).unwrap();
        assert_ne!(before, after);
        std::fs::remove_file(&path).ok();
        assert!(FileFingerprint::probe(&path).is_err());
    }

    #[test]
    fn open_reports_missing_file_as_io() {
        let path = temp_path("never-written");
        assert!(matches!(BalFile::open(&path), Err(BalError::Io(_))));
    }

    #[test]
    fn index_offset_past_eof_rejected() {
        // Regression: a corrupt trailer offset used to reach an
        // out-of-bounds slice (or an overflowing add) instead of
        // returning `BalError::Corrupt`.
        let file = BalFile::from_records(sample_records(8)).unwrap();
        let pristine = file.as_bytes().expect("in-memory").to_vec();
        let n = pristine.len();
        for bad in [
            n as u64,           // exactly EOF
            (n as u64) - 1,     // inside the trailer
            (n as u64) + 1_000, // past EOF
            u64::MAX,           // overflows every add
            u64::MAX - 3,
            0,
            3, // inside the magic
        ] {
            let mut bytes = pristine.clone();
            bytes[n - 12..n - 4].copy_from_slice(&bad.to_le_bytes());
            let err = BalFile::from_bytes(Bytes::from(bytes)).unwrap_err();
            assert!(
                matches!(err, BalError::Corrupt(_)),
                "index_offset={bad}: {err}"
            );
        }
    }

    /// A hand-rolled container with valid magics and trailer but a
    /// hostile index section built by `build_index`.
    fn hostile_container(build_index: impl FnOnce(&mut Vec<u8>)) -> Result<BalFile, BalError> {
        let mut out = MAGIC_V2.to_vec();
        out.extend_from_slice(&[0u8; 32]); // payload area
        let index_offset = out.len() as u64;
        out.extend_from_slice(INDEX_MAGIC);
        build_index(&mut out);
        out.extend_from_slice(DICT_MAGIC);
        out.push(0);
        put_varint(&mut out, 0); // empty dictionary
        put_u64_le(&mut out, index_offset);
        out.extend_from_slice(END_MAGIC);
        BalFile::from_bytes(Bytes::from(out))
    }

    #[test]
    fn corrupt_index_entries_rejected_not_panicked() {
        // Sanity: the well-formed empty index parses.
        assert!(hostile_container(|out| put_varint(out, 0)).is_ok());
        // Regression targets: each of these used to wrap a cast, overflow
        // an add, or feed an absurd Vec::with_capacity.
        type IndexBuilder = fn(&mut Vec<u8>);
        let cases: [(&str, IndexBuilder); 5] = [
            ("offset+len overflows usize", |out| {
                put_varint(out, 1);
                for v in [u64::MAX, u64::MAX, 0, 0, 0] {
                    put_varint(out, v);
                }
            }),
            ("block range past index", |out| {
                put_varint(out, 1);
                for v in [4, 1 << 40, 0, 0, 0] {
                    put_varint(out, v);
                }
            }),
            ("min_pos exceeds u32 (was truncated)", |out| {
                put_varint(out, 1);
                for v in [4, 8, u64::MAX, 0, 0] {
                    put_varint(out, v);
                }
            }),
            ("record count exceeds block size", |out| {
                put_varint(out, 1);
                for v in [4, 8, 0, 0, u64::MAX >> 1] {
                    put_varint(out, v);
                }
            }),
            ("absurd block count", |out| {
                put_varint(out, u64::MAX >> 8);
            }),
        ];
        for (what, build) in cases {
            let err = hostile_container(build).unwrap_err();
            assert!(matches!(err, BalError::Corrupt(_)), "{what}: {err}");
        }
    }

    #[test]
    fn v3_roundtrips_and_outcompresses_v2() {
        let records = sample_records(2000);
        let enc = |v: FormatVersion| {
            let mut w = BalWriter::with_options(64, v);
            for rec in records.clone() {
                w.push(rec).unwrap();
            }
            w.finish_with_stats()
        };
        let (v2, s2) = enc(FormatVersion::V2);
        let (v3, s3) = enc(FormatVersion::V3);
        assert_eq!(v3.version(), 3);
        assert_eq!(v3.reader().records().unwrap(), records, "v3 legacy path");
        let mut batch = RecordBatch::new();
        let mut got = Vec::new();
        let mut reader = v3.reader();
        for i in 0..v3.n_blocks() {
            reader.decode_batch(i, &mut batch).unwrap();
            got.extend(batch.views().map(|v| v.to_record(v3.quality_dict())));
        }
        assert_eq!(got, records, "v3 batch path");
        // Same logical blocks: identical index extents and record counts.
        assert_eq!(v2.n_blocks(), v3.n_blocks());
        for (m2, m3) in v2.index().iter().zip(v3.index()) {
            assert_eq!(
                (m2.min_pos, m2.max_end, m2.n_records),
                (m3.min_pos, m3.max_end, m3.n_records)
            );
        }
        // Fewer stored bytes, and the per-stream accounting adds up.
        let (b2, b3) = (
            v2.as_bytes().expect("in-memory").len(),
            v3.as_bytes().expect("in-memory").len(),
        );
        assert!(b3 < b2, "v3 {b3} bytes vs v2 {b2}");
        assert_eq!(s3.records, 2000);
        assert_eq!(s3.bases, s2.bases);
        let stream_sum: u64 = s3.streams.iter().map(|s| s.compressed).sum();
        assert!(stream_sum <= s3.payload_bytes && stream_sum > 0);
        // `compressed` counts one container header (scheme byte + raw-len
        // varint) per block, so a raw-stored stream runs `11 × n_blocks`
        // over its raw bytes at most — never more.
        let header_budget = 11 * v3.n_blocks() as u64;
        assert!(
            s3.streams
                .iter()
                .all(|s| s.compressed <= s.raw + header_budget),
            "no stream expands past the container headers: {:?}",
            s3.streams
        );
        assert_eq!(s2.streams, [StreamStats::default(); 4], "v2 has no streams");
    }

    #[test]
    fn v3_corrupt_stream_framing_rejected_not_panicked() {
        let mut w = BalWriter::with_options(32, FormatVersion::V3);
        for rec in sample_records(100) {
            w.push(rec).unwrap();
        }
        let file = w.finish();
        let pristine = file.as_bytes().expect("in-memory").to_vec();
        let first = file.index()[0];
        // Clobber the stream-length varints right after the record count:
        // decode must fail loudly, through both paths.
        for width in 1..=8usize {
            let mut bytes = pristine.clone();
            for b in bytes
                .iter_mut()
                .skip(first.offset + 1)
                .take(width.min(first.len - 1))
            {
                *b = 0xff;
            }
            let reparsed = BalFile::from_bytes(Bytes::from(bytes)).unwrap();
            assert!(reparsed.reader().clone().decode_block(0).is_err());
            let mut batch = RecordBatch::new();
            assert!(reparsed
                .reader()
                .clone()
                .decode_batch(0, &mut batch)
                .is_err());
        }
        // Hostile in-block truncation: zero the last bytes of the first
        // block payload (the tail of its qual stream container).
        let mut bytes2 = pristine.clone();
        for b in bytes2.iter_mut().skip(first.offset + first.len - 4).take(4) {
            *b = 0;
        }
        let reparsed = BalFile::from_bytes(Bytes::from(bytes2)).unwrap();
        assert!(reparsed.reader().clone().decode_block(0).is_err());
    }

    #[test]
    fn v2_and_v3_arenas_bitwise_identical() {
        // Same records, same dictionary, same chunking: the two formats
        // must fill byte-for-byte identical arenas.
        let records = sample_records(300);
        let enc = |v: FormatVersion| {
            let mut w = BalWriter::with_options(17, v);
            for rec in records.clone() {
                w.push(rec).unwrap();
            }
            w.finish()
        };
        let (v2, v3) = (enc(FormatVersion::V2), enc(FormatVersion::V3));
        assert_eq!(v2.quality_dict(), v3.quality_dict());
        let mut b2 = RecordBatch::new();
        let mut b3 = RecordBatch::new();
        for i in 0..v2.n_blocks() {
            crate::batch::decode_block_into(&v2, i, &mut b2).unwrap();
            crate::batch::decode_block_into(&v3, i, &mut b3).unwrap();
            assert_eq!(b2, b3, "block {i}");
        }
    }

    #[test]
    fn default_format_respects_env_pin() {
        // Not set in the test environment → v3.
        match std::env::var("ULTRAVC_BAL_FORMAT").ok().as_deref() {
            None => assert_eq!(FormatVersion::default_version(), FormatVersion::V3),
            Some("1") | Some("v1") => {
                assert_eq!(FormatVersion::default_version(), FormatVersion::V1)
            }
            Some("2") | Some("v2") => {
                assert_eq!(FormatVersion::default_version(), FormatVersion::V2)
            }
            Some(_) => assert_eq!(FormatVersion::default_version(), FormatVersion::V3),
        }
        let file = BalFile::from_records(sample_records(4)).unwrap();
        assert_eq!(file.version(), FormatVersion::default_version().as_byte());
    }

    #[test]
    fn blocks_overlapping_respects_spans() {
        // A long read in the first block must keep that block eligible for
        // late columns it spans.
        let mut w = BalWriter::with_block_capacity(2);
        let long = Record::full_match(
            0,
            0,
            60,
            Flags::none(),
            Seq::from_ascii(&[b'A'; 100]).unwrap(),
            vec![Phred::new(30); 100],
        )
        .unwrap();
        w.push(long).unwrap();
        w.push(mk_record(1, 5, b"ACGT", 30)).unwrap();
        w.push(mk_record(2, 90, b"ACGT", 30)).unwrap();
        let file = w.finish();
        assert_eq!(file.n_blocks(), 2);
        // Column 92 is covered by the long read (block 0, spans [0,100))
        // and record 2 (block 1, spans [90,94)).
        let mut reader = file.reader();
        let got = reader.records_overlapping(92, 93).unwrap();
        let ids: Vec<u64> = got.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }
}
