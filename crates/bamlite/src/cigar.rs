//! CIGAR strings: the alignment shape of a read against the reference.
//!
//! The pileup engine walks CIGARs to place each read base on its reference
//! column. The simulator only emits `M`-runs (SNV-scale evaluation does not
//! need indel realignment), but the walker handles the full core op set so
//! that real-world-shaped inputs behave correctly.

use serde::{Deserialize, Serialize};

/// One CIGAR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CigarOp {
    /// Alignment match or mismatch (`M`): consumes query and reference.
    Match(u32),
    /// Insertion to the reference (`I`): consumes query only.
    Ins(u32),
    /// Deletion from the reference (`D`): consumes reference only.
    Del(u32),
    /// Soft clip (`S`): query bases present but unaligned.
    SoftClip(u32),
}

impl CigarOp {
    /// Run length of the operation.
    pub fn len(self) -> u32 {
        match self {
            CigarOp::Match(n) | CigarOp::Ins(n) | CigarOp::Del(n) | CigarOp::SoftClip(n) => n,
        }
    }

    /// Whether the op has zero length (invalid in a normalized CIGAR).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Bases of the query (read) consumed.
    pub fn query_len(self) -> u32 {
        match self {
            CigarOp::Match(n) | CigarOp::Ins(n) | CigarOp::SoftClip(n) => n,
            CigarOp::Del(_) => 0,
        }
    }

    /// Bases of the reference consumed.
    pub fn ref_len(self) -> u32 {
        match self {
            CigarOp::Match(n) | CigarOp::Del(n) => n,
            CigarOp::Ins(_) | CigarOp::SoftClip(_) => 0,
        }
    }

    /// SAM operation character.
    pub fn symbol(self) -> char {
        match self {
            CigarOp::Match(_) => 'M',
            CigarOp::Ins(_) => 'I',
            CigarOp::Del(_) => 'D',
            CigarOp::SoftClip(_) => 'S',
        }
    }

    /// Numeric code used by the BAL encoding (2 bits).
    pub fn code(self) -> u8 {
        match self {
            CigarOp::Match(_) => 0,
            CigarOp::Ins(_) => 1,
            CigarOp::Del(_) => 2,
            CigarOp::SoftClip(_) => 3,
        }
    }

    /// Rebuild from a BAL code and length.
    pub fn from_code(code: u8, len: u32) -> Option<CigarOp> {
        match code {
            0 => Some(CigarOp::Match(len)),
            1 => Some(CigarOp::Ins(len)),
            2 => Some(CigarOp::Del(len)),
            3 => Some(CigarOp::SoftClip(len)),
            _ => None,
        }
    }
}

/// A full CIGAR: a sequence of operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Cigar(pub Vec<CigarOp>);

impl Cigar {
    /// A CIGAR consisting of one `M` run — the simulator's common case.
    pub fn full_match(len: u32) -> Cigar {
        Cigar(vec![CigarOp::Match(len)])
    }

    /// Operations in order.
    pub fn ops(&self) -> &[CigarOp] {
        &self.0
    }

    /// Total query bases consumed.
    pub fn query_len(&self) -> u32 {
        self.0.iter().map(|op| op.query_len()).sum()
    }

    /// Total reference bases consumed (the read's reference span).
    pub fn ref_len(&self) -> u32 {
        self.0.iter().map(|op| op.ref_len()).sum()
    }

    /// Parse from SAM text form (e.g. `"100M"`, `"5S90M5S"`, `"50M2D48M"`).
    pub fn parse(s: &str) -> Option<Cigar> {
        if s.is_empty() || s == "*" {
            return Some(Cigar::default());
        }
        let mut ops = Vec::new();
        let mut num = 0u32;
        let mut saw_digit = false;
        for c in s.chars() {
            if let Some(d) = c.to_digit(10) {
                num = num.checked_mul(10)?.checked_add(d)?;
                saw_digit = true;
            } else {
                if !saw_digit || num == 0 {
                    return None;
                }
                let op = match c {
                    'M' | '=' | 'X' => CigarOp::Match(num),
                    'I' => CigarOp::Ins(num),
                    'D' | 'N' => CigarOp::Del(num),
                    'S' => CigarOp::SoftClip(num),
                    _ => return None,
                };
                ops.push(op);
                num = 0;
                saw_digit = false;
            }
        }
        if saw_digit {
            return None; // trailing number without an op
        }
        Some(Cigar(ops))
    }

    /// Walk the alignment, yielding `(ref_pos, query_index)` for every
    /// aligned (M) base, given the record's leftmost reference position.
    pub fn aligned_pairs(&self, ref_start: u32) -> AlignedPairs<'_> {
        Cigar::walk_ops(&self.0, ref_start)
    }

    /// [`Cigar::aligned_pairs`] over a bare op slice — the form the arena
    /// batch decoder uses, where ops live in a shared array rather than an
    /// owned `Cigar`.
    pub fn walk_ops(ops: &[CigarOp], ref_start: u32) -> AlignedPairs<'_> {
        AlignedPairs {
            ops,
            op_idx: 0,
            within: 0,
            ref_pos: ref_start,
            query_idx: 0,
        }
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "*");
        }
        for op in &self.0 {
            write!(f, "{}{}", op.len(), op.symbol())?;
        }
        Ok(())
    }
}

/// Iterator over `(ref_pos, query_index)` pairs of aligned bases.
pub struct AlignedPairs<'a> {
    ops: &'a [CigarOp],
    op_idx: usize,
    within: u32,
    ref_pos: u32,
    query_idx: u32,
}

impl Iterator for AlignedPairs<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            let op = *self.ops.get(self.op_idx)?;
            if self.within >= op.len() {
                self.op_idx += 1;
                self.within = 0;
                continue;
            }
            match op {
                CigarOp::Match(_) => {
                    let pair = (self.ref_pos, self.query_idx);
                    self.ref_pos += 1;
                    self.query_idx += 1;
                    self.within += 1;
                    return Some(pair);
                }
                CigarOp::Ins(n) | CigarOp::SoftClip(n) => {
                    self.query_idx += n;
                    self.op_idx += 1;
                    self.within = 0;
                }
                CigarOp::Del(n) => {
                    self.ref_pos += n;
                    self.op_idx += 1;
                    self.within = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["100M", "5S90M5S", "50M2D48M", "10M3I10M", "*"] {
            let c = Cigar::parse(s).unwrap();
            let shown = c.to_string();
            assert_eq!(Cigar::parse(&shown).unwrap(), c, "{s}");
        }
        assert_eq!(Cigar::parse("100M").unwrap().to_string(), "100M");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cigar::parse("M").is_none());
        assert!(Cigar::parse("10").is_none());
        assert!(Cigar::parse("10Q").is_none());
        assert!(Cigar::parse("0M").is_none());
        assert!(Cigar::parse("1OM").is_none());
    }

    #[test]
    fn query_and_ref_lengths() {
        let c = Cigar::parse("5S90M2D3I2M").unwrap();
        assert_eq!(c.query_len(), 5 + 90 + 3 + 2);
        assert_eq!(c.ref_len(), 90 + 2 + 2);
        assert_eq!(Cigar::full_match(150).query_len(), 150);
        assert_eq!(Cigar::full_match(150).ref_len(), 150);
    }

    #[test]
    fn aligned_pairs_full_match() {
        let c = Cigar::full_match(4);
        let pairs: Vec<_> = c.aligned_pairs(100).collect();
        assert_eq!(pairs, vec![(100, 0), (101, 1), (102, 2), (103, 3)]);
    }

    #[test]
    fn aligned_pairs_with_softclip_and_indels() {
        // 2S3M1D2M1I1M: query = SSMMM MM I M (9 bases), ref span = 3+1+2+1.
        let c = Cigar::parse("2S3M1D2M1I1M").unwrap();
        let pairs: Vec<_> = c.aligned_pairs(10).collect();
        assert_eq!(
            pairs,
            vec![
                (10, 2),
                (11, 3),
                (12, 4),
                // 1D skips ref 13
                (14, 5),
                (15, 6),
                // 1I skips query 7
                (16, 8),
            ]
        );
        assert_eq!(c.query_len(), 9);
    }

    #[test]
    fn codes_roundtrip() {
        for op in [
            CigarOp::Match(7),
            CigarOp::Ins(1),
            CigarOp::Del(2),
            CigarOp::SoftClip(9),
        ] {
            assert_eq!(CigarOp::from_code(op.code(), op.len()), Some(op));
        }
        assert_eq!(CigarOp::from_code(4, 1), None);
    }

    #[test]
    fn empty_cigar_is_star() {
        let c = Cigar::default();
        assert_eq!(c.to_string(), "*");
        assert_eq!(c.query_len(), 0);
        assert_eq!(c.aligned_pairs(5).count(), 0);
    }
}
