//! Scheduled I/O for disk-backed BAL ingest: turn the block index into a
//! per-run I/O plan, then overlap fetching with decoding.
//!
//! This is the third layer of the ingest stack — **format**
//! ([`crate::file`]) → **byte source** ([`crate::io`]) → **scheduled
//! I/O** (here). PR 4 moved ingest on-disk but left workers issuing
//! cold, demand-paged reads: the mmap tier faulted every payload page on
//! first touch and the streaming tier paid a synchronous `pread` per
//! block, exactly the access pattern LoFreq's per-process script variant
//! suffered from (PAPER.md §II.B). The fix is the standard htslib-shaped
//! one: *plan the block schedule from the index, then overlap I/O with
//! decode.*
//!
//! # The plan
//!
//! [`IoPlan::for_regions`] takes the driver's region partition and
//! computes, per region, its **block window** — the region's overlapping
//! blocks, so a worker only ever touches its own blocks plus the
//! boundary blocks it shares with neighbours ([`BlockWindow`]). The plan
//! also derives:
//!
//! * a **schedule**: every planned block exactly once, in first-use
//!   order — what the read-ahead walks and what
//!   [`SharedBlockCache::for_plan`] sizes its expectations from;
//! * coalesced **byte runs**: adjacent planned block payloads merged
//!   into maximal contiguous file ranges, the unit `madvise` hints are
//!   issued at. Runs are derived from the index's stored block lengths,
//!   so they are **compressed** extents: on a v3 file the same plan
//!   covers a fraction of v2's bytes, and every fetch-vs-decode overlap
//!   win is multiplied by the columnar format's size ratio for free.
//!
//! # The two disk tiers
//!
//! * **mmap** — [`IoPlan::advise`] hints the kernel through the new
//!   advice API on the `memmap2` shim: `MADV_SEQUENTIAL` across the
//!   mapping (aggressive readahead, early page drop) plus
//!   `MADV_WILLNEED` on each planned byte run, so the kernel starts
//!   paging payloads in before the first worker touches them. Hints are
//!   a no-op on the `Mem` tier and on the shim's buffered fallback.
//! * **stream** — [`IoPlan::spawn_readahead`] runs a bounded background
//!   thread that walks the schedule and warms the run's
//!   [`SharedBlockCache`] ([`SharedBlockCache::prefetch_block`]) ahead
//!   of the workers: the payload `pread` *and* the arena decode happen
//!   off the calling threads, which then consume cache hits.
//!
//! # Decode-once and accounting
//!
//! Read-ahead preserves both cache invariants. A slot decodes at most
//! once no matter who gets there first (`prefetch_block` only fills
//! `Empty` slots, and never counts against a window's expected
//! requests); and every decode is owned by exactly one party — the
//! prefetcher returns its [`DecodeStats`] from
//! [`ReadaheadHandle::finish`] for the driver to fold into the run
//! total, while workers consuming prefetched blocks record cache hits,
//! not decodes. Summed [`DecodeStats`] therefore stay equal to the true
//! per-run decode work with prefetch on or off.
//!
//! The thread is **bounded**, and the bound is exact: it tracks which of
//! the arenas it created have received a consumer request yet
//! ([`SharedBlockCache::block_requested`]) and never holds more than
//! `ahead` unrequested ones — so the residency the read-ahead adds stays
//! ≤ `ahead` blocks even when a dynamic schedule makes workers consume
//! blocks far out of schedule order.

use crate::batch::SharedBlockCache;
use crate::file::{BalFile, DecodeStats};
use crate::io::{Advice, ByteSource};
use crate::BalError;
use std::ops::Range;
use std::time::Duration;
use ultravc_sync::atomic::{AtomicBool, Ordering};
use ultravc_sync::Arc;

/// Schedule-blocks of read-ahead depth `--prefetch on` / `ULTRAVC_PREFETCH=on`
/// resolve to. Eight default-capacity blocks is a few MB of arenas —
/// enough to keep one prefetch thread ahead of several workers without
/// meaningfully moving peak residency.
pub const DEFAULT_PREFETCH_AHEAD: usize = 8;

/// Prefetch selection, as a CLI flag or driver field states it.
///
/// Precedence mirrors [`crate::io::SourceTier`]: an explicit mode always
/// wins and never reads the environment; only `Auto` consults (and
/// strictly validates) `ULTRAVC_PREFETCH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchMode {
    /// Resolve against `ULTRAVC_PREFETCH` (`on`/`off`/`N`); off when the
    /// variable is unset.
    #[default]
    Auto,
    /// No hints, no read-ahead.
    Off,
    /// Read ahead with the default depth ([`DEFAULT_PREFETCH_AHEAD`]).
    On,
    /// Read ahead with an explicit depth in blocks (0 means off).
    Ahead(usize),
}

impl PrefetchMode {
    /// Parse a `--prefetch` / `ULTRAVC_PREFETCH` value: `on`, `off`, or
    /// a block count. Unrecognized values are errors — a typo must not
    /// silently disable the mode a CI leg believes it is exercising.
    pub fn parse(v: &str) -> Result<PrefetchMode, BalError> {
        match v {
            "on" => Ok(PrefetchMode::On),
            "off" => Ok(PrefetchMode::Off),
            n => n.parse::<usize>().map(PrefetchMode::Ahead).map_err(|_| {
                BalError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("unrecognized prefetch mode {v:?} (want on|off|N)"),
                ))
            }),
        }
    }

    /// The mode `ULTRAVC_PREFETCH` pins, if any. Consulted **only** when
    /// resolving `Auto`.
    fn env_pin() -> Result<Option<PrefetchMode>, BalError> {
        match std::env::var("ULTRAVC_PREFETCH") {
            Err(_) => Ok(None),
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => PrefetchMode::parse(&v).map(Some),
        }
    }

    /// Resolve to a concrete decision. Explicit modes never touch the
    /// environment; `Auto` reads `ULTRAVC_PREFETCH` (strictly — an
    /// invalid value is an error, not a silent `Off`) and defaults to
    /// off when the variable is unset.
    pub fn resolved(self) -> Result<ResolvedPrefetch, BalError> {
        let concrete = |mode| match mode {
            PrefetchMode::Off | PrefetchMode::Ahead(0) => ResolvedPrefetch::Off,
            PrefetchMode::On => ResolvedPrefetch::Ahead(DEFAULT_PREFETCH_AHEAD),
            PrefetchMode::Ahead(n) => ResolvedPrefetch::Ahead(n),
            PrefetchMode::Auto => unreachable!("resolved before reaching concrete"),
        };
        match self {
            PrefetchMode::Auto => match PrefetchMode::env_pin()? {
                Some(PrefetchMode::Auto) => unreachable!("parse never yields Auto"),
                Some(mode) => Ok(concrete(mode)),
                None => Ok(ResolvedPrefetch::Off),
            },
            mode => Ok(concrete(mode)),
        }
    }
}

/// A [`PrefetchMode`] with `Auto` (and `On`) resolved away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedPrefetch {
    /// No hints, no read-ahead.
    Off,
    /// Hint + read ahead, holding at most this many prefetched arenas
    /// that no consumer has requested yet (always ≥ 1).
    Ahead(usize),
}

impl ResolvedPrefetch {
    /// Whether any prefetching is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, ResolvedPrefetch::Ahead(_))
    }
}

impl std::fmt::Display for ResolvedPrefetch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolvedPrefetch::Off => write!(f, "off"),
            ResolvedPrefetch::Ahead(n) => write!(f, "ahead={n}"),
        }
    }
}

/// One region's slice of the plan: the blocks whose genomic extent
/// overlaps it — its own blocks plus the boundary blocks it shares with
/// neighbouring regions, and nothing else.
#[derive(Debug, Clone)]
pub struct BlockWindow {
    region: Range<u32>,
    blocks: Arc<[usize]>,
}

impl BlockWindow {
    /// The genomic region this window serves.
    pub fn region(&self) -> Range<u32> {
        self.region.clone()
    }

    /// The window's block ids, ascending.
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// A shared handle to the block list (what a pileup iterator keeps).
    pub fn blocks_shared(&self) -> Arc<[usize]> {
        Arc::clone(&self.blocks)
    }
}

/// A per-run I/O plan over one [`BalFile`]: per-region block windows, a
/// distinct-block schedule in first-use order, and the coalesced payload
/// byte runs advice is issued over. See the module docs for how the
/// drivers use it.
#[derive(Debug, Clone)]
pub struct IoPlan {
    windows: Vec<BlockWindow>,
    schedule: Arc<[usize]>,
    byte_runs: Vec<Range<usize>>,
    planned_bytes: u64,
}

impl IoPlan {
    /// Plan the given region partition against `file`'s index.
    pub fn for_regions(file: &BalFile, regions: &[Range<u32>]) -> IoPlan {
        let windows: Vec<BlockWindow> = regions
            .iter()
            .map(|r| BlockWindow {
                region: r.clone(),
                blocks: file.blocks_overlapping(r.start, r.end).into(),
            })
            .collect();
        let mut seen = vec![false; file.n_blocks()];
        let mut schedule = Vec::new();
        for w in &windows {
            for &b in w.blocks() {
                if !seen[b] {
                    seen[b] = true;
                    schedule.push(b);
                }
            }
        }
        // Coalesce the scheduled blocks' payload ranges into maximal
        // contiguous runs (blocks are laid out in file order, but the
        // schedule's first-use order need not be — sort by offset first).
        let index = file.index();
        let mut ranges: Vec<Range<usize>> = schedule
            .iter()
            .map(|&b| index[b].offset..index[b].offset + index[b].len)
            .collect();
        ranges.sort_by_key(|r| r.start);
        let mut byte_runs: Vec<Range<usize>> = Vec::new();
        let mut planned_bytes = 0u64;
        for r in ranges {
            planned_bytes += (r.end - r.start) as u64;
            match byte_runs.last_mut() {
                Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
                _ => byte_runs.push(r),
            }
        }
        IoPlan {
            windows,
            schedule: schedule.into(),
            byte_runs,
            planned_bytes,
        }
    }

    /// The per-region block windows, in partition order.
    pub fn windows(&self) -> &[BlockWindow] {
        &self.windows
    }

    /// The window of region `i` (panics out of range, like indexing).
    pub fn window(&self, i: usize) -> &BlockWindow {
        &self.windows[i]
    }

    /// Every planned block exactly once, in first-use order.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Total payload bytes the plan covers (before coalescing).
    pub fn planned_bytes(&self) -> u64 {
        self.planned_bytes
    }

    /// The coalesced payload byte runs advice is issued over.
    pub fn byte_runs(&self) -> &[Range<usize>] {
        &self.byte_runs
    }

    /// Issue access-pattern hints for this plan against `file`'s backing:
    /// `Sequential` across the whole source, then `WillNeed` on each
    /// planned byte run. Returns whether any hint was actually applied —
    /// `false` on the `Mem` and `Stream` tiers (use
    /// [`IoPlan::spawn_readahead`] for the latter).
    pub fn advise(&self, file: &BalFile) -> Result<bool, BalError> {
        let source: &ByteSource = file.source();
        let mut applied = source.advise(Advice::Sequential, 0, source.len())?;
        for run in &self.byte_runs {
            applied |= source.advise(Advice::WillNeed, run.start, run.end - run.start)?;
        }
        Ok(applied)
    }

    /// Start the bounded background read-ahead over this plan's schedule,
    /// warming `cache` while holding at most `ahead` arenas no consumer
    /// has requested yet (any cache flavour tracks the requests). The
    /// thread exits on its own once the schedule is exhausted; call
    /// [`ReadaheadHandle::finish`] to stop it early (or at run end) and
    /// collect the decode work it performed.
    pub fn spawn_readahead(&self, cache: Arc<SharedBlockCache>, ahead: usize) -> ReadaheadHandle {
        let ahead = ahead.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let schedule = Arc::clone(&self.schedule);
        let thread = {
            let stop = Arc::clone(&stop);
            let cache = Arc::clone(&cache);
            ultravc_sync::thread::spawn(move || readahead_loop(&cache, &schedule, ahead, &stop))
        };
        ReadaheadHandle {
            stop,
            cache,
            thread: Some(thread),
        }
    }
}

/// The read-ahead body: walk the schedule, keeping the number of arenas
/// this thread created that no consumer has requested yet at most
/// `ahead` — the residency bound is exact, not a schedule-position
/// heuristic, so it holds even when a dynamic schedule makes workers
/// consume blocks far out of schedule order. Decode failures are
/// recorded in the slot (the requesting worker surfaces them) and do not
/// stop the walk — later blocks may be intact, and verdict parity with
/// the non-prefetch path requires each block to be judged on its own
/// bytes.
fn readahead_loop(
    cache: &SharedBlockCache,
    schedule: &[usize],
    ahead: usize,
    stop: &AtomicBool,
) -> DecodeStats {
    let mut stats = DecodeStats::default();
    // Blocks this thread decoded that are still waiting for their first
    // consumer request (length ≤ `ahead` by construction).
    let mut outstanding: Vec<usize> = Vec::with_capacity(ahead.min(schedule.len()));
    for &block in schedule {
        loop {
            outstanding.retain(|&b| !cache.block_requested(b));
            if outstanding.len() < ahead {
                break;
            }
            // Snapshot both pacing counters *before* the stop check: a
            // stopper stores the flag and then kicks, so either the flag
            // is already visible here or the kick lands after this
            // snapshot and ends the wait below. No ordering loses it.
            let (progress, kicks) = cache.pacer_view();
            if stop.load(Ordering::Relaxed) {
                return stats;
            }
            // Sleep until the consumer frontier moves, a stop kick
            // arrives, or a timeout (so a stalled run stays stoppable),
            // then re-drain.
            cache.wait_for_pacing(progress.requested, kicks, Duration::from_millis(2));
        }
        if stop.load(Ordering::Relaxed) {
            return stats;
        }
        match cache.prefetch_block(block) {
            Ok(Some(performed)) => {
                stats.merge(&performed);
                outstanding.push(block);
            }
            Ok(None) => {}
            // The run was cancelled or ran out its deadline: every
            // remaining prefetch would be interrupted too, so drain now
            // instead of spinning through the rest of the schedule. Real
            // decode failures keep walking — later blocks may be intact,
            // and verdict parity requires judging each on its own bytes.
            Err(BalError::Interrupted(_)) => return stats,
            Err(_) => {}
        }
    }
    stats
}

/// What a finished read-ahead thread reports: the decode work it
/// performed, and whether it died to a panic — the driver's degradation
/// signal. A panicked prefetcher loses its (partial) stats, but loses no
/// *data*: every slot it warmed is `Ready`, every slot it didn't stays
/// `Empty` for workers to demand-read, bitwise identically.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadaheadReport {
    /// Decode work the thread performed and reported back. Zero when the
    /// thread panicked (its accumulator died with it); cache-level
    /// counters ([`SharedBlockCache::decoded_blocks`]) remain exact.
    pub stats: DecodeStats,
    /// Whether the thread terminated by panicking. The run degrades to
    /// demand reads; it does not fail.
    pub panicked: bool,
}

/// Handle to a running read-ahead thread. Dropping it stops and joins
/// the thread; [`ReadaheadHandle::finish`] does the same but hands back
/// a [`ReadaheadReport`] — the decode work the thread performed (which
/// the driver must fold into the run total to keep decode accounting
/// exact) plus whether it died to a panic (the driver's cue to record
/// prefetch degradation).
#[derive(Debug)]
pub struct ReadaheadHandle {
    stop: Arc<AtomicBool>,
    cache: Arc<SharedBlockCache>,
    thread: Option<ultravc_sync::thread::JoinHandle<DecodeStats>>,
}

impl ReadaheadHandle {
    /// Stop the thread (the kick wakes it out of any pacing wait
    /// immediately) and report the decode work it performed. A panicked
    /// read-ahead thread is *contained* here — reported, never re-raised
    /// — because the run can always fall back to demand reads.
    pub fn finish(mut self) -> ReadaheadReport {
        self.stop.store(true, Ordering::Relaxed);
        self.cache.kick_progress();
        match self.thread.take().map(|t| t.join()) {
            Some(Ok(stats)) => ReadaheadReport {
                stats,
                panicked: false,
            },
            Some(Err(_)) => ReadaheadReport {
                stats: DecodeStats::default(),
                panicked: true,
            },
            None => ReadaheadReport::default(),
        }
    }
}

impl Drop for ReadaheadHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cache.kick_progress();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::BalWriter;
    use crate::record::{Flags, Record};
    use ultravc_genome::phred::Phred;
    use ultravc_genome::sequence::Seq;

    fn sample_file(n: usize, block_cap: usize) -> BalFile {
        let mut w = BalWriter::with_block_capacity(block_cap);
        for i in 0..n as u64 {
            let seq = Seq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
            let quals: Vec<Phred> = (0..16)
                .map(|j| Phred::new(20 + ((i as usize + j) % 20) as u8))
                .collect();
            let rec = Record::full_match(i, (i * 3) as u32, 60, Flags::none(), seq, quals).unwrap();
            w.push(rec).unwrap();
        }
        w.finish()
    }

    #[test]
    fn mode_parsing_and_resolution() {
        assert_eq!(PrefetchMode::parse("on").unwrap(), PrefetchMode::On);
        assert_eq!(PrefetchMode::parse("off").unwrap(), PrefetchMode::Off);
        assert_eq!(PrefetchMode::parse("3").unwrap(), PrefetchMode::Ahead(3));
        assert_eq!(PrefetchMode::parse("0").unwrap(), PrefetchMode::Ahead(0));
        for bad in ["On", "yes", "", "-1", "3 "] {
            assert!(PrefetchMode::parse(bad).is_err(), "{bad:?}");
        }
        // Explicit modes resolve without touching the environment.
        assert_eq!(PrefetchMode::Off.resolved().unwrap(), ResolvedPrefetch::Off);
        assert_eq!(
            PrefetchMode::On.resolved().unwrap(),
            ResolvedPrefetch::Ahead(DEFAULT_PREFETCH_AHEAD)
        );
        assert_eq!(
            PrefetchMode::Ahead(5).resolved().unwrap(),
            ResolvedPrefetch::Ahead(5)
        );
        assert_eq!(
            PrefetchMode::Ahead(0).resolved().unwrap(),
            ResolvedPrefetch::Off,
            "depth 0 normalizes to off"
        );
        // Auto resolves to something concrete (env-dependent but valid
        // under every CI pin).
        assert!(matches!(
            PrefetchMode::Auto.resolved(),
            Ok(ResolvedPrefetch::Off | ResolvedPrefetch::Ahead(_))
        ));
        assert_eq!(ResolvedPrefetch::Off.to_string(), "off");
        assert_eq!(ResolvedPrefetch::Ahead(8).to_string(), "ahead=8");
        assert!(ResolvedPrefetch::Ahead(8).is_on());
        assert!(!ResolvedPrefetch::Off.is_on());
    }

    #[test]
    fn plan_windows_match_index_overlap_and_schedule_is_distinct() {
        let file = sample_file(100, 8);
        let regions = vec![0u32..60, 60..150, 150..400];
        let plan = IoPlan::for_regions(&file, &regions);
        assert_eq!(plan.windows().len(), regions.len());
        for (w, r) in plan.windows().iter().zip(&regions) {
            assert_eq!(w.region(), r.clone());
            assert_eq!(w.blocks(), file.blocks_overlapping(r.start, r.end));
        }
        // Schedule: every planned block exactly once, first-use order.
        let mut sorted = plan.schedule().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), plan.schedule().len(), "no duplicates");
        assert_eq!(
            sorted,
            file.blocks_overlapping(0, 400),
            "full partition plans every overlapping block"
        );
        // Byte runs tile the planned payloads: disjoint, ascending,
        // summing to at least the planned bytes (coalescing can only
        // merge, never drop).
        let runs = plan.byte_runs();
        assert!(!runs.is_empty());
        for w in runs.windows(2) {
            assert!(w[0].end <= w[1].start, "ordered");
        }
        let run_bytes: u64 = runs.iter().map(|r| (r.end - r.start) as u64).sum();
        assert_eq!(
            run_bytes,
            plan.planned_bytes(),
            "adjacent blocks coalesce without gaps or overlap"
        );
        // Contiguous blocks of one file coalesce into a single run.
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn plan_for_partial_partition_covers_only_its_blocks() {
        let file = sample_file(200, 4);
        let plan = IoPlan::for_regions(&file, std::slice::from_ref(&(90u32..120)));
        assert_eq!(plan.schedule(), file.blocks_overlapping(90, 120));
        assert!(plan.schedule().len() < file.n_blocks());
        assert!(plan.planned_bytes() > 0);
        let empty = IoPlan::for_regions(&file, &[]);
        assert!(empty.schedule().is_empty());
        assert!(empty.byte_runs().is_empty());
        assert_eq!(empty.planned_bytes(), 0);
    }

    #[test]
    fn advise_applies_on_mmap_only() {
        let file = sample_file(120, 8);
        let path = std::env::temp_dir().join(format!(
            "ultravc-prefetch-advise-{}.bal",
            std::process::id()
        ));
        file.write_to(&path).unwrap();
        let regions = vec![0u32..200, 200..400];
        let mem_plan = IoPlan::for_regions(&file, &regions);
        assert!(!mem_plan.advise(&file).unwrap(), "mem tier: no hints");
        for (tier, expect) in [
            (
                crate::io::SourceTier::Mmap,
                memmap2::Mmap::advice_effective(),
            ),
            (crate::io::SourceTier::Stream, false),
        ] {
            let disk = BalFile::open_with(&path, tier).unwrap();
            let plan = IoPlan::for_regions(&disk, &regions);
            assert_eq!(plan.advise(&disk).unwrap(), expect, "{tier:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn readahead_decodes_each_block_once_and_reports_stats() {
        let file = sample_file(300, 8);
        let regions = vec![0u32..300, 300..600, 600..1000];
        let plan = IoPlan::for_regions(&file, &regions);
        let cache = Arc::new(SharedBlockCache::for_plan(file.clone(), &plan));
        let handle = plan.spawn_readahead(Arc::clone(&cache), 4);
        // Let the read-ahead win at least one block before the "workers"
        // start, so the prefetcher-owned-stats assertion is deterministic.
        let t0 = std::time::Instant::now();
        while cache.decoded_blocks() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::yield_now();
        }
        // Consume the windows like workers would; every decode was done
        // by exactly one party (prefetcher or worker), never both.
        let mut worker_stats = DecodeStats::default();
        for w in plan.windows() {
            for &b in w.blocks() {
                let (batch, performed) = cache.get(b).unwrap();
                assert!(!batch.is_empty());
                if let Some(s) = performed {
                    worker_stats.merge(&s);
                }
            }
        }
        let report = handle.finish();
        assert!(!report.panicked);
        let prefetch_stats = report.stats;
        assert_eq!(
            prefetch_stats.blocks + worker_stats.blocks,
            file.n_blocks() as u64,
            "decode-once across prefetcher + workers"
        );
        assert_eq!(cache.decoded_blocks(), file.n_blocks());
        assert!(
            prefetch_stats.blocks > 0,
            "an unconsumed cache start must let the prefetcher win some blocks"
        );
        assert_eq!(
            prefetch_stats.records_out + worker_stats.records_out,
            file.n_records()
        );
    }

    #[test]
    fn readahead_stays_within_its_bound_until_consumption() {
        let file = sample_file(400, 8);
        let plan = IoPlan::for_regions(&file, std::slice::from_ref(&(0u32..2_000)));
        assert!(plan.schedule().len() > 6);
        let cache = Arc::new(SharedBlockCache::for_plan(file.clone(), &plan));
        let handle = plan.spawn_readahead(Arc::clone(&cache), 2);
        // Give the thread ample time: with nothing consumed, it may warm
        // at most `ahead` blocks.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            cache.decoded_blocks() <= 2,
            "unconsumed cache: read-ahead must hold at its bound (got {})",
            cache.decoded_blocks()
        );
        let report = handle.finish();
        assert_eq!(report.stats.blocks as usize, cache.decoded_blocks());
    }

    #[test]
    fn finishing_early_stops_the_thread_quickly() {
        let file = sample_file(200, 4);
        let plan = IoPlan::for_regions(&file, std::slice::from_ref(&(0u32..1_000)));
        let cache = Arc::new(SharedBlockCache::for_plan(file.clone(), &plan));
        let handle = plan.spawn_readahead(Arc::clone(&cache), 1);
        let t0 = std::time::Instant::now();
        let _ = handle.finish();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "finish() must not hang on an unconsumed schedule"
        );
        // Dropping a handle (early error path) also joins cleanly.
        let dropped = plan.spawn_readahead(Arc::clone(&cache), 1);
        drop(dropped);
    }

    #[test]
    fn panicked_readahead_degrades_to_demand_reads() {
        let file = sample_file(200, 8);
        let path =
            std::env::temp_dir().join(format!("ultravc-prefetch-panic-{}.bal", std::process::id()));
        file.write_to(&path).unwrap();
        // A fault plan whose one-shot panic fires on the first payload
        // read: the prefetcher walks the schedule from block 0, so it is
        // deterministically the thread that trips it (no workers yet).
        let first_payload = file.index()[0].offset;
        let faulted = BalFile::open_with(&path, crate::io::SourceTier::Stream)
            .unwrap()
            .with_faults(crate::FaultPlan::parse(&format!("panic_at={first_payload}")).unwrap());
        let plan = IoPlan::for_regions(&faulted, std::slice::from_ref(&(0u32..1_000)));
        let cache = Arc::new(SharedBlockCache::for_plan(faulted.clone(), &plan));
        let handle = plan.spawn_readahead(Arc::clone(&cache), 4);
        // Let the thread reach its first payload read (and die to the
        // injected panic) before collecting it — finish() immediately
        // after spawn can win the race and stop a thread that never read.
        let t0 = std::time::Instant::now();
        while handle.thread.as_ref().is_some_and(|t| !t.is_finished())
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::yield_now();
        }
        let report = handle.finish();
        assert!(
            report.panicked,
            "the injected panic must be contained, not re-raised"
        );
        // Degradation: workers demand-read every block themselves (the
        // panic trigger disarmed with the prefetcher), bitwise identical
        // to the fault-free file.
        let clean = SharedBlockCache::new(file.clone());
        for w in plan.windows() {
            for &b in w.blocks() {
                let (batch, _) = cache.get(b).unwrap();
                assert_eq!(*batch, *clean.get(b).unwrap().0, "block {b}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
