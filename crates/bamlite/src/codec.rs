//! Byte-level codecs for the BAL block format: LEB128 varints, zigzag
//! deltas, run-length encoding for quality strings, and the v3 per-stream
//! compression container (raw / RLE / LZ — smallest wins when it at least
//! halves the stream, raw otherwise).
//!
//! These replace DEFLATE in the BGZF analogy. Simulated (and much real
//! Illumina) quality data is plateau-heavy, so RLE compresses it well while
//! keeping a genuine, measurable per-block decode cost — which is the
//! behaviour the paper's Figure 2 trace attributes to file decompression.
//! v3's columnar block payloads add an LZ77-style match stage on top:
//! viral reads against one 30 kb reference are massively redundant, so the
//! concatenated base and qual-bin streams crush under a greedy
//! hash-chained matcher that would be useless on v2's interleaved
//! per-record fields.

use bytes::{Buf, BufMut};

/// Append an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint; `None` on truncation or overflow.
pub fn get_varint(buf: &mut impl Buf) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed value for varint storage.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Run-length-encode a byte string as `(count, value)` varint pairs,
/// prefixed by the run count.
pub fn rle_encode(out: &mut Vec<u8>, data: &[u8]) {
    let mut runs: Vec<(u64, u8)> = Vec::new();
    for &b in data {
        match runs.last_mut() {
            Some((n, v)) if *v == b => *n += 1,
            _ => runs.push((1, b)),
        }
    }
    put_varint(out, runs.len() as u64);
    for (n, v) in runs {
        put_varint(out, n);
        out.push(v);
    }
}

/// Decode an RLE byte string produced by [`rle_encode`]. `max_len` bounds
/// the output to protect against corrupt counts.
pub fn rle_decode(buf: &mut impl Buf, max_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    rle_decode_into(buf, max_len, &mut out)?;
    Some(out)
}

/// Decode an RLE byte string, **appending** to `out` — the zero-alloc form
/// the arena batch decoder uses (a warmed buffer is never reallocated).
/// `max_len` bounds the decoded length, not the total buffer length.
///
/// Run counts are compared in `u64` before any narrowing, so a corrupt
/// count can neither wrap a 32-bit `usize` nor size an allocation beyond
/// `max_len`.
pub fn rle_decode_into(buf: &mut impl Buf, max_len: usize, out: &mut Vec<u8>) -> Option<()> {
    let n_runs = get_varint(buf)?;
    let start = out.len();
    for _ in 0..n_runs {
        let count = get_varint(buf)?;
        let decoded = (out.len() - start) as u64;
        if !buf.has_remaining() || count.saturating_add(decoded) > max_len as u64 {
            return None;
        }
        let value = buf.get_u8();
        out.resize(out.len() + count as usize, value);
    }
    Some(())
}

/// Append a length-prefixed raw byte string.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Read a length-prefixed raw byte string (bounded by `max_len`). The
/// length is compared in `u64` before narrowing, so corrupt prefixes
/// cannot wrap on 32-bit targets.
pub fn get_bytes(buf: &mut impl Buf, max_len: usize) -> Option<Vec<u8>> {
    let len = get_varint(buf)?;
    if len > max_len as u64 {
        return None;
    }
    let len = len as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Some(out)
}

/// Append a fixed-width little-endian u64 (used by the file trailer, where
/// self-describing width matters more than compactness).
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.put_u64_le(v);
}

// ---------------------------------------------------------------------------
// v3 stream compression: `scheme · raw_len · payload` containers.
// ---------------------------------------------------------------------------

/// Stream stored verbatim (compression would have grown it).
const SCHEME_RAW: u8 = 0;
/// Stream stored as [`rle_encode`] runs.
const SCHEME_RLE: u8 = 1;
/// Stream stored as LZ77 tokens (literals + back-references).
const SCHEME_LZ: u8 = 2;

/// Shortest back-reference the LZ scheme emits (and the unit its match
/// lengths are biased by on the wire).
const LZ_MIN_MATCH: usize = 4;
/// Hash-table size for the LZ matcher (positions of 4-byte prefixes).
const LZ_HASH_BITS: u32 = 15;

#[inline]
fn lz_hash(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - LZ_HASH_BITS)) as usize
}

/// Greedy LZ77 over `data`: tokens of `lit_len · literals` optionally
/// followed by `match_len−4 · distance` (all varints). The token stream is
/// self-terminating against the container's `raw_len` — after the output
/// reaches it the decoder stops, so a final match needs no empty literal
/// run after it.
fn lz_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![usize::MAX; 1 << LZ_HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + LZ_MIN_MATCH <= data.len() {
        let slot = &mut table[lz_hash(&data[i..])];
        let cand = *slot;
        *slot = i;
        if cand != usize::MAX && data[cand..cand + LZ_MIN_MATCH] == data[i..i + LZ_MIN_MATCH] {
            let mut mlen = LZ_MIN_MATCH;
            while i + mlen < data.len() && data[cand + mlen] == data[i + mlen] {
                mlen += 1;
            }
            put_varint(out, (i - lit_start) as u64);
            out.extend_from_slice(&data[lit_start..i]);
            put_varint(out, (mlen - LZ_MIN_MATCH) as u64);
            put_varint(out, (i - cand) as u64);
            // Seed the table through the match so runs keep chaining.
            let end = i + mlen;
            let mut j = i + 1;
            while j < end && j + LZ_MIN_MATCH <= data.len() {
                table[lz_hash(&data[j..])] = j;
                j += 1;
            }
            i = end;
            lit_start = end;
        } else {
            i += 1;
        }
    }
    if lit_start < data.len() {
        put_varint(out, (data.len() - lit_start) as u64);
        out.extend_from_slice(&data[lit_start..]);
    }
}

/// Decode an LZ77 token stream into exactly `raw_len` appended bytes.
/// Every quantity is checked before use — literal runs against the input
/// and the remaining output budget, distances against the bytes produced
/// *by this stream* — and the whole input must be consumed, so a corrupt
/// token stream yields `None` rather than a panic or runaway allocation.
fn lz_decompress_into(mut buf: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Option<()> {
    let start = out.len();
    loop {
        let produced = out.len() - start;
        if produced == raw_len {
            break;
        }
        let lit_len = get_varint(&mut buf)?;
        if lit_len > (raw_len - produced) as u64 || (buf.len() as u64) < lit_len {
            return None;
        }
        let lit_len = lit_len as usize;
        out.extend_from_slice(&buf[..lit_len]);
        buf = &buf[lit_len..];
        let produced = out.len() - start;
        if produced == raw_len {
            break;
        }
        let mlen = get_varint(&mut buf)?.checked_add(LZ_MIN_MATCH as u64)?;
        if mlen > (raw_len - produced) as u64 {
            return None;
        }
        let mlen = mlen as usize;
        let dist = get_varint(&mut buf)?;
        if dist == 0 || dist > produced as u64 {
            return None;
        }
        let src = out.len() - dist as usize;
        if dist as usize >= mlen {
            out.extend_from_within(src..src + mlen);
        } else {
            // Overlapping match: the produced suffix `out[src..]` is an
            // exact prefix of the periodic continuation (period `dist`),
            // so copying the whole available window each round doubles it
            // — O(log(mlen/dist)) memcpys instead of `mlen` byte pushes.
            // (The base stream of an ultra-deep stack is precisely this
            // shape: one short packed read pattern repeated thousands of
            // times.)
            let mut remaining = mlen;
            while remaining > 0 {
                let n = remaining.min(out.len() - src);
                out.extend_from_within(src..src + n);
                remaining -= n;
            }
        }
    }
    if buf.is_empty() {
        Some(())
    } else {
        None
    }
}

/// A non-raw scheme must shrink a stream at least this much (denominator
/// over numerator: 2× means "halve it") before the encoder will take it.
/// Decompression sits on the serving hot path, so marginal byte savings
/// are a bad trade: a varint-packed meta stream that LZ only trims to
/// ~0.55× costs more decode CPU than its bytes save, while the plateaued
/// qual and periodic base streams (0.08×, 0.001×) clear the bar easily.
const MIN_COMPRESSION_GAIN: usize = 2;

/// Append one compressed stream container: a scheme byte, the raw length
/// as a varint, then the payload under whichever of raw/RLE/LZ encodes
/// `data` smallest — provided the winner beats [`MIN_COMPRESSION_GAIN`];
/// otherwise the stream is stored verbatim. Never expands beyond
/// `data.len() + header`.
pub fn compress_stream(out: &mut Vec<u8>, data: &[u8]) {
    let mut rle = Vec::new();
    rle_encode(&mut rle, data);
    let mut lz = Vec::new();
    lz_compress(data, &mut lz);
    let budget = data.len() / MIN_COMPRESSION_GAIN;
    let (scheme, payload): (u8, &[u8]) = if rle.len() <= budget && rle.len() <= lz.len() {
        (SCHEME_RLE, &rle)
    } else if lz.len() <= budget {
        (SCHEME_LZ, &lz)
    } else {
        (SCHEME_RAW, data)
    };
    out.push(scheme);
    put_varint(out, data.len() as u64);
    out.extend_from_slice(payload);
}

/// Decode a [`compress_stream`] container, **appending** to `out` (the
/// zero-alloc form the arena decoder's warmed scratch buffers use).
/// `max_raw` bounds the decoded length so a corrupt header cannot size an
/// absurd allocation; the payload must decode to exactly the declared raw
/// length and consume the whole container, or the stream is rejected.
pub fn decompress_stream_into(data: &[u8], max_raw: usize, out: &mut Vec<u8>) -> Option<()> {
    let (&scheme, mut buf) = data.split_first()?;
    let raw_len = get_varint(&mut buf)?;
    if raw_len > max_raw as u64 {
        return None;
    }
    let raw_len = raw_len as usize;
    let start = out.len();
    out.reserve(raw_len);
    match scheme {
        SCHEME_RAW => {
            if buf.len() != raw_len {
                return None;
            }
            out.extend_from_slice(buf);
        }
        SCHEME_RLE => {
            rle_decode_into(&mut buf, raw_len, out)?;
            if out.len() - start != raw_len || !buf.is_empty() {
                return None;
            }
        }
        SCHEME_LZ => lz_decompress_into(buf, raw_len, out)?,
        _ => return None,
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut buf = &out[..];
            assert_eq!(get_varint(&mut buf), Some(v), "value {v}");
            assert!(!buf.has_remaining());
        }
    }

    #[test]
    fn varint_sizes() {
        let mut out = Vec::new();
        put_varint(&mut out, 127);
        assert_eq!(out.len(), 1);
        out.clear();
        put_varint(&mut out, 128);
        assert_eq!(out.len(), 2);
        out.clear();
        put_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn varint_truncation_detected() {
        let mut out = Vec::new();
        put_varint(&mut out, 300);
        let mut buf = &out[..1]; // drop the final byte
        assert_eq!(get_varint(&mut buf), None);
        assert_eq!(get_varint(&mut &[][..]), None);
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes exceed 64 bits.
        let bad = [0xffu8; 11];
        assert_eq!(get_varint(&mut &bad[..]), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn rle_roundtrip_plateaus() {
        let data: Vec<u8> = [vec![37u8; 50], vec![32u8; 30], vec![2u8; 5]].concat();
        let mut out = Vec::new();
        rle_encode(&mut out, &data);
        assert!(
            out.len() < 15,
            "plateaus should compress hard: {}",
            out.len()
        );
        let decoded = rle_decode(&mut &out[..], data.len()).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn rle_roundtrip_worst_case() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        rle_encode(&mut out, &data);
        let decoded = rle_decode(&mut &out[..], 256).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn rle_empty() {
        let mut out = Vec::new();
        rle_encode(&mut out, &[]);
        let decoded = rle_decode(&mut &out[..], 0).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn rle_bounds_corrupt_counts() {
        let mut out = Vec::new();
        rle_encode(&mut out, &[7u8; 100]);
        // max_len smaller than actual: decoder must refuse, not allocate.
        assert!(rle_decode(&mut &out[..], 10).is_none());
    }

    fn stream_roundtrip(data: &[u8]) -> usize {
        let mut out = Vec::new();
        compress_stream(&mut out, data);
        let mut decoded = Vec::new();
        decompress_stream_into(&out, data.len(), &mut decoded).unwrap();
        assert_eq!(decoded, data);
        out.len()
    }

    #[test]
    fn stream_codec_roundtrips_every_shape() {
        // Empty, tiny, plateau (RLE territory), repetitive (LZ territory),
        // incompressible (raw fallback), and run-heavy mixtures.
        stream_roundtrip(&[]);
        stream_roundtrip(b"x");
        stream_roundtrip(&vec![7u8; 10_000]);
        let repetitive: Vec<u8> = b"ACGTACGGTTACGT".repeat(500);
        stream_roundtrip(&repetitive);
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        stream_roundtrip(&noise);
        let mixed: Vec<u8> = [vec![3u8; 100], noise.clone(), vec![9u8; 300]].concat();
        stream_roundtrip(&mixed);
    }

    #[test]
    fn stream_codec_compresses_redundant_data() {
        let plateau = vec![37u8; 100_000];
        assert!(
            stream_roundtrip(&plateau) < 100,
            "RLE should crush plateaus"
        );
        let repeated: Vec<u8> = b"ACGTTGCAACGT".repeat(8_000);
        assert!(
            stream_roundtrip(&repeated) < repeated.len() / 10,
            "LZ should crush repeats"
        );
    }

    #[test]
    fn stream_codec_never_expands_past_header() {
        let noise: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 11) as u8)
            .collect();
        let mut out = Vec::new();
        compress_stream(&mut out, &noise);
        assert!(
            out.len() <= noise.len() + 1 + 10,
            "raw fallback bounds growth"
        );
    }

    #[test]
    fn stream_codec_rejects_corruption() {
        let data: Vec<u8> = b"ACGTACGTACGT".repeat(100);
        let mut good = Vec::new();
        compress_stream(&mut good, &data);
        let mut out = Vec::new();
        // Truncations at every prefix length.
        for cut in 0..good.len() {
            out.clear();
            assert!(
                decompress_stream_into(&good[..cut], data.len(), &mut out).is_none(),
                "truncation at {cut} accepted"
            );
        }
        // Bit flips anywhere must never panic, and a flipped header/length
        // must not produce an over-long output.
        for i in 0..good.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = good.clone();
                bad[i] ^= bit;
                out.clear();
                if decompress_stream_into(&bad, data.len(), &mut out).is_some() {
                    assert!(out.len() <= data.len());
                }
            }
        }
        // `max_raw` is a hard cap.
        out.clear();
        assert!(decompress_stream_into(&good, data.len() - 1, &mut out).is_none());
        // Unknown scheme byte.
        let mut bad = good.clone();
        bad[0] = 9;
        out.clear();
        assert!(decompress_stream_into(&bad, data.len(), &mut out).is_none());
    }

    #[test]
    fn lz_handles_overlapping_matches() {
        // A long single-byte run forces distance-1 overlapping copies.
        let mut data = vec![b'A'; 500];
        data.extend_from_slice(b"tail");
        let mut lz = Vec::new();
        lz_compress(&data, &mut lz);
        let mut out = Vec::new();
        lz_decompress_into(&lz, data.len(), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn bytes_roundtrip_and_bounds() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        let mut buf = &out[..];
        assert_eq!(get_bytes(&mut buf, 100).unwrap(), b"hello");
        let mut buf2 = &out[..];
        assert!(get_bytes(&mut buf2, 3).is_none(), "length cap enforced");
        let mut truncated = &out[..3];
        assert!(get_bytes(&mut truncated, 100).is_none());
    }
}
