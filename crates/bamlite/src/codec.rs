//! Byte-level codecs for the BAL block format: LEB128 varints, zigzag
//! deltas, and run-length encoding for quality strings.
//!
//! These replace DEFLATE in the BGZF analogy. Simulated (and much real
//! Illumina) quality data is plateau-heavy, so RLE compresses it well while
//! keeping a genuine, measurable per-block decode cost — which is the
//! behaviour the paper's Figure 2 trace attributes to file decompression.

use bytes::{Buf, BufMut};

/// Append an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint; `None` on truncation or overflow.
pub fn get_varint(buf: &mut impl Buf) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed value for varint storage.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Run-length-encode a byte string as `(count, value)` varint pairs,
/// prefixed by the run count.
pub fn rle_encode(out: &mut Vec<u8>, data: &[u8]) {
    let mut runs: Vec<(u64, u8)> = Vec::new();
    for &b in data {
        match runs.last_mut() {
            Some((n, v)) if *v == b => *n += 1,
            _ => runs.push((1, b)),
        }
    }
    put_varint(out, runs.len() as u64);
    for (n, v) in runs {
        put_varint(out, n);
        out.push(v);
    }
}

/// Decode an RLE byte string produced by [`rle_encode`]. `max_len` bounds
/// the output to protect against corrupt counts.
pub fn rle_decode(buf: &mut impl Buf, max_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    rle_decode_into(buf, max_len, &mut out)?;
    Some(out)
}

/// Decode an RLE byte string, **appending** to `out` — the zero-alloc form
/// the arena batch decoder uses (a warmed buffer is never reallocated).
/// `max_len` bounds the decoded length, not the total buffer length.
///
/// Run counts are compared in `u64` before any narrowing, so a corrupt
/// count can neither wrap a 32-bit `usize` nor size an allocation beyond
/// `max_len`.
pub fn rle_decode_into(buf: &mut impl Buf, max_len: usize, out: &mut Vec<u8>) -> Option<()> {
    let n_runs = get_varint(buf)?;
    let start = out.len();
    for _ in 0..n_runs {
        let count = get_varint(buf)?;
        let decoded = (out.len() - start) as u64;
        if !buf.has_remaining() || count.saturating_add(decoded) > max_len as u64 {
            return None;
        }
        let value = buf.get_u8();
        out.resize(out.len() + count as usize, value);
    }
    Some(())
}

/// Append a length-prefixed raw byte string.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Read a length-prefixed raw byte string (bounded by `max_len`). The
/// length is compared in `u64` before narrowing, so corrupt prefixes
/// cannot wrap on 32-bit targets.
pub fn get_bytes(buf: &mut impl Buf, max_len: usize) -> Option<Vec<u8>> {
    let len = get_varint(buf)?;
    if len > max_len as u64 {
        return None;
    }
    let len = len as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Some(out)
}

/// Append a fixed-width little-endian u64 (used by the file trailer, where
/// self-describing width matters more than compactness).
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.put_u64_le(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut buf = &out[..];
            assert_eq!(get_varint(&mut buf), Some(v), "value {v}");
            assert!(!buf.has_remaining());
        }
    }

    #[test]
    fn varint_sizes() {
        let mut out = Vec::new();
        put_varint(&mut out, 127);
        assert_eq!(out.len(), 1);
        out.clear();
        put_varint(&mut out, 128);
        assert_eq!(out.len(), 2);
        out.clear();
        put_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn varint_truncation_detected() {
        let mut out = Vec::new();
        put_varint(&mut out, 300);
        let mut buf = &out[..1]; // drop the final byte
        assert_eq!(get_varint(&mut buf), None);
        assert_eq!(get_varint(&mut &[][..]), None);
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes exceed 64 bits.
        let bad = [0xffu8; 11];
        assert_eq!(get_varint(&mut &bad[..]), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn rle_roundtrip_plateaus() {
        let data: Vec<u8> = [vec![37u8; 50], vec![32u8; 30], vec![2u8; 5]].concat();
        let mut out = Vec::new();
        rle_encode(&mut out, &data);
        assert!(
            out.len() < 15,
            "plateaus should compress hard: {}",
            out.len()
        );
        let decoded = rle_decode(&mut &out[..], data.len()).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn rle_roundtrip_worst_case() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        rle_encode(&mut out, &data);
        let decoded = rle_decode(&mut &out[..], 256).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn rle_empty() {
        let mut out = Vec::new();
        rle_encode(&mut out, &[]);
        let decoded = rle_decode(&mut &out[..], 0).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn rle_bounds_corrupt_counts() {
        let mut out = Vec::new();
        rle_encode(&mut out, &[7u8; 100]);
        // max_len smaller than actual: decoder must refuse, not allocate.
        assert!(rle_decode(&mut &out[..], 10).is_none());
    }

    #[test]
    fn bytes_roundtrip_and_bounds() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        let mut buf = &out[..];
        assert_eq!(get_bytes(&mut buf, 100).unwrap(), b"hello");
        let mut buf2 = &out[..];
        assert!(get_bytes(&mut buf2, 3).is_none(), "length cap enforced");
        let mut truncated = &out[..3];
        assert!(get_bytes(&mut truncated, 100).is_none());
    }
}
