//! Decode-once ingest: quality dictionaries, arena record batches, and the
//! shared decoded-block cache.
//!
//! # Why this module exists
//!
//! The legacy decode path materializes every read as an owned [`Record`]:
//! one `Vec<CigarOp>`, one packed-base `Vec<u8>`, one RLE scratch `Vec`,
//! and one `Vec<Phred>` per record — four heap allocations and a
//! byte-by-byte Phred construction for data the pileup engine immediately
//! re-reduces into a quality histogram. On an ultra-deep sample the caller
//! decodes tens of millions of records, so the allocator traffic (not the
//! arithmetic) dominates ingest.
//!
//! The batch path decodes a whole block **once, into one arena**:
//!
//! * [`RecordBatch`] holds three flat arrays — unpacked base codes,
//!   per-base **quality-bin indices**, and CIGAR ops — plus a small
//!   per-record metadata table. Records are `(offset, len)` views
//!   ([`RecordView`]) into the arenas; re-decoding a block into a warmed
//!   batch performs **zero** allocations.
//! * [`QualityDict`] is the per-file spectrum of distinct Phred scores,
//!   sorted descending (= ascending error probability). v2 BAL blocks
//!   store each base's quality as its dictionary index, so the pileup
//!   layer can stack bin ids directly and derive its `min_baseq` filter
//!   from a single index comparison.
//! * [`SharedBlockCache`] decodes each block of a file **exactly once per
//!   run** and hands out shared references, so parallel workers whose
//!   column chunks straddle a block boundary no longer re-decode the
//!   boundary block — the duplicated "decompression" work the Figure 2
//!   trace used to over-attribute.

use crate::cigar::{Cigar, CigarOp};
use crate::codec::{decompress_stream_into, get_varint};
use crate::file::{BalFile, DecodeStats, MAX_STREAM_RAW};
use crate::record::{Flags, Record};
use crate::BalError;
use std::time::{Duration, Instant};
use ultravc_genome::alphabet::Base;
use ultravc_genome::phred::{Phred, MAX_PHRED};
use ultravc_genome::sequence::Seq;
use ultravc_sync::atomic::{AtomicBool, AtomicU32, Ordering};
use ultravc_sync::{Arc, Condvar, Mutex};

/// Number of representable Phred scores; the identity dictionary has one
/// bin per score.
pub const QUAL_SLOTS: usize = MAX_PHRED as usize + 1;

/// Learned-dictionary capacity. Real Illumina spectra fit in a handful of
/// plateaus and simulated ones in ≤ ~25 values; a file whose spectrum
/// exceeds this spills to the identity dictionary instead of failing.
pub const QUALITY_DICT_CAP: usize = 40;

/// A file's quality spectrum: the distinct Phred scores it contains,
/// sorted descending (so ascending error probability), each addressed by
/// its **bin index**.
///
/// v2 BAL payloads store per-base qualities as bin indices against this
/// dictionary. Sorting descending buys two things downstream:
///
/// * a `min_baseq` filter is a single comparison against a precomputed
///   cutoff index (bins `>= cutoff` are exactly the too-low qualities);
/// * the pileup layer's `(probability, multiplicity)` bins come out
///   pre-sorted without a per-column re-sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityDict {
    /// Distinct scores, strictly descending.
    quals: Vec<Phred>,
    /// Clamped Phred score → bin index (undefined entries point at 0 and
    /// are never consulted for scores absent from the spectrum).
    bin_table: [u8; QUAL_SLOTS],
    /// Whether the observed spectrum exceeded [`QUALITY_DICT_CAP`] and the
    /// dictionary fell back to the identity mapping.
    spilled: bool,
}

impl QualityDict {
    /// Build from a per-score occurrence histogram (index = clamped Phred
    /// score). Spectra wider than [`QUALITY_DICT_CAP`] spill to
    /// [`QualityDict::identity`].
    pub fn from_histogram(counts: &[u64; QUAL_SLOTS]) -> QualityDict {
        let distinct = counts.iter().filter(|&&n| n > 0).count();
        if distinct > QUALITY_DICT_CAP {
            let mut dict = QualityDict::identity();
            dict.spilled = true;
            return dict;
        }
        let quals: Vec<Phred> = (0..QUAL_SLOTS)
            .rev()
            .filter(|&q| counts[q] > 0)
            .map(|q| Phred(q as u8))
            .collect();
        QualityDict::from_sorted(quals, false)
    }

    /// The identity dictionary: one bin per representable score, bin `b`
    /// holding `Phred(MAX_PHRED − b)`. Used for v1 files (whose spectrum
    /// is unknown until decode) and as the spill target.
    pub fn identity() -> QualityDict {
        let quals: Vec<Phred> = (0..QUAL_SLOTS).rev().map(|q| Phred(q as u8)).collect();
        QualityDict::from_sorted(quals, false)
    }

    fn from_sorted(quals: Vec<Phred>, spilled: bool) -> QualityDict {
        debug_assert!(quals.windows(2).all(|w| w[0] > w[1]), "strictly descending");
        let mut bin_table = [0u8; QUAL_SLOTS];
        for (bin, q) in quals.iter().enumerate() {
            bin_table[q.0 as usize] = bin as u8;
        }
        QualityDict {
            quals,
            bin_table,
            spilled,
        }
    }

    /// Rebuild from serialized score bytes (strictly descending). Used by
    /// the v2 file parser; rejects malformed dictionaries.
    pub(crate) fn from_bytes(quals: &[u8], spilled: bool) -> Result<QualityDict, BalError> {
        if quals.len() > QUAL_SLOTS {
            return Err(BalError::Corrupt("quality dict too large"));
        }
        if !quals.windows(2).all(|w| w[0] > w[1]) {
            return Err(BalError::Corrupt("quality dict not strictly descending"));
        }
        if quals.iter().any(|&q| q > MAX_PHRED) {
            return Err(BalError::Corrupt("quality dict score out of range"));
        }
        Ok(QualityDict::from_sorted(
            quals.iter().map(|&q| Phred(q)).collect(),
            spilled,
        ))
    }

    /// Number of bins (distinct scores).
    #[inline]
    pub fn len(&self) -> usize {
        self.quals.len()
    }

    /// Whether the dictionary is empty (a file with no records).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.quals.is_empty()
    }

    /// Whether construction spilled to the identity mapping.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// The scores, strictly descending — bin index → Phred.
    #[inline]
    pub fn quals(&self) -> &[Phred] {
        &self.quals
    }

    /// The score a bin index stands for. Panics on an out-of-range bin
    /// (the decoder validates indices before they reach consumers).
    #[inline]
    pub fn phred(&self, bin: u8) -> Phred {
        self.quals[bin as usize]
    }

    /// The bin index of a (clamped) score. Only meaningful for scores in
    /// the spectrum; the writer consults it exactly for those.
    #[inline]
    pub fn bin_of(&self, q: Phred) -> u8 {
        self.bin_table[(q.0 as usize).min(MAX_PHRED as usize)]
    }

    /// Number of leading bins whose score is `>= min_q` — the `min_baseq`
    /// filter cutoff: a base passes iff its bin index is below this.
    pub fn bins_at_least(&self, min_q: u8) -> u8 {
        self.quals.iter().take_while(|q| q.0 >= min_q).count() as u8
    }
}

/// Per-record metadata inside a [`RecordBatch`]: fixed-width fields plus
/// `(offset, len)` spans into the shared arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RecMeta {
    pub id: u64,
    pub pos: u32,
    pub end_pos: u32,
    pub seq_off: u32,
    pub seq_len: u32,
    pub cig_off: u32,
    pub cig_len: u32,
    pub mapq: u8,
    pub flags: Flags,
}

/// One decoded block as flat arenas: every record's bases, quality-bin
/// indices and CIGAR ops live in three shared arrays, addressed by
/// per-record `(offset, len)` spans. Re-filling a warmed batch allocates
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct RecordBatch {
    recs: Vec<RecMeta>,
    /// Unpacked base codes (one byte per base, [`Base::code`] values).
    bases: Vec<u8>,
    /// Quality-bin indices, parallel to `bases`.
    bins: Vec<u8>,
    /// CIGAR operations, all records back to back.
    ops: Vec<CigarOp>,
    /// v3 per-stream decompression scratch, kept warmed alongside the
    /// arenas so re-decoding a v3 block into a used batch also allocates
    /// nothing. Not part of the batch's value (see `PartialEq`).
    scratch: StreamScratch,
}

/// Decompressed v3 stream buffers (meta, cigar, base). The qual stream
/// needs no scratch: its decoded form *is* the block's concatenated bin
/// indices, so it decompresses straight into the `bins` arena.
#[derive(Debug, Clone, Default)]
struct StreamScratch {
    meta: Vec<u8>,
    cigar: Vec<u8>,
    base: Vec<u8>,
}

/// Batches compare by decoded content only — the transient decompression
/// scratch is an implementation detail of the v3 path.
impl PartialEq for RecordBatch {
    fn eq(&self, other: &RecordBatch) -> bool {
        self.recs == other.recs
            && self.bases == other.bases
            && self.bins == other.bins
            && self.ops == other.ops
    }
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> RecordBatch {
        RecordBatch::default()
    }

    /// Remove all records, keeping the arena allocations.
    pub fn clear(&mut self) {
        self.recs.clear();
        self.bases.clear();
        self.bins.clear();
        self.ops.clear();
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the batch holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Total bases across all records.
    pub fn n_bases(&self) -> usize {
        self.bases.len()
    }

    /// View of record `i`. Panics when out of range.
    #[inline]
    pub fn view(&self, i: usize) -> RecordView<'_> {
        let m = &self.recs[i];
        let (s0, s1) = (m.seq_off as usize, (m.seq_off + m.seq_len) as usize);
        let (c0, c1) = (m.cig_off as usize, (m.cig_off + m.cig_len) as usize);
        RecordView {
            meta: m,
            bases: &self.bases[s0..s1],
            bins: &self.bins[s0..s1],
            ops: &self.ops[c0..c1],
        }
    }

    /// Iterate all record views.
    pub fn views(&self) -> impl Iterator<Item = RecordView<'_>> + '_ {
        (0..self.len()).map(move |i| self.view(i))
    }

    /// Start position of record `i` without building a view.
    #[inline]
    pub fn pos(&self, i: usize) -> u32 {
        self.recs[i].pos
    }
}

/// A zero-copy view of one record inside a [`RecordBatch`].
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    meta: &'a RecMeta,
    bases: &'a [u8],
    bins: &'a [u8],
    ops: &'a [CigarOp],
}

impl<'a> RecordView<'a> {
    /// Read identifier.
    #[inline]
    pub fn id(&self) -> u64 {
        self.meta.id
    }

    /// 0-based leftmost reference position.
    #[inline]
    pub fn pos(&self) -> u32 {
        self.meta.pos
    }

    /// Mapping quality.
    #[inline]
    pub fn mapq(&self) -> u8 {
        self.meta.mapq
    }

    /// Flag bits.
    #[inline]
    pub fn flags(&self) -> Flags {
        self.meta.flags
    }

    /// Number of read bases.
    #[inline]
    pub fn read_len(&self) -> usize {
        self.bases.len()
    }

    /// Exclusive end position on the reference (precomputed at decode).
    #[inline]
    pub fn end_pos(&self) -> u32 {
        self.meta.end_pos
    }

    /// Unpacked base codes.
    #[inline]
    pub fn base_codes(&self) -> &'a [u8] {
        self.bases
    }

    /// Per-base quality-bin indices.
    #[inline]
    pub fn bin_indices(&self) -> &'a [u8] {
        self.bins
    }

    /// CIGAR operations.
    #[inline]
    pub fn cigar_ops(&self) -> &'a [CigarOp] {
        self.ops
    }

    /// Iterate `(ref_pos, base_code, bin_index)` for every aligned base —
    /// the batch-path analogue of [`Record::aligned_bases`].
    pub fn aligned(&self) -> impl Iterator<Item = (u32, u8, u8)> + 'a {
        let bases = self.bases;
        let bins = self.bins;
        Cigar::walk_ops(self.ops, self.meta.pos)
            .map(move |(rp, qi)| (rp, bases[qi as usize], bins[qi as usize]))
    }

    /// Materialize an owned [`Record`], resolving bin indices through the
    /// dictionary — the compatibility bridge to the legacy path (and the
    /// field-for-field equivalence oracle the proptests exercise).
    pub fn to_record(&self, dict: &QualityDict) -> Record {
        let seq = Seq::from_bases(self.bases.iter().map(|&c| Base::from_code(c)));
        let quals: Vec<Phred> = self.bins.iter().map(|&b| dict.phred(b)).collect();
        Record::new(
            self.meta.id,
            self.meta.pos,
            self.meta.mapq,
            self.meta.flags,
            seq,
            quals,
            Cigar(self.ops.to_vec()),
        )
        .expect("batch records were validated at decode")
    }
}

/// Decode block `i` of `file` into `batch` (cleared first). This is the
/// core arena decoder both [`crate::BalReader::decode_batch`] and the
/// [`SharedBlockCache`] run; on a warmed batch it performs no allocation.
pub fn decode_block_into(
    file: &BalFile,
    i: usize,
    batch: &mut RecordBatch,
) -> Result<(), BalError> {
    batch.clear();
    let meta = *file
        .index()
        .get(i)
        .ok_or(BalError::Corrupt("block index out of range"))?;
    let payload = file.block_payload(&meta)?;
    let dict = file.quality_dict();
    if file.version() >= 3 {
        return decode_block_v3(&payload, &meta, batch, dict);
    }
    let v2 = file.version() >= 2;
    let mut buf = &payload[..];
    let n = get_varint(&mut buf).ok_or(BalError::Corrupt("truncated block header"))?;
    if n != meta.n_records as u64 {
        return Err(BalError::Corrupt("record count mismatch"));
    }
    let n = n as usize;
    batch.recs.reserve(n);
    let mut prev = 0u32;
    for _ in 0..n {
        decode_batch_record(&mut buf, batch, &mut prev, dict, v2)?;
    }
    Ok(())
}

/// Decode one v3 columnar block: parse the stream framing, bulk-decompress
/// the four streams into the batch's warmed scratch buffers, then walk
/// them in lockstep into the arenas. Validation matches the v2 record path
/// check for check (positions, CIGAR codes and lengths, bin indices,
/// arena-offset overflow), plus the stream-level invariants: lengths must
/// tile the payload exactly and every stream must be consumed exactly.
fn decode_block_v3(
    payload: &[u8],
    meta: &crate::file::BlockMeta,
    batch: &mut RecordBatch,
    dict: &QualityDict,
) -> Result<(), BalError> {
    let mut buf = payload;
    let n = get_varint(&mut buf).ok_or(BalError::Corrupt("truncated block header"))?;
    if n != meta.n_records as u64 {
        return Err(BalError::Corrupt("record count mismatch"));
    }
    let n = n as usize;
    let mut lens = [0usize; 4];
    for len in &mut lens {
        let v = get_varint(&mut buf).ok_or(BalError::Corrupt("truncated stream lengths"))?;
        *len = usize::try_from(v).map_err(|_| BalError::Corrupt("stream length overflows"))?;
    }
    let total = lens
        .iter()
        .try_fold(0usize, |acc, &l| acc.checked_add(l))
        .ok_or(BalError::Corrupt("stream lengths overflow"))?;
    if total != buf.len() {
        return Err(BalError::Corrupt("stream lengths disagree with block size"));
    }
    let (meta_c, rest) = buf.split_at(lens[0]);
    let (cigar_c, rest) = rest.split_at(lens[1]);
    let (base_c, qual_c) = rest.split_at(lens[2]);
    // The scratch leaves the batch during the decode so the walk below can
    // borrow it immutably while filling the arenas mutably.
    let mut scratch = std::mem::take(&mut batch.scratch);
    let result = (|| {
        scratch.meta.clear();
        scratch.cigar.clear();
        scratch.base.clear();
        decompress_stream_into(meta_c, MAX_STREAM_RAW, &mut scratch.meta)
            .ok_or(BalError::Corrupt("corrupt meta stream"))?;
        decompress_stream_into(cigar_c, MAX_STREAM_RAW, &mut scratch.cigar)
            .ok_or(BalError::Corrupt("corrupt cigar stream"))?;
        decompress_stream_into(base_c, MAX_STREAM_RAW, &mut scratch.base)
            .ok_or(BalError::Corrupt("corrupt base stream"))?;
        // The qual stream decompresses straight into the bins arena (its
        // decoded form is exactly the block's concatenated bin indices —
        // saves a whole-stream copy on the hot path) and is validated
        // against the dictionary in one scan.
        debug_assert!(batch.bins.is_empty(), "decode starts from a cleared batch");
        decompress_stream_into(qual_c, MAX_STREAM_RAW, &mut batch.bins)
            .ok_or(BalError::Corrupt("corrupt qual stream"))?;
        // Reduce with `max` rather than a short-circuiting `any` — no
        // early exit means the scan vectorizes, and corrupt input is the
        // cold case anyway.
        let max_bin = batch.bins.iter().fold(0u8, |m, &b| m.max(b));
        if !batch.bins.is_empty() && max_bin as usize >= dict.len() {
            return Err(BalError::Corrupt("quality bin index out of dictionary"));
        }
        walk_v3_streams(&scratch, n, batch)
    })();
    batch.scratch = scratch;
    result
}

fn walk_v3_streams(
    scratch: &StreamScratch,
    n: usize,
    batch: &mut RecordBatch,
) -> Result<(), BalError> {
    // Every record owes the meta stream at least six bytes (delta, id,
    // op count, read length ≥ 1 byte each; mapq and flags exactly one),
    // which bounds `reserve` against a corrupt record count.
    if (n as u64) * 6 > scratch.meta.len() as u64 {
        return Err(BalError::Corrupt("record count exceeds meta stream"));
    }
    batch.recs.reserve(n);
    let mut mbuf = &scratch.meta[..];
    let mut cbuf = &scratch.cigar[..];
    let mut bbuf = &scratch.base[..];
    // The qual stream was already decompressed into `batch.bins` and
    // dictionary-validated; the walk only has to check that the records'
    // sequence lengths tile it exactly.
    let mut qual_cursor = 0usize;
    let mut prev = 0u32;
    for _ in 0..n {
        let delta = get_varint(&mut mbuf).ok_or(BalError::Corrupt("truncated position"))?;
        let pos = u32::try_from(delta)
            .ok()
            .and_then(|d| prev.checked_add(d))
            .ok_or(BalError::Corrupt("position overflows coordinate space"))?;
        prev = pos;
        let id = get_varint(&mut mbuf).ok_or(BalError::Corrupt("truncated id"))?;
        let [mapq, flags_byte] = *mbuf
            .get(..2)
            .ok_or(BalError::Corrupt("truncated mapq/flags"))?
        else {
            unreachable!("slice of length 2")
        };
        mbuf = &mbuf[2..];
        let cig_off = batch.ops.len();
        if cig_off > (u32::MAX as usize) - MAX_READ_LEN
            || batch.bases.len() > (u32::MAX as usize) - MAX_READ_LEN
        {
            return Err(BalError::Corrupt("block arena exceeds u32 offsets"));
        }
        let n_ops = crate::file::checked_len(
            get_varint(&mut mbuf).ok_or(BalError::Corrupt("truncated cigar count"))?,
            "absurd cigar op count",
        )?;
        let seq_len = crate::file::checked_len(
            get_varint(&mut mbuf).ok_or(BalError::Corrupt("truncated seq length"))?,
            "absurd read length",
        )?;

        // CIGAR ops from the cigar stream.
        batch.ops.reserve(n_ops);
        let (mut query_len, mut ref_len) = (0u64, 0u64);
        for _ in 0..n_ops {
            let v = get_varint(&mut cbuf).ok_or(BalError::Corrupt("truncated cigar op"))?;
            let op_len = u32::try_from(v >> 2)
                .map_err(|_| BalError::Corrupt("cigar op length overflows"))?;
            let op = CigarOp::from_code((v & 0b11) as u8, op_len)
                .ok_or(BalError::Corrupt("bad cigar op code"))?;
            query_len += op.query_len() as u64;
            ref_len += op.ref_len() as u64;
            batch.ops.push(op);
        }
        let end_pos = u32::try_from(ref_len)
            .ok()
            .and_then(|r| pos.checked_add(r))
            .ok_or(BalError::Corrupt("alignment extends past coordinate space"))?;
        if query_len != seq_len as u64 {
            return Err(BalError::Corrupt("cigar/sequence length mismatch"));
        }

        // Packed bases from the base stream (byte-aligned per record).
        let packed_len = seq_len.div_ceil(4);
        if bbuf.len() < packed_len {
            return Err(BalError::Corrupt("truncated base stream"));
        }
        let (packed, rest) = bbuf.split_at(packed_len);
        bbuf = rest;
        let seq_off = batch.bases.len();
        unpack_bases(packed, seq_len, &mut batch.bases);

        // Qual-bin indices: already in the bins arena at exactly this
        // record's offset (both arenas concatenate in record order), so
        // just account for the slice.
        qual_cursor = qual_cursor
            .checked_add(seq_len)
            .filter(|&end| end <= batch.bins.len())
            .ok_or(BalError::Corrupt("truncated qual stream"))?;

        batch.recs.push(RecMeta {
            id,
            pos,
            end_pos,
            seq_off: seq_off as u32,
            seq_len: seq_len as u32,
            cig_off: cig_off as u32,
            cig_len: n_ops as u32,
            mapq,
            flags: Flags(flags_byte),
        });
    }
    if !(mbuf.is_empty() && cbuf.is_empty() && bbuf.is_empty()) || qual_cursor != batch.bins.len() {
        return Err(BalError::Corrupt("v3 stream bytes left over"));
    }
    Ok(())
}

/// Unpack 2-bit base codes into the arena; `packed` must hold exactly
/// `ceil(seq_len / 4)` bytes (callers check before slicing).
fn unpack_bases(packed: &[u8], seq_len: usize, bases: &mut Vec<u8>) {
    let seq_off = bases.len();
    bases.resize(seq_off + seq_len, 0);
    let dst = &mut bases[seq_off..];
    let mut chunks = dst.chunks_exact_mut(4);
    for (out4, &byte) in (&mut chunks).zip(packed) {
        out4[0] = byte & 0b11;
        out4[1] = (byte >> 2) & 0b11;
        out4[2] = (byte >> 4) & 0b11;
        out4[3] = (byte >> 6) & 0b11;
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let byte = packed[packed.len() - 1];
        for (within, out) in tail.iter_mut().enumerate() {
            *out = (byte >> (within * 2)) & 0b11;
        }
    }
}

/// Upper bound on a single read length accepted by the decoder (mirrors
/// the legacy decoder's bound).
const MAX_READ_LEN: usize = 1 << 20;

fn decode_batch_record(
    buf: &mut &[u8],
    batch: &mut RecordBatch,
    prev: &mut u32,
    dict: &QualityDict,
    v2: bool,
) -> Result<(), BalError> {
    let delta = get_varint(buf).ok_or(BalError::Corrupt("truncated position"))?;
    let pos = u32::try_from(delta)
        .ok()
        .and_then(|d| prev.checked_add(d))
        .ok_or(BalError::Corrupt("position overflows coordinate space"))?;
    *prev = pos;
    let id = get_varint(buf).ok_or(BalError::Corrupt("truncated id"))?;
    let [mapq, flags_byte] = *buf
        .get(..2)
        .ok_or(BalError::Corrupt("truncated mapq/flags"))?
    else {
        unreachable!("slice of length 2")
    };
    *buf = &buf[2..];

    // CIGAR ops into the shared arena. Arena offsets are stored as u32
    // spans; a block whose arenas would outgrow that (pathological block
    // capacity × read length, or corrupt counts) is rejected rather than
    // silently wrapped.
    let cig_off = batch.ops.len();
    if cig_off > (u32::MAX as usize) - MAX_READ_LEN
        || batch.bases.len() > (u32::MAX as usize) - MAX_READ_LEN
    {
        return Err(BalError::Corrupt("block arena exceeds u32 offsets"));
    }
    let n_ops = crate::file::checked_len(
        get_varint(buf).ok_or(BalError::Corrupt("truncated cigar count"))?,
        "absurd cigar op count",
    )?;
    batch.ops.reserve(n_ops);
    let (mut query_len, mut ref_len) = (0u64, 0u64);
    for _ in 0..n_ops {
        let v = get_varint(buf).ok_or(BalError::Corrupt("truncated cigar op"))?;
        let op_len =
            u32::try_from(v >> 2).map_err(|_| BalError::Corrupt("cigar op length overflows"))?;
        let op = CigarOp::from_code((v & 0b11) as u8, op_len)
            .ok_or(BalError::Corrupt("bad cigar op code"))?;
        query_len += op.query_len() as u64;
        ref_len += op.ref_len() as u64;
        batch.ops.push(op);
    }
    let end_pos = u32::try_from(ref_len)
        .ok()
        .and_then(|r| pos.checked_add(r))
        .ok_or(BalError::Corrupt("alignment extends past coordinate space"))?;

    // Bases: unpack the 2-bit codes straight out of the payload slice.
    let seq_len = crate::file::checked_len(
        get_varint(buf).ok_or(BalError::Corrupt("truncated seq length"))?,
        "absurd read length",
    )?;
    let packed_len = get_varint(buf).ok_or(BalError::Corrupt("truncated seq bytes"))?;
    if packed_len != seq_len.div_ceil(4) as u64 {
        return Err(BalError::Corrupt("seq byte count mismatch"));
    }
    let packed_len = packed_len as usize;
    if buf.len() < packed_len {
        return Err(BalError::Corrupt("seq byte count mismatch"));
    }
    let (packed, rest) = buf.split_at(packed_len);
    *buf = rest;
    let seq_off = batch.bases.len();
    unpack_bases(packed, seq_len, &mut batch.bases);

    // Qualities: decoded run by run, so validation (v2: bin index in
    // dictionary) and translation (v1: raw score → identity bin) are
    // per-run, not per-base, and each run expands as one fill.
    let n_runs = get_varint(buf).ok_or(BalError::Corrupt("truncated qual runs"))?;
    let n_bins = dict.len() as u8;
    let mut remaining = seq_len;
    // `n_runs` stays u64: each iteration consumes at least two payload
    // bytes or errors out, so a pathological count terminates on
    // truncation without ever sizing an allocation.
    for _ in 0..n_runs {
        let count = get_varint(buf).ok_or(BalError::Corrupt("truncated qual run"))?;
        if buf.is_empty() || count > remaining as u64 {
            return Err(BalError::Corrupt("truncated or oversized quals"));
        }
        let count = count as usize;
        let raw = buf[0];
        *buf = &buf[1..];
        let bin = if v2 {
            if raw >= n_bins {
                return Err(BalError::Corrupt("quality bin index out of dictionary"));
            }
            raw
        } else {
            // v1 stores raw scores; identity dictionary bin = MAX_PHRED − q.
            MAX_PHRED - raw.min(MAX_PHRED)
        };
        batch.bins.resize(batch.bins.len() + count, bin);
        remaining -= count;
    }
    if remaining != 0 {
        return Err(BalError::Corrupt("qual length mismatch"));
    }

    if query_len != seq_len as u64 {
        return Err(BalError::Corrupt("cigar/sequence length mismatch"));
    }
    batch.recs.push(RecMeta {
        id,
        pos,
        end_pos,
        seq_off: seq_off as u32,
        seq_len: seq_len as u32,
        cig_off: cig_off as u32,
        cig_len: n_ops as u32,
        mapq,
        flags: Flags(flags_byte),
    });
    Ok(())
}

/// One cache slot: the decoded arena (or its decode failure) plus the
/// number of outstanding expected requests before the arena can be
/// dropped.
#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    /// Requests still expected for this block (`u32::MAX` = unbounded:
    /// keep the arena for the cache's whole lifetime).
    remaining: AtomicU32,
    /// Whether a consumer has requested this slot yet (prefetch warms
    /// don't count) — drives the first-request watermark.
    requested: AtomicBool,
}

#[derive(Debug)]
enum SlotState {
    Empty,
    Ready(Arc<RecordBatch>),
    Failed(String),
    /// All expected requests served; the arena has been released.
    Retired,
}

/// A run-scoped decode-once cache over a file's blocks.
///
/// Parallel workers whose column chunks overlap the same block race to
/// decode it; exactly one wins (the slot mutex serializes the first
/// decode), everyone else gets the shared `Arc`. [`SharedBlockCache::get`]
/// reports whether *this* call performed the decode — and at what cost —
/// so per-worker [`DecodeStats`] sum to the true whole-run decode work
/// instead of multiply counting boundary blocks.
///
/// **Memory.** Built with [`SharedBlockCache::for_regions`], each slot
/// knows how many region iterators will request it and **releases its
/// arena after the last one** (requesters keep their own `Arc` while
/// absorbing), so peak residency is bounded by the blocks of in-flight
/// chunks, not the whole file. [`SharedBlockCache::new`] keeps every
/// arena for the cache's lifetime — only appropriate for short runs and
/// tests.
#[derive(Debug)]
pub struct SharedBlockCache {
    file: BalFile,
    slots: Vec<Slot>,
    decoded: AtomicU32,
    /// Consumption watermarks the bounded read-ahead of
    /// [`crate::prefetch`] paces itself against. Guarded by a mutex (not
    /// atomics) so waiters can park on the condvar without a lost-wakeup
    /// race between the check and the wait.
    progress: Mutex<PacerState>,
    progress_cv: Condvar,
}

/// Everything a pacer waits on, under one lock: the consumer watermarks
/// plus a shutdown "kick" counter that wakes waiters without moving any
/// watermark (see [`SharedBlockCache::kick_progress`]).
#[derive(Debug, Clone, Copy, Default)]
struct PacerState {
    progress: CacheProgress,
    kicks: u64,
}

/// Consumer-side progress through a cache's slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheProgress {
    /// Slots that have received their **first** consumer request — the
    /// workers' frontier. A prefetcher stays `ahead` schedule blocks past
    /// this, so prefetched-but-unrequested arenas are bounded by `ahead`.
    pub requested: u64,
    /// Slots that have served their **last** expected request (arena
    /// released). Always 0 for an unbounded [`SharedBlockCache::new`]
    /// cache, whose slots never retire.
    pub retired: u64,
}

impl SharedBlockCache {
    /// A cache with one empty slot per block of `file`, retaining every
    /// decoded arena until the cache is dropped.
    pub fn new(file: BalFile) -> SharedBlockCache {
        SharedBlockCache::with_expected(file, None)
    }

    /// A cache for a run whose workers will pile up exactly the given
    /// regions: each block's arena is released as soon as every region
    /// overlapping it has requested it once. (A region iterator requests
    /// each of its overlapping blocks exactly once; extra requests after
    /// retirement fall back to an uncached decode rather than failing.)
    pub fn for_regions(file: BalFile, regions: &[std::ops::Range<u32>]) -> SharedBlockCache {
        let mut expected = vec![0u32; file.n_blocks()];
        for r in regions {
            for b in file.blocks_overlapping(r.start, r.end) {
                expected[b] += 1;
            }
        }
        SharedBlockCache::with_expected(file, Some(expected))
    }

    /// A cache for a run executing a prepared [`crate::prefetch::IoPlan`]:
    /// equivalent to [`SharedBlockCache::for_regions`] over the plan's
    /// regions, but reusing the block windows the plan already computed
    /// instead of re-walking the index.
    pub fn for_plan(file: BalFile, plan: &crate::prefetch::IoPlan) -> SharedBlockCache {
        let mut expected = vec![0u32; file.n_blocks()];
        for window in plan.windows() {
            for &b in window.blocks() {
                if let Some(slot) = expected.get_mut(b) {
                    *slot += 1;
                }
            }
        }
        SharedBlockCache::with_expected(file, Some(expected))
    }

    fn with_expected(file: BalFile, expected: Option<Vec<u32>>) -> SharedBlockCache {
        let slots = (0..file.n_blocks())
            .map(|i| Slot {
                state: Mutex::new(SlotState::Empty),
                remaining: AtomicU32::new(expected.as_ref().map_or(u32::MAX, |e| e[i])),
                requested: AtomicBool::new(false),
            })
            .collect();
        SharedBlockCache {
            file,
            slots,
            decoded: AtomicU32::new(0),
            progress: Mutex::new(PacerState::default()),
            progress_cv: Condvar::new(),
        }
    }

    /// The underlying file.
    pub fn file(&self) -> &BalFile {
        &self.file
    }

    /// The decoded block `i`, decoding it if this is its first request.
    /// `Some(stats)` reports the decode this call performed; `None` means
    /// another request (possibly on another thread) already paid for it.
    pub fn get(&self, i: usize) -> Result<(Arc<RecordBatch>, Option<DecodeStats>), BalError> {
        let slot = self
            .slots
            .get(i)
            .ok_or(BalError::Corrupt("block index out of range"))?;
        // A panic while decoding (e.g. an injected worker fault) poisons
        // the slot mutex but leaves the state machine coherent — the slot
        // is still whatever it was before the panicking decode — so
        // recover the guard instead of cascading the abort.
        let mut state = slot
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (batch, performed) = match &*state {
            SlotState::Ready(batch) => (Arc::clone(batch), None),
            SlotState::Failed(msg) => {
                return Err(BalError::BadRecord(format!("cached block decode: {msg}")));
            }
            SlotState::Empty | SlotState::Retired => {
                // First request — or a request beyond the expected count
                // after retirement (caller declared fewer regions than it
                // ran): decode here. Retired slots stay retired.
                let retired = matches!(*state, SlotState::Retired);
                match self.decode(i) {
                    Ok((batch, stats)) => {
                        if !retired {
                            *state = SlotState::Ready(Arc::clone(&batch));
                        }
                        (batch, Some(stats))
                    }
                    Err(e) => {
                        // An interruption is the *run* stopping, not the
                        // block failing: leave the slot Empty so a later
                        // (uncancelled) run over the same cache could
                        // still decode it.
                        if !retired && !matches!(e, BalError::Interrupted(_)) {
                            *state = SlotState::Failed(e.to_string());
                        }
                        return Err(e);
                    }
                }
            }
        };
        // Count this request down; after the last expected one, release
        // the arena (we and any concurrent absorbers still hold Arcs).
        // Then advance the consumption watermarks the read-ahead paces
        // against: `requested` on a slot's first consumer request,
        // `retired` on its last expected one.
        let retiring = slot.remaining.load(Ordering::Relaxed) != u32::MAX
            && slot.remaining.fetch_sub(1, Ordering::Relaxed) == 1;
        if retiring {
            *state = SlotState::Retired;
        }
        drop(state);
        let first_request = !slot.requested.swap(true, Ordering::Relaxed);
        if first_request || retiring {
            let mut pacer = self
                .progress
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            pacer.progress.requested += u64::from(first_request);
            pacer.progress.retired += u64::from(retiring);
            self.progress_cv.notify_all();
        }
        Ok((batch, performed))
    }

    /// Warm slot `i` without consuming one of its expected requests: the
    /// read-ahead path. Decodes only when the slot is still `Empty`;
    /// already-decoded, already-failed and already-retired slots are left
    /// untouched, so a prefetcher racing the workers can never decode a
    /// block twice or resurrect a released arena.
    ///
    /// `Ok(Some(stats))` reports a decode this call performed (the caller
    /// owns those stats — fold them into the run total so decode
    /// accounting stays exact); `Ok(None)` means there was nothing to do.
    /// A decode failure is recorded in the slot (consumers will surface
    /// it on request) *and* returned, so the prefetcher can stop early on
    /// a corrupt file.
    pub fn prefetch_block(&self, i: usize) -> Result<Option<DecodeStats>, BalError> {
        let slot = self
            .slots
            .get(i)
            .ok_or(BalError::Corrupt("block index out of range"))?;
        let mut state = slot
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !matches!(*state, SlotState::Empty) {
            return Ok(None);
        }
        match self.decode(i) {
            Ok((batch, stats)) => {
                *state = SlotState::Ready(batch);
                Ok(Some(stats))
            }
            Err(e) => {
                // Same rule as `get`: an interrupted prefetch leaves the
                // slot Empty (demand reads can still serve it); only real
                // decode failures are cached for consumers to surface.
                if !matches!(e, BalError::Interrupted(_)) {
                    *state = SlotState::Failed(e.to_string());
                }
                Err(e)
            }
        }
    }

    /// The consumption watermarks (see [`CacheProgress`]).
    pub fn progress(&self) -> CacheProgress {
        self.progress
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .progress
    }

    /// Whether slot `i` has received its first consumer request yet
    /// (prefetch warms don't count). Out-of-range slots report `false`.
    /// The read-ahead uses this to track exactly which of the arenas it
    /// created are still waiting for a consumer.
    pub fn block_requested(&self, i: usize) -> bool {
        self.slots
            .get(i)
            .is_some_and(|s| s.requested.load(Ordering::Relaxed))
    }

    /// The retirement watermark: how many slots have served every
    /// expected request (always 0 for an unbounded
    /// [`SharedBlockCache::new`] cache, whose slots never retire).
    pub fn retired_blocks(&self) -> u64 {
        self.progress().retired
    }

    /// Block until the first-request watermark moves past `seen`
    /// (returning the new progress) or `timeout` elapses (returning the
    /// current progress). The timeout keeps a pacer waiting on an idle
    /// run — or one whose workers stopped early — live-checkable instead
    /// of parked forever.
    pub fn wait_requested_past(&self, seen: u64, timeout: Duration) -> CacheProgress {
        // `u64::MAX` seen kicks: only watermark movement (or the timeout)
        // can end this wait — the historical behavior of this method.
        self.wait_for_pacing(seen, u64::MAX, timeout)
    }

    /// Both pacing counters — the watermarks and the kick count — read
    /// under one lock acquisition, so a pacer can snapshot them without a
    /// window for a kick to slip between two reads.
    pub fn pacer_view(&self) -> (CacheProgress, u64) {
        let pacer = self
            .progress
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (pacer.progress, pacer.kicks)
    }

    /// Block until the first-request watermark moves past
    /// `seen_requested`, a [`SharedBlockCache::kick_progress`] arrives
    /// past `seen_kicks`, or `timeout` elapses; returns the watermarks at
    /// wake-up. Pass the counters from one [`SharedBlockCache::pacer_view`]
    /// call so no wake-up between the snapshot and the wait is lost.
    pub fn wait_for_pacing(
        &self,
        seen_requested: u64,
        seen_kicks: u64,
        timeout: Duration,
    ) -> CacheProgress {
        let pacer = self
            .progress
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (pacer, _) = self
            .progress_cv
            .wait_timeout_while(pacer, timeout, |p| {
                p.progress.requested <= seen_requested && p.kicks <= seen_kicks
            })
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pacer.progress
    }

    /// Wake every pacer waiting in [`SharedBlockCache::wait_for_pacing`]
    /// without moving any watermark: the shutdown nudge. A stopping
    /// driver kicks after setting its stop flag so the pacer observes the
    /// flag immediately instead of riding out its pacing timeout.
    pub fn kick_progress(&self) {
        let mut pacer = self
            .progress
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pacer.kicks += 1;
        self.progress_cv.notify_all();
    }

    fn decode(&self, i: usize) -> Result<(Arc<RecordBatch>, DecodeStats), BalError> {
        let t0 = Instant::now();
        let mut batch = RecordBatch::new();
        decode_block_into(&self.file, i, &mut batch)?;
        let stats = DecodeStats {
            blocks: 1,
            bytes_in: self.file.index()[i].len as u64,
            records_out: batch.len() as u64,
            decode_time: t0.elapsed(),
        };
        self.decoded.fetch_add(1, Ordering::Relaxed);
        Ok((Arc::new(batch), stats))
    }

    /// How many block decodes the cache has performed so far.
    pub fn decoded_blocks(&self) -> usize {
        self.decoded.load(Ordering::Relaxed) as usize
    }

    /// How many decoded arenas are currently held resident.
    pub fn resident_blocks(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                matches!(
                    *s.state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                    SlotState::Ready(_)
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::BalWriter;

    fn mk_record(id: u64, pos: u32, bases: &[u8], quals: &[u8]) -> Record {
        let seq = Seq::from_ascii(bases).unwrap();
        let quals: Vec<Phred> = quals.iter().map(|&q| Phred::new(q)).collect();
        Record::full_match(id, pos, 60, Flags::none(), seq, quals).unwrap()
    }

    fn sample_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let quals: Vec<u8> = (0..16).map(|j| 20 + ((i + j) % 20) as u8).collect();
                mk_record(i as u64, (i * 3) as u32, b"ACGTACGTACGTACGT", &quals)
            })
            .collect()
    }

    #[test]
    fn dict_from_histogram_sorted_descending() {
        let mut counts = [0u64; QUAL_SLOTS];
        counts[20] = 5;
        counts[40] = 1;
        counts[30] = 100;
        let dict = QualityDict::from_histogram(&counts);
        assert_eq!(dict.len(), 3);
        assert!(!dict.spilled());
        assert_eq!(
            dict.quals(),
            &[Phred(40), Phred(30), Phred(20)],
            "descending"
        );
        assert_eq!(dict.bin_of(Phred(40)), 0);
        assert_eq!(dict.bin_of(Phred(30)), 1);
        assert_eq!(dict.bin_of(Phred(20)), 2);
        assert_eq!(dict.phred(1), Phred(30));
    }

    #[test]
    fn dict_min_baseq_cutoff() {
        let mut counts = [0u64; QUAL_SLOTS];
        for q in [2u8, 10, 20, 30] {
            counts[q as usize] = 1;
        }
        let dict = QualityDict::from_histogram(&counts);
        // Bins: Q30, Q20, Q10, Q2. min_baseq=3 keeps the first three.
        assert_eq!(dict.bins_at_least(3), 3);
        assert_eq!(dict.bins_at_least(0), 4);
        assert_eq!(dict.bins_at_least(31), 0);
        // The cutoff is exactly the legacy `q >= min_baseq` predicate.
        for (bin, q) in dict.quals().iter().enumerate() {
            assert_eq!((bin as u8) < dict.bins_at_least(3), q.0 >= 3);
        }
    }

    #[test]
    fn dict_spills_past_cap() {
        let mut counts = [0u64; QUAL_SLOTS];
        for q in 0..(QUALITY_DICT_CAP + 1) {
            counts[q * 2] = 1; // 41 distinct scores
        }
        let dict = QualityDict::from_histogram(&counts);
        assert!(dict.spilled());
        assert_eq!(dict.len(), QUAL_SLOTS, "spill falls back to identity");
        // Identity mapping: bin b ↔ Phred(MAX_PHRED − b).
        for b in 0..QUAL_SLOTS {
            assert_eq!(dict.phred(b as u8), Phred(MAX_PHRED - b as u8));
        }
    }

    #[test]
    fn dict_identity_roundtrip() {
        let dict = QualityDict::identity();
        assert_eq!(dict.len(), QUAL_SLOTS);
        for q in 0..=MAX_PHRED {
            assert_eq!(dict.phred(dict.bin_of(Phred(q))), Phred(q));
        }
    }

    #[test]
    fn dict_from_bytes_validates() {
        assert!(QualityDict::from_bytes(&[40, 30, 20], false).is_ok());
        assert!(QualityDict::from_bytes(&[30, 30], false).is_err(), "dupes");
        assert!(
            QualityDict::from_bytes(&[20, 30], false).is_err(),
            "ascending"
        );
        assert!(
            QualityDict::from_bytes(&[94], false).is_err(),
            "out of range"
        );
        assert!(QualityDict::from_bytes(&[], false).is_ok(), "empty file");
    }

    #[test]
    fn batch_decode_matches_legacy_records() {
        // Pinned to both dictionary-binned versions explicitly, so the
        // test keeps its meaning when CI pins ULTRAVC_BAL_FORMAT=1.
        let records = sample_records(100);
        for version in [
            crate::file::FormatVersion::V2,
            crate::file::FormatVersion::V3,
        ] {
            let mut w =
                crate::file::BalWriter::with_options(crate::file::DEFAULT_BLOCK_CAPACITY, version);
            for rec in records.clone() {
                w.push(rec).unwrap();
            }
            let file = w.finish();
            assert!(file.version() >= 2, "{version:?} is dictionary-binned");
            let mut batch = RecordBatch::new();
            let mut got = Vec::new();
            for i in 0..file.n_blocks() {
                decode_block_into(&file, i, &mut batch).unwrap();
                got.extend(batch.views().map(|v| v.to_record(file.quality_dict())));
            }
            assert_eq!(got, records, "{version:?}");
        }
    }

    #[test]
    fn batch_decode_of_v1_file_via_identity_dict() {
        let records = sample_records(40);
        let file = BalFile::from_records_legacy(records.clone()).unwrap();
        assert_eq!(file.version(), 1);
        assert_eq!(file.quality_dict().len(), QUAL_SLOTS);
        let mut batch = RecordBatch::new();
        let mut got = Vec::new();
        for i in 0..file.n_blocks() {
            decode_block_into(&file, i, &mut batch).unwrap();
            got.extend(batch.views().map(|v| v.to_record(file.quality_dict())));
        }
        assert_eq!(got, records);
    }

    #[test]
    fn warmed_batch_does_not_reallocate() {
        let records = sample_records(200);
        let file = BalFile::from_records(records).unwrap();
        let mut batch = RecordBatch::new();
        decode_block_into(&file, 0, &mut batch).unwrap();
        let caps = (
            batch.recs.capacity(),
            batch.bases.capacity(),
            batch.bins.capacity(),
            batch.ops.capacity(),
        );
        decode_block_into(&file, 0, &mut batch).unwrap();
        assert_eq!(
            (
                batch.recs.capacity(),
                batch.bases.capacity(),
                batch.bins.capacity(),
                batch.ops.capacity(),
            ),
            caps
        );
    }

    #[test]
    fn view_accessors_and_aligned_walk() {
        let rec = mk_record(7, 100, b"ACGT", &[30, 20, 30, 40]);
        let file = BalFile::from_records(vec![rec.clone()]).unwrap();
        let mut batch = RecordBatch::new();
        decode_block_into(&file, 0, &mut batch).unwrap();
        assert_eq!(batch.len(), 1);
        let v = batch.view(0);
        assert_eq!(v.id(), 7);
        assert_eq!(v.pos(), 100);
        assert_eq!(v.mapq(), 60);
        assert_eq!(v.read_len(), 4);
        assert_eq!(v.end_pos(), 104);
        let dict = file.quality_dict();
        let aligned: Vec<(u32, Base, Phred)> = v
            .aligned()
            .map(|(rp, code, bin)| (rp, Base::from_code(code), dict.phred(bin)))
            .collect();
        let want: Vec<_> = rec.aligned_bases().collect();
        assert_eq!(aligned, want);
    }

    #[test]
    fn shared_cache_decodes_each_block_once() {
        let mut w = BalWriter::with_block_capacity(16);
        for rec in sample_records(100) {
            w.push(rec).unwrap();
        }
        let file = w.finish();
        let cache = Arc::new(SharedBlockCache::new(file.clone()));
        assert_eq!(cache.decoded_blocks(), 0);
        let n_blocks = file.n_blocks();
        let decodes: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        let mut mine = 0usize;
                        for i in 0..n_blocks {
                            let (batch, performed) = cache.get(i).unwrap();
                            assert!(!batch.is_empty());
                            if performed.is_some() {
                                mine += 1;
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(decodes, n_blocks, "each block decoded exactly once");
        assert_eq!(cache.decoded_blocks(), n_blocks);
        assert!(cache.get(n_blocks).is_err(), "out of range rejected");
    }

    #[test]
    fn cache_hits_share_the_same_batch() {
        let file = BalFile::from_records(sample_records(10)).unwrap();
        let cache = SharedBlockCache::new(file);
        let (a, first) = cache.get(0).unwrap();
        let (b, second) = cache.get(0).unwrap();
        assert!(first.is_some_and(|s| s.blocks == 1));
        assert!(second.is_none(), "second request is a cache hit");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn region_scoped_cache_releases_served_blocks() {
        let mut w = BalWriter::with_block_capacity(10);
        for rec in sample_records(100) {
            w.push(rec).unwrap();
        }
        let file = w.finish();
        let n_blocks = file.n_blocks();
        // Two regions covering everything: every block is expected twice.
        let regions = vec![0u32..150, 100..400];
        let cache = SharedBlockCache::for_regions(file.clone(), &regions);
        let expected: Vec<Vec<usize>> = regions
            .iter()
            .map(|r| file.blocks_overlapping(r.start, r.end))
            .collect();
        for blocks in &expected {
            for &b in blocks {
                let (batch, _) = cache.get(b).unwrap();
                assert!(!batch.is_empty());
            }
        }
        assert_eq!(
            cache.resident_blocks(),
            0,
            "all expected requests served: every arena released"
        );
        assert_eq!(cache.decoded_blocks(), n_blocks, "still decoded once each");
        // A straggler request past the declared count still works (fresh
        // uncached decode), it just pays for itself.
        let (batch, performed) = cache.get(0).unwrap();
        assert!(!batch.is_empty());
        assert!(performed.is_some(), "post-retirement request re-decodes");
    }

    #[test]
    fn prefetch_warms_slots_without_consuming_expectations() {
        let mut w = BalWriter::with_block_capacity(10);
        for rec in sample_records(50) {
            w.push(rec).unwrap();
        }
        let file = w.finish();
        let n_blocks = file.n_blocks();
        let regions = [0u32..400, 400..401];
        let cache = SharedBlockCache::for_regions(file.clone(), &regions);
        // Prefetch everything: every slot decodes exactly once, and the
        // prefetcher owns all the decode stats.
        let mut prefetch_stats = DecodeStats::default();
        for b in 0..n_blocks {
            let stats = cache
                .prefetch_block(b)
                .unwrap()
                .expect("first warm decodes");
            prefetch_stats.merge(&stats);
        }
        assert_eq!(prefetch_stats.blocks as usize, n_blocks);
        assert_eq!(cache.decoded_blocks(), n_blocks);
        // A second prefetch pass is a no-op.
        for b in 0..n_blocks {
            assert!(cache.prefetch_block(b).unwrap().is_none());
        }
        assert_eq!(cache.retired_blocks(), 0, "prefetch consumes nothing");
        // Workers now hit every slot without decoding, and their requests
        // (not the prefetches) drive retirement.
        for &b in &file.blocks_overlapping(0, 400) {
            let (batch, performed) = cache.get(b).unwrap();
            assert!(!batch.is_empty());
            assert!(performed.is_none(), "prefetched block must be a hit");
        }
        assert_eq!(cache.decoded_blocks(), n_blocks, "still decoded once each");
        assert_eq!(cache.retired_blocks() as usize, n_blocks);
        assert_eq!(cache.resident_blocks(), 0, "served slots released");
        // Prefetching a retired slot stays a no-op (never resurrects).
        assert!(cache.prefetch_block(0).unwrap().is_none());
        assert!(cache.prefetch_block(n_blocks).is_err(), "out of range");
    }

    #[test]
    fn progress_watermarks_observe_requests_and_retirement() {
        let file = BalFile::from_records(sample_records(30)).unwrap();
        // Two identical regions: each block is expected twice, so the
        // first pass advances `requested` without retiring anything and
        // the second pass retires.
        let regions = vec![0u32..200, 0..200];
        let cache = SharedBlockCache::for_regions(file.clone(), &regions);
        // Nothing requested yet: the wait must time out and report 0/0.
        assert_eq!(
            cache.wait_requested_past(0, Duration::from_millis(1)),
            CacheProgress::default(),
            "timeout path returns the current watermarks"
        );
        let blocks = file.blocks_overlapping(0, 200);
        let n = blocks.len() as u64;
        let (first, rest) = blocks.split_first().expect("non-empty file");
        // Prefetch warms don't advance the consumer watermark.
        cache.prefetch_block(*first).unwrap();
        assert_eq!(cache.progress(), CacheProgress::default());
        cache.get(*first).unwrap();
        assert_eq!(
            cache.wait_requested_past(0, Duration::from_millis(1)),
            CacheProgress {
                requested: 1,
                retired: 0
            }
        );
        for &b in rest {
            cache.get(b).unwrap();
        }
        let after_first_pass = cache.wait_requested_past(n - 1, Duration::from_secs(1));
        assert_eq!(after_first_pass.requested, n, "every block requested once");
        assert_eq!(after_first_pass.retired, 0, "second pass still expected");
        for &b in &blocks {
            cache.get(b).unwrap();
        }
        let done = cache.progress();
        assert_eq!(done.requested, n, "repeat requests don't double count");
        assert_eq!(done.retired, n, "all expectations served");
        assert_eq!(cache.retired_blocks(), n);
    }

    #[test]
    fn degenerate_single_bin_spectrum() {
        // A one-entry dictionary needs a binned version; pinned explicitly
        // so a CI-level ULTRAVC_BAL_FORMAT=1 doesn't change the subject.
        let records: Vec<Record> = (0..10)
            .map(|i| mk_record(i, i as u32, b"ACGT", &[37; 4]))
            .collect();
        for version in [
            crate::file::FormatVersion::V2,
            crate::file::FormatVersion::V3,
        ] {
            let mut w =
                crate::file::BalWriter::with_options(crate::file::DEFAULT_BLOCK_CAPACITY, version);
            for rec in records.clone() {
                w.push(rec).unwrap();
            }
            let file = w.finish();
            let dict = file.quality_dict();
            assert_eq!(dict.len(), 1);
            assert_eq!(dict.phred(0), Phred(37));
            let mut batch = RecordBatch::new();
            decode_block_into(&file, 0, &mut batch).unwrap();
            let got: Vec<Record> = batch.views().map(|v| v.to_record(dict)).collect();
            assert_eq!(got, records, "{version:?}");
        }
    }
}
