//! Alignment records: the BAL equivalent of a SAM/BAM line.

use crate::cigar::Cigar;
use serde::{Deserialize, Serialize};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;

/// Alignment flag bits (the subset of SAM flags this workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Flags(pub u8);

impl Flags {
    /// Read aligned to the reverse strand.
    pub const REVERSE: Flags = Flags(0x1);
    /// Secondary alignment (ignored by the pileup engine).
    pub const SECONDARY: Flags = Flags(0x2);
    /// PCR or optical duplicate (ignored by the pileup engine).
    pub const DUPLICATE: Flags = Flags(0x4);
    /// Read failed vendor quality checks (ignored by the pileup engine).
    pub const QC_FAIL: Flags = Flags(0x8);

    /// No flags set.
    pub fn none() -> Flags {
        Flags(0)
    }

    /// Whether all bits of `other` are set in `self`.
    #[inline]
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    #[inline]
    pub fn union(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Whether the read maps to the reverse strand.
    #[inline]
    pub fn is_reverse(self) -> bool {
        self.contains(Flags::REVERSE)
    }

    /// Whether the pileup engine should skip this record entirely.
    #[inline]
    pub fn is_filtered(self) -> bool {
        self.0 & (Flags::SECONDARY.0 | Flags::DUPLICATE.0 | Flags::QC_FAIL.0) != 0
    }
}

impl std::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        self.union(rhs)
    }
}

/// One aligned read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Read identifier (dense numeric ids; the simulator assigns them).
    pub id: u64,
    /// 0-based leftmost reference position.
    pub pos: u32,
    /// Mapping quality.
    pub mapq: u8,
    /// Flag bits.
    pub flags: Flags,
    /// Read bases (2-bit packed).
    pub seq: Seq,
    /// Per-base Phred qualities, same length as `seq`.
    pub quals: Vec<Phred>,
    /// Alignment shape.
    pub cigar: Cigar,
}

impl Record {
    /// Construct and validate: qualities must match the sequence length and
    /// the CIGAR must consume exactly the sequence.
    pub fn new(
        id: u64,
        pos: u32,
        mapq: u8,
        flags: Flags,
        seq: Seq,
        quals: Vec<Phred>,
        cigar: Cigar,
    ) -> Result<Record, crate::BalError> {
        if quals.len() != seq.len() {
            return Err(crate::BalError::BadRecord(format!(
                "read {id}: {} qualities for {} bases",
                quals.len(),
                seq.len()
            )));
        }
        if cigar.query_len() as usize != seq.len() {
            return Err(crate::BalError::BadRecord(format!(
                "read {id}: CIGAR consumes {} bases but sequence has {}",
                cigar.query_len(),
                seq.len()
            )));
        }
        Ok(Record {
            id,
            pos,
            mapq,
            flags,
            seq,
            quals,
            cigar,
        })
    }

    /// Convenience constructor for a fully-matching read (the simulator's
    /// output shape).
    pub fn full_match(
        id: u64,
        pos: u32,
        mapq: u8,
        flags: Flags,
        seq: Seq,
        quals: Vec<Phred>,
    ) -> Result<Record, crate::BalError> {
        let len = seq.len() as u32;
        Record::new(id, pos, mapq, flags, seq, quals, Cigar::full_match(len))
    }

    /// Number of read bases.
    pub fn read_len(&self) -> usize {
        self.seq.len()
    }

    /// Reference span of the alignment (end position is exclusive).
    pub fn ref_span(&self) -> u32 {
        self.cigar.ref_len()
    }

    /// Exclusive end position on the reference.
    pub fn end_pos(&self) -> u32 {
        self.pos + self.ref_span()
    }

    /// Whether the alignment covers reference position `pos` (it may still
    /// be a deletion there; the pileup walker decides).
    pub fn overlaps(&self, pos: u32) -> bool {
        pos >= self.pos && pos < self.end_pos()
    }

    /// Iterate `(ref_pos, base, phred)` for every aligned base.
    pub fn aligned_bases(
        &self,
    ) -> impl Iterator<Item = (u32, ultravc_genome::alphabet::Base, Phred)> + '_ {
        self.cigar
            .aligned_pairs(self.pos)
            .map(move |(rp, qi)| (rp, self.seq.get(qi as usize), self.quals[qi as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_genome::alphabet::Base;

    fn quals(n: usize, q: u8) -> Vec<Phred> {
        vec![Phred::new(q); n]
    }

    fn seq(s: &[u8]) -> Seq {
        Seq::from_ascii(s).unwrap()
    }

    #[test]
    fn flags_operations() {
        let f = Flags::REVERSE | Flags::DUPLICATE;
        assert!(f.is_reverse());
        assert!(f.contains(Flags::DUPLICATE));
        assert!(!f.contains(Flags::SECONDARY));
        assert!(f.is_filtered());
        assert!(!Flags::REVERSE.is_filtered());
        assert!(!Flags::none().is_filtered());
    }

    #[test]
    fn record_validation() {
        assert!(Record::full_match(1, 0, 60, Flags::none(), seq(b"ACGT"), quals(4, 30)).is_ok());
        // Quality length mismatch.
        assert!(Record::full_match(1, 0, 60, Flags::none(), seq(b"ACGT"), quals(3, 30)).is_err());
        // CIGAR mismatch.
        let c = Cigar::parse("3M").unwrap();
        assert!(Record::new(1, 0, 60, Flags::none(), seq(b"ACGT"), quals(4, 30), c).is_err());
    }

    #[test]
    fn span_and_overlap() {
        let r =
            Record::full_match(7, 100, 60, Flags::none(), seq(b"ACGTACGT"), quals(8, 35)).unwrap();
        assert_eq!(r.ref_span(), 8);
        assert_eq!(r.end_pos(), 108);
        assert!(r.overlaps(100));
        assert!(r.overlaps(107));
        assert!(!r.overlaps(108));
        assert!(!r.overlaps(99));
    }

    #[test]
    fn aligned_bases_full_match() {
        let r = Record::full_match(1, 10, 60, Flags::none(), seq(b"ACG"), quals(3, 20)).unwrap();
        let got: Vec<_> = r.aligned_bases().collect();
        assert_eq!(
            got,
            vec![
                (10, Base::A, Phred::new(20)),
                (11, Base::C, Phred::new(20)),
                (12, Base::G, Phred::new(20)),
            ]
        );
    }

    #[test]
    fn aligned_bases_with_deletion() {
        let c = Cigar::parse("2M2D1M").unwrap();
        let r = Record::new(1, 50, 60, Flags::none(), seq(b"ACG"), quals(3, 20), c).unwrap();
        let got: Vec<_> = r.aligned_bases().map(|(p, b, _)| (p, b)).collect();
        assert_eq!(got, vec![(50, Base::A), (51, Base::C), (54, Base::G)]);
        assert_eq!(r.ref_span(), 5);
    }
}
