//! Adversarial-input property tests: byte-level mutations of valid BAL
//! files — truncation, bit flips, oversized-varint splices, zeroed
//! windows — must never panic anywhere in the parse/decode stack. Every
//! path returns `Ok` or `BalError`; and the on-disk `open(path)` tiers
//! must agree with the in-memory parser about which mutants are
//! parseable (same bytes, same verdict, any backing).
//!
//! Files are generated in all three formats. For v3 the same mutation
//! kinds land inside compressed stream containers and per-stream length
//! varints, so this suite is also the fuzz coverage for the
//! `codec::decompress_stream_into` bounds checks.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ultravc_bamlite::{
    BalFile, BalWriter, Flags, FormatVersion, IoPlan, Record, RecordBatch, SharedBlockCache,
    SourceTier,
};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;

/// Strategy: a plausible aligned read at a bounded position.
fn record_strategy() -> impl Strategy<Value = (u32, Vec<u8>, u8, bool)> {
    (
        0u32..2_000,
        prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 1..40),
        0u8..=60,
        any::<bool>(),
    )
}

fn build_file(raw: Vec<(u32, Vec<u8>, u8, bool)>, block_cap: usize, fmt: u8) -> BalFile {
    let mut rows = raw;
    rows.sort_by_key(|(pos, ..)| *pos);
    let version = match fmt % 3 {
        0 => FormatVersion::V1,
        1 => FormatVersion::V2,
        // v3's compressed streams put the mutants somewhere new: a flip
        // lands inside an RLE/LZ container or a stream-length varint
        // instead of an interleaved record.
        _ => FormatVersion::V3,
    };
    let mut w = BalWriter::with_options(block_cap, version);
    for (id, (pos, bases, q, rev)) in rows.into_iter().enumerate() {
        let seq = Seq::from_ascii(&bases).expect("ACGT only");
        let quals = vec![Phred::new(q.min(93)); seq.len()];
        let flags = if rev { Flags::REVERSE } else { Flags::none() };
        let rec = Record::full_match(id as u64, pos, 60, flags, seq, quals).expect("valid");
        w.push(rec).unwrap();
    }
    w.finish()
}

/// One byte-level corruption, parameterized so the generator stays a
/// plain tuple (kind, position fraction, value, width).
fn mutate(bytes: &mut Vec<u8>, kind: u8, frac: f64, value: u8, width: usize) {
    if bytes.is_empty() {
        return;
    }
    let at = (((bytes.len() - 1) as f64) * frac) as usize;
    match kind % 4 {
        // Truncation (keep at least one byte so the parse sees *something*).
        0 => bytes.truncate(at.max(1)),
        // Single bit flip.
        1 => bytes[at] ^= 1 << (value % 8),
        // Splice a run of 0xff — maximal varint continuation bytes, the
        // shape that manufactures oversized lengths/counts/offsets.
        2 => {
            for b in bytes.iter_mut().skip(at).take(width.max(1)) {
                *b = 0xff;
            }
        }
        // Zeroed window (truncated-looking varints, null magics).
        _ => {
            for b in bytes.iter_mut().skip(at).take(width.max(1)) {
                *b = 0;
            }
        }
    }
}

/// Run the mutant through every decode path. Nothing here may panic;
/// results are allowed to be `Ok` (the mutation missed anything load-
/// bearing) or any `BalError`.
fn exercise(bytes: &[u8]) -> bool {
    let Ok(file) = BalFile::from_bytes(Bytes::from(bytes.to_vec())) else {
        return false;
    };
    let mut reader = file.reader();
    let mut batch = RecordBatch::new();
    for i in 0..file.n_blocks() {
        let _ = reader.decode_block(i);
        let _ = reader.decode_batch(i, &mut batch);
    }
    let _ = file.reader().clone().records_overlapping(0, u32::MAX);
    true
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_files_never_panic(
        raw in prop::collection::vec(record_strategy(), 1..50),
        block_cap in 1usize..24,
        fmt in 0u8..3,
        kind in 0u8..4,
        frac in 0.0f64..1.0,
        value in 0u8..=255,
        width in 1usize..12,
    ) {
        let file = build_file(raw, block_cap, fmt);
        let mut bytes = file.as_bytes().expect("writer output is in-memory").to_vec();
        mutate(&mut bytes, kind, frac, value, width);
        // In-memory: parse + all decode paths, no panic allowed.
        let mem_ok = exercise(&bytes);
        // On-disk: every tier must reach the same parse verdict on the
        // same bytes, and decode without panicking when it parses.
        let path = std::env::temp_dir().join(format!(
            "ultravc-corrupt-{}-{}.bal",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, &bytes).unwrap();
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            match BalFile::open_with(&path, tier) {
                Ok(disk) => {
                    prop_assert!(mem_ok, "{tier:?} parsed a mutant from_bytes rejected");
                    let mut reader = disk.reader();
                    let mut batch = RecordBatch::new();
                    // Per-block verdicts through the plain (non-prefetch)
                    // path — the oracle the prefetch path must agree with.
                    let mut plain_ok = Vec::with_capacity(disk.n_blocks());
                    for i in 0..disk.n_blocks() {
                        let _ = reader.decode_block(i);
                        plain_ok.push(reader.decode_batch(i, &mut batch).is_ok());
                    }
                    // Prefetch path: plan the whole extent, run the
                    // bounded read-ahead to completion, then consume like
                    // a worker. Nothing may panic (finish() re-raises
                    // read-ahead panics), and each block's ok/err verdict
                    // must match the plain path — a corrupt block stays
                    // corrupt whether the prefetcher or the consumer
                    // decodes it first.
                    let plan = IoPlan::for_regions(&disk, std::slice::from_ref(&(0..u32::MAX)));
                    let cache = Arc::new(SharedBlockCache::for_plan(disk.clone(), &plan));
                    let handle = plan.spawn_readahead(Arc::clone(&cache), 2);
                    for w in plan.windows() {
                        for &b in w.blocks() {
                            prop_assert_eq!(
                                cache.get(b).is_ok(),
                                plain_ok[b],
                                "{:?} block {}: prefetch verdict diverged",
                                tier,
                                b
                            );
                        }
                    }
                    let _ = handle.finish();
                }
                Err(_) => prop_assert!(!mem_ok, "{tier:?} rejected a mutant from_bytes parsed"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn valid_files_decode_identically_across_tiers(
        raw in prop::collection::vec(record_strategy(), 0..40),
        block_cap in 1usize..16,
        fmt in 0u8..3,
    ) {
        let file = build_file(raw, block_cap, fmt);
        let want = file.reader().clone().records().unwrap();
        let path = std::env::temp_dir().join(format!(
            "ultravc-tiers-{}-{}.bal",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        file.write_to(&path).unwrap();
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let disk = BalFile::open_with(&path, tier).unwrap();
            prop_assert_eq!(disk.version(), file.version());
            prop_assert_eq!(disk.index(), file.index());
            prop_assert_eq!(&disk.reader().clone().records().unwrap(), &want);
            let mut mem_batch = RecordBatch::new();
            let mut disk_batch = RecordBatch::new();
            let mut mem_reader = file.reader();
            let mut disk_reader = disk.reader();
            for i in 0..file.n_blocks() {
                mem_reader.decode_batch(i, &mut mem_batch).unwrap();
                disk_reader.decode_batch(i, &mut disk_batch).unwrap();
                prop_assert_eq!(&mem_batch, &disk_batch);
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
