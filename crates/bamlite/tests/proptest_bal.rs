//! Property tests of the BAL container: arbitrary record sets round-trip
//! bit-exactly, region queries agree with brute force, and corrupt bytes
//! never decode silently.

use proptest::prelude::*;
use ultravc_bamlite::{BalFile, BalWriter, Cigar, Flags, Record};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;

/// Strategy: a plausible aligned read at a bounded position.
fn record_strategy() -> impl Strategy<Value = (u32, Vec<u8>, u8, bool)> {
    (
        0u32..5_000,
        prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 1..60),
        0u8..=60,
        any::<bool>(),
    )
}

fn build_records(raw: Vec<(u32, Vec<u8>, u8, bool)>) -> Vec<Record> {
    let mut rows: Vec<_> = raw;
    rows.sort_by_key(|(pos, ..)| *pos);
    rows.into_iter()
        .enumerate()
        .map(|(id, (pos, bases, q, rev))| {
            let seq = Seq::from_ascii(&bases).expect("ACGT only");
            let quals = vec![Phred::new(q.min(93)); seq.len()];
            let flags = if rev { Flags::REVERSE } else { Flags::none() };
            Record::full_match(id as u64, pos, 60, flags, seq, quals).expect("valid record")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_identity(raw in prop::collection::vec(record_strategy(), 0..120),
                             block_cap in 1usize..64) {
        let records = build_records(raw);
        let mut w = BalWriter::with_block_capacity(block_cap);
        for r in records.clone() {
            w.push(r).unwrap();
        }
        let file = w.finish();
        // Through bytes and back.
        let reparsed = BalFile::from_bytes(file.as_bytes().expect("writer output is in-memory").clone()).unwrap();
        let decoded = reparsed.reader().clone().records().unwrap();
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn region_query_matches_brute_force(raw in prop::collection::vec(record_strategy(), 1..100),
                                        start in 0u32..5_000,
                                        span in 1u32..500) {
        let records = build_records(raw);
        let file = BalFile::from_records(records.clone()).unwrap();
        let end = start.saturating_add(span);
        let got = file.reader().clone().records_overlapping(start, end).unwrap();
        let want: Vec<Record> = records
            .into_iter()
            .filter(|r| r.pos < end && r.end_pos() > start)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn truncation_never_decodes_silently(raw in prop::collection::vec(record_strategy(), 1..40),
                                         cut_frac in 0.05f64..0.95) {
        let records = build_records(raw);
        let file = BalFile::from_records(records).unwrap();
        let bytes = file.as_bytes().expect("writer output is in-memory");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let truncated = bytes.slice(..cut.max(1));
        // Either parsing fails outright, or (if the index happened to stay
        // intact) block decoding fails — never silent garbage.
        if let Ok(f) = BalFile::from_bytes(truncated) {
            let mut any_err = false;
            let mut reader = f.reader();
            for i in 0..f.n_blocks() {
                if reader.decode_block(i).is_err() {
                    any_err = true;
                }
            }
            // A cut strictly inside the byte stream must damage something
            // unless it only removed trailing bytes past the index — which
            // from_bytes rejects via the trailer magic. So:
            prop_assert!(any_err || f.n_blocks() == 0);
        }
    }

    #[test]
    fn index_extents_are_tight(raw in prop::collection::vec(record_strategy(), 1..80)) {
        let records = build_records(raw);
        let file = BalFile::from_records(records).unwrap();
        let mut reader = file.reader();
        for (i, meta) in file.index().to_vec().into_iter().enumerate() {
            let block = reader.decode_block(i).unwrap();
            let min = block.iter().map(|r| r.pos).min().unwrap();
            let max = block.iter().map(Record::end_pos).max().unwrap();
            prop_assert_eq!(meta.min_pos, min);
            prop_assert_eq!(meta.max_end, max);
            prop_assert_eq!(meta.n_records as usize, block.len());
        }
    }
}

#[test]
fn cigar_query_walks_match_record_lengths() {
    // Deterministic spot-check that CIGAR shapes round-trip through BAL.
    let seq = Seq::from_ascii(b"ACGTACGT").unwrap();
    let quals = vec![Phred::new(30); 8];
    let cigar = Cigar::parse("2S3M1D3M").unwrap();
    let rec = Record::new(5, 100, 60, Flags::none(), seq, quals, cigar).unwrap();
    let file = BalFile::from_records(vec![rec.clone()]).unwrap();
    let back = file.reader().clone().records().unwrap();
    assert_eq!(back[0], rec);
    assert_eq!(back[0].ref_span(), 7);
}
