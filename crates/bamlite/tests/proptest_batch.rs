//! Property tests of the v2 ingest path: for arbitrary read sets, the
//! arena batch decode must agree **field for field** with the legacy
//! per-record decode — across block boundaries, mixed CIGAR shapes, and
//! degenerate quality spectra (a single bin; more distinct scores than
//! the dictionary cap, exercising the spill-to-identity path).

use proptest::prelude::*;
use ultravc_bamlite::{
    BalFile, BalWriter, Cigar, Flags, FormatVersion, QualityDict, Record, RecordBatch,
};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;

/// One raw read: position, per-base `(base, quality)` pairs, mapq, flag
/// bits, and an optional soft-clip/deletion CIGAR shape.
type RawRead = (u32, Vec<(u8, u8)>, u8, u8, bool);

/// Reads with qualities drawn from `quals`.
fn read_strategy(quals: Vec<u8>) -> impl Strategy<Value = RawRead> {
    (
        0u32..500,
        prop::collection::vec(
            (
                prop::sample::select(vec![b'A', b'C', b'G', b'T']),
                prop::sample::select(quals),
            ),
            1..40,
        ),
        0u8..=70,
        0u8..16,
        any::<bool>(),
    )
}

fn build(raw: Vec<RawRead>) -> Vec<Record> {
    let mut rows = raw;
    rows.sort_by_key(|(pos, ..)| *pos);
    rows.into_iter()
        .enumerate()
        .map(|(id, (pos, pairs, mapq, flags, shaped))| {
            let bases: Vec<u8> = pairs.iter().map(|&(b, _)| b).collect();
            let seq = Seq::from_ascii(&bases).unwrap();
            let quals: Vec<Phred> = pairs.iter().map(|&(_, q)| Phred::new(q)).collect();
            let cigar = if shaped && bases.len() >= 4 {
                // 1S (n-3)M 2D 2M: query = n, ref span = n-1.
                Cigar::parse(&format!("1S{}M2D2M", bases.len() - 3)).unwrap()
            } else {
                Cigar::full_match(bases.len() as u32)
            };
            Record::new(id as u64, pos, mapq, Flags(flags), seq, quals, cigar).unwrap()
        })
        .collect()
}

/// Decode the whole file through the batch path, materializing records
/// through the dictionary.
fn batch_decode_all(file: &BalFile) -> Vec<Record> {
    let mut reader = file.reader();
    let mut batch = RecordBatch::new();
    let mut out = Vec::new();
    for i in 0..file.n_blocks() {
        reader.decode_batch(i, &mut batch).unwrap();
        out.extend(batch.views().map(|v| v.to_record(file.quality_dict())));
    }
    out
}

/// Decode the whole file through the legacy per-record shim.
fn legacy_decode_all(file: &BalFile) -> Vec<Record> {
    file.reader().records().unwrap()
}

/// Encode through the dictionary-binned v2 writer explicitly — these
/// properties are about the learned dictionary, so they must not follow
/// a CI-level `ULTRAVC_BAL_FORMAT` pin to the identity-dict v1 writer.
fn encode_v2(records: &[Record]) -> BalFile {
    let mut w = BalWriter::with_options(
        ultravc_bamlite::file::DEFAULT_BLOCK_CAPACITY,
        FormatVersion::V2,
    );
    for rec in records.iter().cloned() {
        w.push(rec).unwrap();
    }
    w.finish()
}

/// Round-trip `records` through a v2 file at `block_capacity` and check
/// both decode paths reproduce them exactly.
fn check_roundtrip(records: Vec<Record>, block_capacity: usize) {
    let mut w = BalWriter::with_options(block_capacity, FormatVersion::V2);
    for rec in records.clone() {
        w.push(rec).unwrap();
    }
    let file = w.finish();
    assert_eq!(file.version(), 2);
    assert_eq!(legacy_decode_all(&file), records, "legacy shim round-trip");
    assert_eq!(batch_decode_all(&file), records, "batch round-trip");
    // And through serialized bytes (dictionary survives the trailer).
    let reparsed =
        BalFile::from_bytes(file.as_bytes().expect("writer output is in-memory").clone()).unwrap();
    assert_eq!(reparsed.quality_dict().quals(), file.quality_dict().quals());
    assert_eq!(batch_decode_all(&reparsed), records);
    // The same records through the v3 columnar encoder must decode
    // identically on both paths.
    let mut w3 = BalWriter::with_options(block_capacity, FormatVersion::V3);
    for rec in records.clone() {
        w3.push(rec).unwrap();
    }
    let file3 = w3.finish();
    assert_eq!(file3.version(), 3);
    assert_eq!(legacy_decode_all(&file3), records, "v3 legacy shim");
    assert_eq!(batch_decode_all(&file3), records, "v3 batch round-trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn v2_roundtrip_small_spectrum(
        raw in prop::collection::vec(read_strategy(vec![2, 15, 20, 30, 37, 41]), 0..80),
        block_capacity in 1usize..24,
    ) {
        // ≤6 distinct scores: a learned dictionary, blocks deliberately
        // tiny so most read sets span several boundary blocks.
        let records = build(raw);
        check_roundtrip(records, block_capacity);
    }

    #[test]
    fn v2_roundtrip_single_bin(
        raw in prop::collection::vec(read_strategy(vec![33]), 1..40),
        block_capacity in 1usize..10,
    ) {
        let records = build(raw);
        let file = encode_v2(&records);
        prop_assert_eq!(file.quality_dict().len(), 1, "degenerate 1-bin spectrum");
        check_roundtrip(records, block_capacity);
    }

    #[test]
    fn v2_roundtrip_spilled_spectrum(
        raw in prop::collection::vec(read_strategy((0..=93u8).collect()), 30..70),
        block_capacity in 4usize..32,
    ) {
        // Scores across the full 0..=93 range: with enough reads the
        // spectrum exceeds QUALITY_DICT_CAP and spills to identity.
        let records = build(raw);
        let file = encode_v2(&records);
        let distinct: std::collections::HashSet<u8> = records
            .iter()
            .flat_map(|r| r.quals.iter().map(|q| q.0))
            .collect();
        if distinct.len() > 40 {
            prop_assert!(file.quality_dict().spilled(), "wide spectrum must spill");
        }
        prop_assert_eq!(
            file.quality_dict().len() >= distinct.len(),
            true,
            "dictionary covers the spectrum"
        );
        check_roundtrip(records, block_capacity);
    }

    #[test]
    fn v1_and_v2_decode_identically(
        raw in prop::collection::vec(read_strategy(vec![10, 20, 30, 40]), 0..50),
    ) {
        let records = build(raw);
        let v1 = BalFile::from_records_legacy(records.clone()).unwrap();
        let v2 = encode_v2(&records);
        prop_assert_eq!(legacy_decode_all(&v1), records.clone());
        prop_assert_eq!(legacy_decode_all(&v2), records.clone());
        prop_assert_eq!(batch_decode_all(&v1), records.clone());
        prop_assert_eq!(batch_decode_all(&v2), records);
    }

    #[test]
    fn dictionary_is_sorted_and_minimal(
        raw in prop::collection::vec(read_strategy(vec![5, 17, 23, 30, 41, 60]), 1..60),
    ) {
        let records = build(raw);
        let file = encode_v2(&records);
        let dict: &QualityDict = file.quality_dict();
        // Strictly descending scores.
        prop_assert!(dict.quals().windows(2).all(|w| w[0] > w[1]));
        // Exactly the observed spectrum, nothing more.
        let observed: std::collections::BTreeSet<u8> = records
            .iter()
            .flat_map(|r| r.quals.iter().map(|q| q.0))
            .collect();
        let in_dict: std::collections::BTreeSet<u8> =
            dict.quals().iter().map(|q| q.0).collect();
        prop_assert_eq!(observed, in_dict);
        // bin_of/phred invert each other over the spectrum.
        for q in dict.quals() {
            prop_assert_eq!(dict.phred(dict.bin_of(*q)), *q);
        }
    }
}
