//! Cross-format acceptance matrix: the same logical records written as
//! v1, v2 and v3 must decode identically through **every** combination
//! of source tier ({mem, mmap, stream}) and decode path ({legacy
//! per-record, arena batch, shared-cache}). Additionally v2 and v3 —
//! which share the quality dictionary and chunking — must fill
//! bitwise-identical `RecordBatch` arenas, so swapping the on-disk
//! format can never perturb anything downstream of the decoder.

use std::sync::atomic::{AtomicU64, Ordering};
use ultravc_bamlite::{
    BalFile, BalWriter, Cigar, Flags, FormatVersion, Record, RecordBatch, SharedBlockCache,
    SourceTier,
};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;

static CASE: AtomicU64 = AtomicU64::new(0);

/// Reads with mixed lengths, flags, CIGAR shapes and a plateaued quality
/// spectrum — enough variety to touch every v3 stream non-trivially.
fn sample_records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let len = 4 + (i % 30);
            let bases: Vec<u8> = (0..len).map(|j| b"ACGT"[(i * 7 + j) % 4]).collect();
            let seq = Seq::from_ascii(&bases).unwrap();
            let quals: Vec<Phred> = (0..len)
                .map(|j| Phred::new([2, 20, 27, 33, 37, 41][(i + j) % 6]))
                .collect();
            let flags = if i % 2 == 0 {
                Flags::none()
            } else {
                Flags::REVERSE
            };
            let cigar = if i % 4 == 0 && len >= 6 {
                Cigar::parse(&format!("1S{}M2D3M", len - 4)).unwrap()
            } else {
                Cigar::full_match(len as u32)
            };
            Record::new(
                i as u64,
                (i * 3) as u32,
                40 + (i % 20) as u8,
                flags,
                seq,
                quals,
                cigar,
            )
            .unwrap()
        })
        .collect()
}

fn encode(records: &[Record], version: FormatVersion) -> BalFile {
    let mut w = BalWriter::with_options(19, version);
    for rec in records.iter().cloned() {
        w.push(rec).unwrap();
    }
    w.finish()
}

/// All per-block arenas of `file`, decoded through the plain batch path.
fn batches(file: &BalFile) -> Vec<RecordBatch> {
    let mut reader = file.reader();
    (0..file.n_blocks())
        .map(|i| {
            let mut b = RecordBatch::new();
            reader.decode_batch(i, &mut b).unwrap();
            b
        })
        .collect()
}

#[test]
fn all_formats_decode_identically_across_tiers_and_paths() {
    let records = sample_records(300);
    for version in [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3] {
        let mem = encode(&records, version);
        let mem_batches = batches(&mem);
        let path = std::env::temp_dir().join(format!(
            "ultravc-compat-{}-{}.bal",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        mem.write_to(&path).unwrap();
        for tier in [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream] {
            let disk = BalFile::open_with(&path, tier).unwrap();
            assert_eq!(disk.version(), mem.version(), "{version:?}/{tier:?}");
            assert_eq!(disk.index(), mem.index(), "{version:?}/{tier:?}");
            // Legacy per-record path.
            assert_eq!(
                disk.reader().clone().records().unwrap(),
                records,
                "{version:?}/{tier:?} legacy"
            );
            // Arena batch path: bitwise-identical to the in-memory decode.
            assert_eq!(batches(&disk), mem_batches, "{version:?}/{tier:?} batch");
            // Shared-cache path: same arenas again, through decode-once.
            let cache = SharedBlockCache::new(disk.clone());
            for (i, want) in mem_batches.iter().enumerate() {
                let (got, _stats) = cache.get(i).unwrap();
                assert_eq!(&*got, want, "{version:?}/{tier:?} cache block {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn v2_and_v3_arenas_are_bitwise_identical() {
    let records = sample_records(300);
    let v2 = encode(&records, FormatVersion::V2);
    let v3 = encode(&records, FormatVersion::V3);
    assert_eq!(v2.quality_dict().quals(), v3.quality_dict().quals());
    assert_eq!(v2.index().len(), v3.index().len());
    assert_eq!(batches(&v2), batches(&v3));
    // v1 uses the identity dictionary, so its bin indices legitimately
    // differ — but the materialized records still agree (covered above).
    let v1 = encode(&records, FormatVersion::V1);
    assert_eq!(v1.reader().clone().records().unwrap(), records);
}
