//! Span recording.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Work categories, matching the colour legend of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Exact probability computation (the pink band): the Poisson-binomial
    /// dynamic program.
    ProbCompute,
    /// The `O(d)` approximation screen (cheap, but worth seeing).
    ApproxFilter,
    /// Iterating alignment records into pileup columns (the teal band).
    BamIter,
    /// Block decoding (the light-blue band at the left of the paper's
    /// trace).
    Decompress,
    /// End-of-region barrier idleness (the dark-green band at the right).
    Barrier,
    /// VCF filtering and output.
    Filter,
    /// Anything else.
    Other,
}

impl Category {
    /// All categories, in legend order.
    pub const ALL: [Category; 7] = [
        Category::ProbCompute,
        Category::ApproxFilter,
        Category::BamIter,
        Category::Decompress,
        Category::Barrier,
        Category::Filter,
        Category::Other,
    ];

    /// One-character glyph for ASCII timelines.
    pub fn glyph(self) -> char {
        match self {
            Category::ProbCompute => 'P',
            Category::ApproxFilter => 'a',
            Category::BamIter => 'b',
            Category::Decompress => 'd',
            Category::Barrier => '=',
            Category::Filter => 'f',
            Category::Other => '.',
        }
    }

    /// Human name for summaries.
    pub fn name(self) -> &'static str {
        match self {
            Category::ProbCompute => "prob-compute",
            Category::ApproxFilter => "approx-filter",
            Category::BamIter => "bam-iter",
            Category::Decompress => "decompress",
            Category::Barrier => "barrier",
            Category::Filter => "filter",
            Category::Other => "other",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Worker thread id.
    pub thread: usize,
    /// Work category.
    pub category: Category,
    /// Offset from the recorder's epoch.
    pub start: Duration,
    /// Span duration.
    pub duration: Duration,
}

/// Shared recorder: one buffer per thread, an epoch for relative times.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    buffers: Vec<Mutex<Vec<SpanRecord>>>,
}

impl TraceRecorder {
    /// Recorder for a team of `n_threads`.
    pub fn new(n_threads: usize) -> TraceRecorder {
        assert!(n_threads > 0, "need at least one thread");
        TraceRecorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                buffers: (0..n_threads).map(|_| Mutex::new(Vec::new())).collect(),
            }),
        }
    }

    /// Number of thread buffers.
    pub fn n_threads(&self) -> usize {
        self.inner.buffers.len()
    }

    /// The recorder's epoch.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Record a span measured by the caller.
    pub fn record(&self, thread: usize, category: Category, start: Instant, end: Instant) {
        let rec = SpanRecord {
            thread,
            category,
            start: start.saturating_duration_since(self.inner.epoch),
            duration: end.saturating_duration_since(start),
        };
        self.inner.buffers[thread].lock().push(rec);
    }

    /// RAII guard: the span runs from construction to drop.
    pub fn span(&self, thread: usize, category: Category) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            thread,
            category,
            start: Instant::now(),
        }
    }

    /// Drain all spans, sorted by start time.
    pub fn finish(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for buf in &self.inner.buffers {
            all.extend(buf.lock().drain(..));
        }
        all.sort_by_key(|s| s.start);
        all
    }
}

/// RAII span guard produced by [`TraceRecorder::span`].
pub struct SpanGuard<'a> {
    recorder: &'a TraceRecorder,
    thread: usize,
    category: Category,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder
            .record(self.thread, self.category, self.start, Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_finish() {
        let rec = TraceRecorder::new(2);
        let e = rec.epoch();
        rec.record(
            0,
            Category::BamIter,
            e + Duration::from_millis(1),
            e + Duration::from_millis(3),
        );
        rec.record(1, Category::ProbCompute, e, e + Duration::from_millis(2));
        let spans = rec.finish();
        assert_eq!(spans.len(), 2);
        // Sorted by start: thread 1 first.
        assert_eq!(spans[0].thread, 1);
        assert_eq!(spans[0].duration, Duration::from_millis(2));
        assert_eq!(spans[1].category, Category::BamIter);
        assert_eq!(spans[1].start, Duration::from_millis(1));
    }

    #[test]
    fn guard_measures_elapsed() {
        let rec = TraceRecorder::new(1);
        {
            let _g = rec.span(0, Category::Filter);
            std::thread::sleep(Duration::from_millis(5));
        }
        let spans = rec.finish();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].duration >= Duration::from_millis(4));
        assert_eq!(spans[0].category, Category::Filter);
    }

    #[test]
    fn finish_drains() {
        let rec = TraceRecorder::new(1);
        drop(rec.span(0, Category::Other));
        assert_eq!(rec.finish().len(), 1);
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn concurrent_recording() {
        let rec = TraceRecorder::new(4);
        crossbeam_scope(|scope| {
            for t in 0..4 {
                let rec = rec.clone();
                scope.push(std::thread::spawn(move || {
                    for _ in 0..100 {
                        drop(rec.span(t, Category::ProbCompute));
                    }
                }));
            }
        });
        assert_eq!(rec.finish().len(), 400);
    }

    // Minimal join-all helper to avoid a dev-dependency on crossbeam here.
    fn crossbeam_scope(f: impl FnOnce(&mut Vec<std::thread::JoinHandle<()>>)) {
        let mut handles = Vec::new();
        f(&mut handles);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn glyphs_are_distinct() {
        let glyphs: std::collections::HashSet<char> =
            Category::ALL.iter().map(|c| c.glyph()).collect();
        assert_eq!(glyphs.len(), Category::ALL.len());
    }
}
