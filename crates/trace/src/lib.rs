//! # ultravc-trace
//!
//! A span-based per-thread execution tracer: the workspace's stand-in for
//! the HPC-Toolkit timeline the paper uses in Figure 2.
//!
//! Figure 2's content is (a) per-thread time attributed to categories —
//! probability computation (pink), BAM iteration (teal), file decompression
//! (light blue), thread barrier (dark green) — and (b) the visual of one
//! straggler thread serializing the end of the run. Both reconstruct
//! directly from `(thread, category, start, duration)` spans:
//! [`Timeline::render_ascii`] draws the per-thread timeline with one
//! character per time bucket, and [`Timeline::summary`] reports per-category
//! totals and the load-imbalance metrics.
//!
//! Recording is deliberately cheap and contention-free: each thread owns a
//! pre-allocated span buffer behind its own mutex (threads never touch each
//! other's), and a span costs two `Instant::now()` calls plus a push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recorder;
pub mod timeline;

pub use recorder::{Category, SpanGuard, SpanRecord, TraceRecorder};
pub use timeline::{CategorySummary, Timeline, TimelineSummary};
