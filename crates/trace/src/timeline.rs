//! Timeline assembly, imbalance metrics and ASCII rendering — the Figure 2
//! reconstruction.

use crate::recorder::{Category, SpanRecord};
use std::collections::HashMap;
use std::time::Duration;

/// Per-category aggregate across all threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CategorySummary {
    /// The category.
    pub category: Category,
    /// Total time across threads.
    pub total: Duration,
    /// Share of all recorded busy time, in `[0, 1]`.
    pub share: f64,
}

/// Whole-trace summary.
#[derive(Debug, Clone)]
pub struct TimelineSummary {
    /// Number of threads that recorded at least one span.
    pub n_threads: usize,
    /// Wall-clock extent of the trace (max span end).
    pub wall: Duration,
    /// Per-thread busy time (sum of span durations).
    pub busy: Vec<Duration>,
    /// Per-category totals, descending by share.
    pub categories: Vec<CategorySummary>,
}

impl TimelineSummary {
    /// `max(busy) / mean(busy)`; 1.0 = perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        if self.busy.is_empty() {
            return 1.0;
        }
        let total: f64 = self.busy.iter().map(|d| d.as_secs_f64()).sum();
        let mean = total / self.busy.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        let max = self
            .busy
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0f64, f64::max);
        max / mean
    }

    /// The busiest thread.
    pub fn straggler(&self) -> usize {
        self.busy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// A trace organized for analysis and rendering.
#[derive(Debug, Clone)]
pub struct Timeline {
    spans: Vec<SpanRecord>,
    n_threads: usize,
    wall: Duration,
}

impl Timeline {
    /// Build from drained spans (any order).
    pub fn from_spans(spans: Vec<SpanRecord>) -> Timeline {
        let n_threads = spans.iter().map(|s| s.thread + 1).max().unwrap_or(0);
        let wall = spans
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or_default();
        Timeline {
            spans,
            n_threads,
            wall,
        }
    }

    /// The raw spans.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of threads present.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Wall-clock extent.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Aggregate summary.
    pub fn summary(&self) -> TimelineSummary {
        let mut busy = vec![Duration::ZERO; self.n_threads];
        let mut per_cat: HashMap<Category, Duration> = HashMap::new();
        for s in &self.spans {
            busy[s.thread] += s.duration;
            *per_cat.entry(s.category).or_default() += s.duration;
        }
        let total: f64 = per_cat.values().map(|d| d.as_secs_f64()).sum();
        let mut categories: Vec<CategorySummary> = per_cat
            .into_iter()
            .map(|(category, dur)| CategorySummary {
                category,
                total: dur,
                share: if total == 0.0 {
                    0.0
                } else {
                    dur.as_secs_f64() / total
                },
            })
            .collect();
        categories.sort_by(|a, b| b.share.partial_cmp(&a.share).expect("shares are finite"));
        TimelineSummary {
            n_threads: self.n_threads,
            wall: self.wall,
            busy,
            categories,
        }
    }

    /// Render the per-thread timeline as ASCII art: one row per thread, one
    /// column per time bucket, each cell showing the dominant category's
    /// glyph (space = idle). This is the Figure 2 view.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(1);
        if self.spans.is_empty() || self.wall.is_zero() {
            return String::from("(empty trace)\n");
        }
        let wall = self.wall.as_secs_f64();
        let bucket = wall / width as f64;
        let mut out = String::new();
        for t in 0..self.n_threads {
            // Dominant category per bucket for this thread.
            let mut occupancy = vec![[0.0f64; Category::ALL.len()]; width];
            for s in self.spans.iter().filter(|s| s.thread == t) {
                let s0 = s.start.as_secs_f64();
                let s1 = s0 + s.duration.as_secs_f64();
                let cat_idx = Category::ALL
                    .iter()
                    .position(|c| *c == s.category)
                    .expect("category in ALL");
                let first = ((s0 / bucket) as usize).min(width - 1);
                let last = ((s1 / bucket) as usize).min(width - 1);
                for (b, occ) in occupancy.iter_mut().enumerate().take(last + 1).skip(first) {
                    let b0 = b as f64 * bucket;
                    let b1 = b0 + bucket;
                    let overlap = (s1.min(b1) - s0.max(b0)).max(0.0);
                    occ[cat_idx] += overlap;
                }
            }
            out.push_str(&format!("T{t:02} |"));
            for occ in &occupancy {
                let (best, weight) = occ
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights finite"))
                    .expect("non-empty");
                if *weight <= bucket * 1e-6 {
                    out.push(' ');
                } else {
                    out.push(Category::ALL[best].glyph());
                }
            }
            out.push_str("|\n");
        }
        out.push_str("legend: ");
        for c in Category::ALL {
            out.push_str(&format!("{}={} ", c.glyph(), c.name()));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(thread: usize, cat: Category, start_ms: u64, dur_ms: u64) -> SpanRecord {
        SpanRecord {
            thread,
            category: cat,
            start: Duration::from_millis(start_ms),
            duration: Duration::from_millis(dur_ms),
        }
    }

    #[test]
    fn summary_accounts_categories() {
        let tl = Timeline::from_spans(vec![
            span(0, Category::ProbCompute, 0, 30),
            span(0, Category::BamIter, 30, 10),
            span(1, Category::ProbCompute, 0, 20),
        ]);
        let s = tl.summary();
        assert_eq!(s.n_threads, 2);
        assert_eq!(s.wall, Duration::from_millis(40));
        assert_eq!(s.busy[0], Duration::from_millis(40));
        assert_eq!(s.busy[1], Duration::from_millis(20));
        assert_eq!(s.categories[0].category, Category::ProbCompute);
        assert!((s.categories[0].share - 50.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_and_straggler() {
        let tl = Timeline::from_spans(vec![
            span(0, Category::ProbCompute, 0, 10),
            span(1, Category::ProbCompute, 0, 10),
            span(2, Category::ProbCompute, 0, 40),
        ]);
        let s = tl.summary();
        assert_eq!(s.straggler(), 2);
        assert!((s.imbalance() - 2.0).abs() < 1e-9, "{}", s.imbalance());
    }

    #[test]
    fn ascii_render_shape() {
        let tl = Timeline::from_spans(vec![
            span(0, Category::Decompress, 0, 10),
            span(0, Category::BamIter, 10, 60),
            span(0, Category::ProbCompute, 70, 30),
            span(1, Category::BamIter, 0, 40),
            span(1, Category::Barrier, 40, 60),
        ]);
        let art = tl.render_ascii(20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3, "{art}");
        assert!(lines[0].starts_with("T00 |"));
        assert!(lines[1].starts_with("T01 |"));
        // Thread 0 starts with decompression and ends with prob-compute.
        let row0: Vec<char> = lines[0].chars().collect();
        assert_eq!(row0[5], 'd', "{art}");
        assert_eq!(row0[24], 'P', "{art}");
        // Thread 1's tail is barrier.
        let row1: Vec<char> = lines[1].chars().collect();
        assert_eq!(row1[24], '=', "{art}");
        assert!(lines[2].starts_with("legend:"));
    }

    #[test]
    fn idle_gaps_render_blank() {
        let tl = Timeline::from_spans(vec![
            span(0, Category::BamIter, 0, 10),
            span(0, Category::BamIter, 90, 10),
        ]);
        let art = tl.render_ascii(10);
        let row: Vec<char> = art.lines().next().unwrap().chars().collect();
        // Middle buckets are idle.
        assert_eq!(row[5 + 4], ' ', "{art}");
    }

    #[test]
    fn empty_trace() {
        let tl = Timeline::from_spans(Vec::new());
        assert_eq!(tl.n_threads(), 0);
        assert_eq!(tl.render_ascii(10), "(empty trace)\n");
        let s = tl.summary();
        assert_eq!(s.imbalance(), 1.0);
    }
}
