//! `ultravc` — command-line interface to the workspace.
//!
//! Subcommands:
//!
//! * `simulate` — generate a synthetic reference + ultra-deep read set.
//! * `call`     — call low-frequency SNVs from a BAL file (sequential,
//!   OpenMP-style parallel, or script-emulation mode).
//! * `filter`   — apply the dynamic filter to a VCF.
//! * `upset`    — SNV-sharing analysis across several VCFs (Figure 3).
//! * `trace`    — parallel call with a per-thread timeline (Figure 2).
//! * `serve`    — long-lived region-call server (session reuse, result
//!   cache, per-request deadlines).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fs;
use std::io::BufReader;
use std::process::ExitCode;

use std::time::Duration;

use ultravc_bamlite::{BalFile, BalWriter, FaultPlan, FormatVersion, SourceTier};
use ultravc_core::analysis::UpsetTable;
use ultravc_core::config::CallerConfig;
use ultravc_core::driver::{CallDriver, ParallelMode, PrefetchMode};
use ultravc_core::RunBudget;
use ultravc_genome::fasta::{read_fasta, write_fasta, FastaRecord};
use ultravc_genome::reference::{GenomeParams, ReferenceGenome};
use ultravc_parfor::Schedule;
use ultravc_readsim::dataset::DatasetSpec;
use ultravc_vcf::{parse_vcf, write_vcf, DynamicFilter, FilterParams};

const USAGE: &str = "\
ultravc — ultra-deep low-frequency variant calling (Kille et al. 2021 reproduction)

USAGE:
  ultravc simulate --out BASE [--genome-len N] [--depth D] [--seed S] [--variants N]
                   [--format v1|v2|v3]
  ultravc call     --input FILE.bal --ref FILE.fa [--out FILE.vcf] [--threads N]
                   [--mode seq|openmp|script] [--source mmap|stream|mem]
                   [--prefetch on|off|N] [--no-shortcut] [--no-filter]
                   [--legacy-decode] [--deadline-ms N] [--max-retries N]
                   [--region CHROM[:START-END]] [--min-af F]
  ultravc filter   --vcf FILE [--out FILE]
  ultravc upset    FILE.vcf FILE.vcf [FILE.vcf ...]
  ultravc trace    --input FILE.bal --ref FILE.fa [--threads N]
                   [--source mmap|stream|mem] [--prefetch on|off|N]
  ultravc serve    (--input FILE.bal --ref FILE.fa [--sample NAME]
                    | --config SAMPLES.toml)
                   [--addr HOST:PORT] [--workers N] [--threads-per-call N]
                   [--max-inflight N] [--cache N] [--timeout-ms N]
                   [--cost-budget N] [--cache-cost-budget N]
                   [--breaker-threshold N] [--breaker-cooldown-ms N]
                   [--source mmap|stream|mem] [--prefetch on|off|N]
                   [--no-filter]

`simulate` writes BASE.bal (alignments), BASE.fa (reference) and
BASE.truth.tsv (planted variants). `--format` pins the BAL version the
.bal file is written in (default v3, the columnar compressed format;
the ULTRAVC_BAL_FORMAT environment variable sets the default when the
flag is absent). All versions decode identically — v1/v2 exist for
compatibility fixtures and older readers.

`--input` opens the BAL file through an on-disk byte source — mmap by
default (block payloads page in on demand; an ultra-deep file is never
copied whole into memory), `stream` for positioned reads on unmappable
filesystems, `mem` to load everything up front. `--bal` is accepted as
an alias for `--input`.

`--prefetch` schedules the run's I/O ahead of the workers: madvise
hints on the mmap tier, a bounded read-ahead thread on the stream tier
(N = read-ahead depth in blocks). Precedence is deterministic for both
knobs: an explicit --source/--prefetch always wins; the
ULTRAVC_BAL_SOURCE / ULTRAVC_PREFETCH environment variables are only
consulted when the flag is absent (auto). Output reports the effective
tier and prefetch mode.

Runs are supervised: transient I/O errors are retried with capped
exponential backoff (--max-retries, default 4), and --deadline-ms
bounds the run's wall clock (it must be positive — a zero deadline
would expire before the run starts) — an expired deadline drains the
workers and reports the completed regions instead of hanging. In
openmp mode a failed or panicked chunk is contained as a partial
result (its region itemized on stderr) rather than aborting the whole
run.

`call --region CHROM:START-END` (1-based inclusive, samtools style)
calls only that column span; the output is exactly the corresponding
slice of a whole-genome run. `--min-af F` drops records below an
allele-frequency floor after filtering. `serve` holds the BAL file
and session open and answers the same calls over HTTP — see the
ultravc-serve crate docs for the request grammar. `serve --config`
serves many samples from one process ([[sample]] tables with
name/bal/fasta keys); overload knobs (--cost-budget, the breaker
flags) tune load shedding and per-sample quarantine — 0 means auto.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(rest),
        "call" => cmd_call(rest),
        "filter" => cmd_filter(rest),
        "upset" => cmd_upset(rest),
        "trace" => cmd_trace(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parse `--key value` pairs plus positional arguments.
fn parse_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            // Boolean flags take no value.
            if matches!(key, "no-shortcut" | "no-filter" | "legacy-decode") {
                flags.insert(key.to_string(), "true".to_string());
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.insert(key.to_string(), v.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let out = flags
        .get("out")
        .ok_or("simulate requires --out BASE")?
        .clone();
    let genome_len: usize = get_parsed(&flags, "genome-len", 2_000)?;
    let depth: f64 = get_parsed(&flags, "depth", 5_000.0)?;
    let seed: u64 = get_parsed(&flags, "seed", 42)?;
    let n_variants: usize = get_parsed(&flags, "variants", 12)?;

    let reference = ReferenceGenome::sars_cov_2_like(GenomeParams::with_length(genome_len), seed);
    let ds = DatasetSpec::new("cli", depth, seed)
        .with_variants(n_variants, 0.005, 0.05)
        .simulate(&reference);

    // An explicit `--format` wins over the ULTRAVC_BAL_FORMAT default the
    // simulator's writer used: re-encode the same records (same block
    // capacity, so the index layout is unchanged) into the named version.
    let alignments = match flags.get("format").map(String::as_str) {
        None => ds.alignments.clone(),
        Some(spec) => {
            let version = match spec {
                "1" | "v1" => FormatVersion::V1,
                "2" | "v2" => FormatVersion::V2,
                "3" | "v3" => FormatVersion::V3,
                other => return Err(format!("--format: expected v1|v2|v3, got {other:?}")),
            };
            let records = ds
                .alignments
                .reader()
                .records()
                .map_err(|e| e.to_string())?;
            let mut w =
                BalWriter::with_options(ultravc_bamlite::file::DEFAULT_BLOCK_CAPACITY, version);
            for rec in records {
                w.push(rec).map_err(|e| e.to_string())?;
            }
            w.finish()
        }
    };
    alignments
        .write_to(format!("{out}.bal"))
        .map_err(|e| e.to_string())?;
    let mut fa = Vec::new();
    write_fasta(
        &mut fa,
        &[FastaRecord {
            name: reference.name.clone(),
            seq: reference.seq.clone(),
        }],
        70,
    )
    .map_err(|e| e.to_string())?;
    fs::write(format!("{out}.fa"), fa).map_err(|e| e.to_string())?;
    let mut tsv = String::from("pos\tref\talt\tfrequency\n");
    for v in &ds.truth {
        tsv.push_str(&format!(
            "{}\t{}\t{}\t{:.6}\n",
            v.snv.pos + 1,
            v.snv.ref_base,
            v.snv.alt_base,
            v.frequency
        ));
    }
    fs::write(format!("{out}.truth.tsv"), tsv).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}.bal (v{}, {} reads), {out}.fa ({} bp), {out}.truth.tsv ({} variants)",
        alignments.version(),
        alignments.n_records(),
        reference.len(),
        ds.truth.len()
    );
    Ok(())
}

fn load_reference(path: &str) -> Result<ReferenceGenome, String> {
    let file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = read_fasta(BufReader::new(file)).map_err(|e| e.to_string())?;
    let first = records
        .into_iter()
        .next()
        .ok_or_else(|| format!("{path}: empty FASTA"))?;
    Ok(ReferenceGenome::from_seq(first.name, first.seq))
}

/// The BAL input path: `--input` (preferred) or its `--bal` alias.
fn input_path<'a>(flags: &'a HashMap<String, String>, cmd: &str) -> Result<&'a String, String> {
    flags
        .get("input")
        .or_else(|| flags.get("bal"))
        .ok_or_else(|| format!("{cmd} requires --input FILE.bal"))
}

/// The byte-source tier `--source` names (default: auto = mmap with
/// streaming fallback).
fn source_tier(flags: &HashMap<String, String>) -> Result<SourceTier, String> {
    match flags.get("source").map(String::as_str) {
        None | Some("auto") => Ok(SourceTier::Auto),
        Some("mem") => Ok(SourceTier::Mem),
        Some("mmap") => Ok(SourceTier::Mmap),
        Some("stream") => Ok(SourceTier::Stream),
        Some(other) => Err(format!("--source must be mmap|stream|mem, got {other}")),
    }
}

/// Open a BAL file through the tier `--source` names (default: auto =
/// mmap with streaming fallback). No tier copies the whole file into
/// memory except `mem`, which exists for small files and A/B timing.
fn load_bal(path: &str, flags: &HashMap<String, String>) -> Result<BalFile, String> {
    let bal = BalFile::open_with(path, source_tier(flags)?).map_err(|e| format!("{path}: {e}"))?;
    // Hidden fault-injection hook for robustness testing: `--fault SPEC`
    // wraps the opened tier in a deterministic fault source (same grammar
    // as ULTRAVC_FAULT; the explicit flag replaces any env-derived plan).
    match flags.get("fault") {
        None => Ok(bal),
        Some(spec) => {
            let plan = FaultPlan::parse(spec).map_err(|e| format!("--fault: {e}"))?;
            Ok(bal.with_faults(plan))
        }
    }
}

/// The prefetch mode `--prefetch` names (default: auto, which defers to
/// `ULTRAVC_PREFETCH` and otherwise stays off). An explicit flag always
/// wins over the environment — same precedence rule as `--source`.
fn prefetch_mode(flags: &HashMap<String, String>) -> Result<PrefetchMode, String> {
    match flags.get("prefetch").map(String::as_str) {
        None | Some("auto") => Ok(PrefetchMode::Auto),
        Some(v) => PrefetchMode::parse(v).map_err(|e| format!("--prefetch: {e}")),
    }
}

fn build_driver(flags: &HashMap<String, String>) -> Result<CallDriver, String> {
    let threads: usize = get_parsed(flags, "threads", 1)?;
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("seq") {
        "seq" => ParallelMode::Sequential,
        "openmp" => ParallelMode::OpenMp {
            n_threads: threads.max(1),
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk_columns: 256,
        },
        "script" => ParallelMode::ScriptEmulation {
            n_jobs: threads.max(1),
        },
        other => return Err(format!("--mode must be seq|openmp|script, got {other}")),
    };
    let mut config = if flags.contains_key("no-shortcut") {
        CallerConfig::original()
    } else {
        CallerConfig::improved()
    };
    config.pileup.max_depth = get_parsed(flags, "max-depth", 1_000_000usize)?;
    // The per-record decode shim (also selectable process-wide with
    // ULTRAVC_LEGACY_DECODE=1); default is the arena batch path.
    if flags.contains_key("legacy-decode") {
        config.pileup.ingest = ultravc_pileup::IngestMode::Legacy;
    }
    let filter = if flags.contains_key("no-filter") {
        None
    } else {
        Some(FilterParams::default())
    };
    Ok(CallDriver {
        config,
        filter,
        mode,
        trace: false,
        prefetch: prefetch_mode(flags)?,
        budget: Some(run_budget(flags)?),
    })
}

/// The run's supervision policy from `--deadline-ms` / `--max-retries`
/// (defaults: no deadline, [`RunBudget::unbounded`]'s retry parameters).
fn run_budget(flags: &HashMap<String, String>) -> Result<RunBudget, String> {
    let mut budget = RunBudget::unbounded();
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--deadline-ms: cannot parse {ms:?}"))?;
        budget.deadline = Some(Duration::from_millis(ms));
    }
    budget.max_retries = get_parsed(flags, "max-retries", budget.max_retries)?;
    budget
        .validate()
        .map_err(|msg| format!("--deadline-ms: {msg}"))?;
    Ok(budget)
}

/// Resolve `--region` to a column span over `reference` (the whole
/// genome when the flag is absent). Shares the server's grammar so
/// `ultravc call --region` and `GET /call?region=` address identically.
fn call_span(
    flags: &HashMap<String, String>,
    reference: &ReferenceGenome,
) -> Result<std::ops::Range<u32>, String> {
    let len = reference.len() as u32;
    let Some(raw) = flags.get("region") else {
        return Ok(0..len);
    };
    let region = ultravc_serve::parse_region(raw).map_err(|e| format!("--region: {e}"))?;
    if region.chrom != reference.name {
        return Err(format!(
            "--region: unknown chromosome {:?} (reference is {:?})",
            region.chrom, reference.name
        ));
    }
    let span = region.span.unwrap_or(0..len);
    if span.end > len {
        return Err(format!(
            "--region: [{}, {}) out of bounds for {:?} of length {len}",
            span.start, span.end, reference.name
        ));
    }
    Ok(span)
}

/// Parse `--min-af` (an allele-frequency floor in `[0, 1]`).
fn min_af(flags: &HashMap<String, String>) -> Result<Option<f64>, String> {
    let Some(raw) = flags.get("min-af") else {
        return Ok(None);
    };
    let f: f64 = raw
        .parse()
        .map_err(|_| format!("--min-af: cannot parse {raw:?}"))?;
    if !(0.0..=1.0).contains(&f) {
        return Err(format!("--min-af: {f} outside [0, 1]"));
    }
    Ok(Some(f))
}

fn cmd_call(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let bal = load_bal(input_path(&flags, "call")?, &flags)?;
    let reference = load_reference(flags.get("ref").ok_or("call requires --ref FILE.fa")?)?;
    let driver = build_driver(&flags)?;
    let span = call_span(&flags, &reference)?;
    let min_af = min_af(&flags)?;
    let mut outcome = driver
        .run_region(&reference, &bal, span)
        .map_err(|e| e.to_string())?;
    ultravc_serve::apply_min_af(&mut outcome.records, min_af);
    // Supervision report: anything short of a clean, complete run goes to
    // stderr so the VCF on stdout stays machine-readable.
    if let Some(why) = outcome.interrupt {
        eprintln!("run interrupted: {why} (completed regions reported)");
    }
    if !outcome.partial.is_empty() {
        eprintln!(
            "partial result: {} region(s) produced no calls",
            outcome.partial.len()
        );
        for region in &outcome.partial {
            eprintln!("  {region}");
        }
    }
    if outcome.io_retries > 0 {
        eprintln!(
            "transient I/O: {} read(s) retried successfully",
            outcome.io_retries
        );
    }
    if outcome.prefetch_degraded {
        eprintln!("prefetch degraded: fell back to demand reads");
    }
    let vcf = write_vcf(&reference.name, "ultravc-0.1", &outcome.records);
    match flags.get("out") {
        Some(path) => {
            fs::write(path, vcf).map_err(|e| e.to_string())?;
            println!(
                "{} records → {path} ({} columns, {:.1}% screened, mean depth {:.0}, \
                 {:.1} quality bins/tested column, {} blocks decoded in {:?}, \
                 source {}, prefetch {}, kernel {}, {:?})",
                outcome.records.len(),
                outcome.stats.columns,
                outcome.stats.skip_fraction() * 100.0,
                outcome.stats.mean_depth(),
                outcome.stats.mean_distinct_quals(),
                outcome.decode.blocks,
                outcome.decode.decode_time,
                outcome.source_tier,
                outcome.prefetch,
                outcome.kernel,
                outcome.wall
            );
        }
        None => print!("{vcf}"),
    }
    Ok(())
}

fn cmd_filter(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let path = flags.get("vcf").ok_or("filter requires --vcf FILE")?;
    let file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut records = parse_vcf(BufReader::new(file))?;
    let report = DynamicFilter::new(FilterParams::default()).apply(&mut records);
    let vcf = write_vcf("unknown", "ultravc-filter", &records);
    match flags.get("out") {
        Some(out) => fs::write(out, vcf).map_err(|e| e.to_string())?,
        None => print!("{vcf}"),
    }
    eprintln!(
        "filtered: {} in, {} pass (QUAL threshold {:.2}; {} low-cov, {} strand-bias, {} low-qual)",
        report.examined,
        report.passed,
        report.qual_threshold,
        report.failed_coverage,
        report.failed_strand_bias,
        report.failed_quality
    );
    Ok(())
}

fn cmd_upset(args: &[String]) -> Result<(), String> {
    let (_, paths) = parse_flags(args)?;
    if paths.len() < 2 {
        return Err("upset needs at least two VCF files".to_string());
    }
    let mut names = Vec::new();
    let mut sets = Vec::new();
    for path in &paths {
        let file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let records = parse_vcf(BufReader::new(file))?;
        names.push(path.clone());
        sets.push(records);
    }
    let table = UpsetTable::from_call_sets(names, &sets);
    print!("{}", table.render_text());
    println!(
        "shared by all {}: {}",
        table.n_sets(),
        table.shared_by_all()
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let bal = load_bal(input_path(&flags, "trace")?, &flags)?;
    let reference = load_reference(flags.get("ref").ok_or("trace requires --ref FILE.fa")?)?;
    let threads: usize = get_parsed(&flags, "threads", 4)?;
    let driver = CallDriver {
        config: CallerConfig::improved(),
        filter: None,
        mode: ParallelMode::OpenMp {
            n_threads: threads.max(2),
            schedule: Schedule::Dynamic { chunk: 1 },
            chunk_columns: 128,
        },
        trace: true,
        prefetch: prefetch_mode(&flags)?,
        budget: Some(run_budget(&flags)?),
    };
    let outcome = driver.run(&reference, &bal).map_err(|e| e.to_string())?;
    let timeline = outcome.timeline.expect("trace enabled");
    print!("{}", timeline.render_ascii(100));
    let team = outcome.team.expect("parallel mode");
    println!(
        "calls: {}   wall: {:?}   source: {}   prefetch: {}   kernel: {}   \
         imbalance: {:.2}   straggler: T{:02}   decode: {} blocks in {:?}",
        outcome.records.len(),
        outcome.wall,
        bal.source().tier_name(),
        outcome.prefetch,
        outcome.kernel,
        team.imbalance(),
        team.straggler(),
        outcome.decode.blocks,
        outcome.decode.decode_time
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7777".to_string());
    let mut config = ultravc_serve::ServeConfig::new(addr);
    // Two mutually exclusive sample sources: a multi-sample config
    // file, or the classic single-sample --input/--ref pair.
    let banner_detail = if let Some(path) = flags.get("config") {
        if flags.contains_key("input") || flags.contains_key("bal") || flags.contains_key("ref") {
            return Err("serve: --config and --input/--ref are mutually exclusive".to_string());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let base = std::path::Path::new(path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."))
            .to_path_buf();
        config.samples =
            ultravc_serve::parse_samples(&text, &base).map_err(|e| format!("{path}: {e}"))?;
        let names: Vec<&str> = config.samples.iter().map(|s| s.name.as_str()).collect();
        format!("{} sample(s): {}", names.len(), names.join(", "))
    } else {
        let input = input_path(&flags, "serve")?.clone();
        let fasta = flags
            .get("ref")
            .ok_or("serve requires --ref FILE.fa (or --config SAMPLES.toml)")?
            .clone();
        let sample = flags
            .get("sample")
            .cloned()
            .unwrap_or_else(|| "default".to_string());
        let fault = match flags.get("fault") {
            None => None,
            Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("--fault: {e}"))?),
        };
        config.samples.push(ultravc_serve::SampleSpec {
            name: sample.clone(),
            bal: input.clone().into(),
            fasta: fasta.into(),
            fault,
        });
        format!("{sample} ({input})")
    };
    config.workers = get_parsed(&flags, "workers", config.workers)?;
    config.threads_per_call = get_parsed(&flags, "threads-per-call", config.threads_per_call)?;
    config.max_inflight = get_parsed(&flags, "max-inflight", config.max_inflight)?;
    config.cache_capacity = get_parsed(&flags, "cache", config.cache_capacity)?;
    if let Some(ms) = flags.get("timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--timeout-ms: cannot parse {ms:?}"))?;
        if ms == 0 {
            return Err(
                "--timeout-ms must be positive: a zero deadline expires before the run starts"
                    .to_string(),
            );
        }
        config.default_timeout = Some(Duration::from_millis(ms));
    }
    config.source = source_tier(&flags)?;
    config.prefetch = prefetch_mode(&flags)?;
    config.filter = !flags.contains_key("no-filter");
    config.cost_budget = get_parsed(&flags, "cost-budget", config.cost_budget)?;
    config.cache_cost_budget = get_parsed(&flags, "cache-cost-budget", config.cache_cost_budget)?;
    config.breaker.threshold = get_parsed(&flags, "breaker-threshold", config.breaker.threshold)?;
    if let Some(ms) = flags.get("breaker-cooldown-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--breaker-cooldown-ms: cannot parse {ms:?}"))?;
        config.breaker.cooldown = Duration::from_millis(ms);
    }
    let server = ultravc_serve::Server::bind(config).map_err(|e| e.to_string())?;
    // Scripted clients (CI's serve-smoke) wait for this exact line.
    println!("serving {banner_detail} on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.join();
    println!(
        "served {} request(s): {} complete, {} partial, {} rejected, \
         {} shed, {} quarantined, {} breaker trip(s), {} recovery(ies), \
         {} client-error, {} not-found, {} server-error, \
         {} disconnect-cancelled, {} session rebuild(s); \
         cache {} hit(s) / {} miss(es) / {} invalidated",
        report.requests,
        report.ok,
        report.partial,
        report.rejected,
        report.shed,
        report.quarantined,
        report.breaker_trips,
        report.recoveries,
        report.client_errors,
        report.not_found,
        report.server_errors,
        report.disconnect_cancels,
        report.session_rebuilds,
        report.cache.hits,
        report.cache.misses,
        report.cache.invalidated,
    );
    Ok(())
}
