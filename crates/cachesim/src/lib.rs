//! # ultravc-cachesim
//!
//! A set-associative LRU cache simulator — the workspace's substitute for
//! the hardware performance counters behind the paper's cache claims.
//!
//! The paper's discussion reports that original LoFreq runs at a **>70 %**
//! cache miss rate on deep files while the improved version stays **below
//! 15 %**, and explains why: the exact Poisson-binomial DP sweeps an `O(d)`
//! array per column (megabytes at `d > 10⁵`, evicting everything), while
//! the approximation touches `O(1)` state; once most columns short-circuit,
//! only the rare fall-through column pays the big sweep. Those are
//! *working-set* statements, so a standard LRU set-associative model is the
//! right instrument: `core::cachemodel` replays each kernel's memory trace
//! through [`Cache`] and the miss rates fall out (experiment D-1).
//!
//! The model is single-level and physically untagged (addresses are
//! whatever the replayer says they are) — deliberately minimal, because the
//! claim under test depends only on working-set size versus capacity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 1 MiB, 16-way, 64 B-line cache: a per-core L2 slice of the Xeon
    /// Gold 6138 the paper benchmarks on.
    pub fn xeon_l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 1 << 20,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// A 32 KiB, 8-way L1d.
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn n_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(self.ways >= 1, "need at least one way");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.ways),
            "capacity must be a whole number of sets"
        );
        assert!(self.n_sets() >= 1, "geometry yields zero sets");
    }
}

/// Hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (compulsory + capacity + conflict; the model does not
    /// distinguish).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fold another accumulator in.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// Per set: tags ordered most- to least-recently used.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        config.validate();
        let n_sets = config.n_sets();
        assert!(n_sets.is_power_of_two(), "set count must be 2^k");
        Cache {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            sets: vec![Vec::with_capacity(config.ways); n_sets],
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Touch one byte address; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.stats.accesses += 1;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            if set.len() >= self.config.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, tag);
            false
        }
    }

    /// Touch a byte range (e.g. one `f64` = 8 bytes); lines are visited
    /// once each.
    pub fn access_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr >> self.line_shift;
        let last = (addr + len - 1) >> self.line_shift;
        for line in first..=last {
            self.access(line << self.line_shift);
        }
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clear contents and stats.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// Replay several address streams through one shared cache, interleaving
/// round-robin in fixed bursts — a first-order model of hardware threads
/// sharing a last-level cache, which is the regime where the paper observed
/// the original kernel thrashing ("we quickly begin to spill over our
/// shared cache when running in parallel").
pub fn simulate_shared<I>(cache: &mut Cache, mut streams: Vec<I>, burst: usize) -> CacheStats
where
    I: Iterator<Item = u64>,
{
    assert!(burst >= 1, "burst must be positive");
    let mut live: Vec<bool> = vec![true; streams.len()];
    while live.iter().any(|&l| l) {
        for (i, stream) in streams.iter_mut().enumerate() {
            if !live[i] {
                continue;
            }
            for _ in 0..burst {
                match stream.next() {
                    Some(addr) => {
                        cache.access(addr);
                    }
                    None => {
                        live[i] = false;
                        break;
                    }
                }
            }
        }
    }
    cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::xeon_l2();
        assert_eq!(c.n_sets(), 1024);
        assert_eq!(tiny().config().n_sets(), 4);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63), "same line");
        assert!(!c.access(64), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 lines = 256 B).
        let (a, b, d) = (0u64, 256, 512);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn working_set_behaviour() {
        // A loop over a working set that fits: ~0 misses after warmup.
        let mut c = Cache::new(CacheConfig::l1d());
        let fits = 16 << 10; // 16 KiB in a 32 KiB cache
        for _ in 0..4 {
            for addr in (0..fits).step_by(64) {
                c.access(addr as u64);
            }
        }
        let warm_rate = c.stats().miss_rate();
        assert!(
            warm_rate < 0.3,
            "fitting set should mostly hit: {warm_rate}"
        );

        // A loop over 4× capacity: LRU + sequential sweep = ~100 % misses.
        let mut big = Cache::new(CacheConfig::l1d());
        let spill = 128 << 10;
        for _ in 0..4 {
            for addr in (0..spill).step_by(64) {
                big.access(addr as u64);
            }
        }
        let thrash_rate = big.stats().miss_rate();
        assert!(thrash_rate > 0.95, "sweeping 4× capacity: {thrash_rate}");
    }

    #[test]
    fn access_range_touches_each_line_once() {
        let mut c = tiny();
        c.access_range(0, 200); // lines 0..3 → 4 accesses
        assert_eq!(c.stats().accesses, 4);
        c.access_range(60, 8); // straddles lines 0 and 1
        assert_eq!(c.stats().accesses, 6);
        c.access_range(0, 0);
        assert_eq!(c.stats().accesses, 6);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "contents were cleared too");
    }

    #[test]
    fn shared_interleaving_thrashes_where_private_fits() {
        // Each stream's working set fits alone, but four of them interleaved
        // exceed capacity — the paper's parallel-spill scenario in miniature.
        let cfg = CacheConfig {
            size_bytes: 8 << 10,
            line_bytes: 64,
            ways: 4,
        };
        let per_stream = 4 << 10; // half of capacity
        let one = |base: u64| {
            (0..3u64).flat_map(move |_| (0..per_stream as u64).step_by(64).map(move |a| base + a))
        };

        let mut alone = Cache::new(cfg);
        let alone_stats = simulate_shared(&mut alone, vec![one(0)], 8);
        let mut shared = Cache::new(cfg);
        let shared_stats = simulate_shared(
            &mut shared,
            vec![one(0), one(1 << 20), one(2 << 20), one(3 << 20)],
            8,
        );
        assert!(
            shared_stats.miss_rate() > 2.0 * alone_stats.miss_rate(),
            "shared {:.3} vs alone {:.3}",
            shared_stats.miss_rate(),
            alone_stats.miss_rate()
        );
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats {
            accesses: 10,
            misses: 3,
        };
        a.merge(&CacheStats {
            accesses: 5,
            misses: 5,
        });
        assert_eq!(a.accesses, 15);
        assert_eq!(a.misses, 8);
        assert!((a.miss_rate() - 8.0 / 15.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 1000,
            line_bytes: 64,
            ways: 3,
        });
    }
}
