//! The streaming pileup iterator.
//!
//! Records arrive position-sorted from a [`BalReader`] (blocks decoded
//! lazily); a ring of in-flight columns receives bases from every read that
//! overlaps them; a column is emitted as soon as no unread record can still
//! touch it (i.e. the next record starts past it). Peak memory is
//! `O(read_len × depth_cap)` packed entries, independent of file size.
//!
//! # Ingest paths
//!
//! Three sources can feed the ring, all producing **bitwise-identical**
//! columns (same entries, same push order, same depth-cap decisions):
//!
//! * **Batch** (default) — blocks decode into a reusable [`RecordBatch`]
//!   arena via [`BalReader::decode_batch`]; bases are stacked straight
//!   from bin indices ([`PileupColumn::push_slot_capped`]), the
//!   `min_baseq` filter is one bin-index comparison, and a batch freelist
//!   mirrors the column freelist so steady state performs zero
//!   allocations.
//! * **Legacy** — the per-record [`Record`] shim
//!   ([`BalReader::decode_block`]); selectable per call or globally with
//!   `ULTRAVC_LEGACY_DECODE=1`, which is what CI's ingest-parity leg
//!   pins.
//! * **Shared** ([`pileup_region_cached`]) — batches come from a
//!   run-scoped [`SharedBlockCache`], so parallel workers whose chunks
//!   straddle a block boundary decode that block exactly once per run.
//!   [`pileup_region_windowed`] is the planned variant: the iterator
//!   walks a precomputed region-scoped [`BlockWindow`] from the run's
//!   [`ultravc_bamlite::IoPlan`] instead of re-deriving the overlap —
//!   the same windows the driver's prefetch layer schedules I/O around.

use crate::column::PileupColumn;
#[cfg(test)]
use crate::column::PileupEntry;
use std::collections::VecDeque;
use std::sync::Arc;
use ultravc_bamlite::{
    BalError, BalFile, BalReader, BlockWindow, DecodeStats, QualityDict, Record, RecordBatch,
    RecordView, SharedBlockCache,
};

/// Which decode path feeds the pileup ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// Batch unless `ULTRAVC_LEGACY_DECODE=1` is set in the environment.
    #[default]
    Auto,
    /// Arena batch decode (the zero-alloc path).
    Batch,
    /// Per-record `Record` decode (the compatibility shim).
    Legacy,
}

impl IngestMode {
    /// Resolve `Auto` against the `ULTRAVC_LEGACY_DECODE` environment
    /// override. Explicit modes always win (parity tests pin both paths
    /// even under CI's legacy leg).
    pub fn resolved(self) -> ResolvedIngest {
        match self {
            IngestMode::Batch => ResolvedIngest::Batch,
            IngestMode::Legacy => ResolvedIngest::Legacy,
            IngestMode::Auto => {
                if std::env::var("ULTRAVC_LEGACY_DECODE").is_ok_and(|v| v == "1") {
                    ResolvedIngest::Legacy
                } else {
                    ResolvedIngest::Batch
                }
            }
        }
    }
}

/// An [`IngestMode`] with `Auto` resolved away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedIngest {
    /// Arena batch decode.
    Batch,
    /// Per-record decode.
    Legacy,
}

/// Pileup configuration, mirroring LoFreq's relevant defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PileupParams {
    /// Depth cap per column (LoFreq default: 1 000 000; the paper's Table I
    /// footnote depends on it).
    pub max_depth: usize,
    /// Minimum mapping quality; reads below are skipped entirely.
    pub min_mapq: u8,
    /// Minimum base quality; bases below are not stacked.
    pub min_baseq: u8,
    /// Skip reads flagged secondary/duplicate/QC-fail.
    pub skip_flagged: bool,
    /// Decode path selection.
    pub ingest: IngestMode,
}

impl Default for PileupParams {
    fn default() -> Self {
        PileupParams {
            max_depth: 1_000_000,
            min_mapq: 13,
            min_baseq: 3,
            skip_flagged: true,
            ingest: IngestMode::Auto,
        }
    }
}

/// Stream pileup columns for `[start, end)` of the given file.
///
/// Every worker thread calls this with its own region; the readers share the
/// file bytes but decode independently. (For decode-once sharing across
/// workers, see [`pileup_region_cached`].)
pub fn pileup_region(file: &BalFile, start: u32, end: u32, params: PileupParams) -> PileupIter {
    let source = match params.ingest.resolved() {
        ResolvedIngest::Legacy => Source::Legacy {
            buffered: VecDeque::new(),
        },
        ResolvedIngest::Batch => Source::Batch {
            cur: None,
            cursor: 0,
            spare: Vec::new(),
        },
    };
    PileupIter::new(file, start, end, params, source)
}

/// Stream pileup columns for `[start, end)` of the cache's file, pulling
/// decoded blocks from the shared cache: each block of the run is decoded
/// by exactly one of the iterators sharing the cache, no matter how many
/// of their regions overlap it. Always batch-ingest (the cache stores
/// arenas).
pub fn pileup_region_cached(
    cache: &Arc<SharedBlockCache>,
    start: u32,
    end: u32,
    params: PileupParams,
) -> PileupIter {
    let source = Source::Shared {
        cache: Arc::clone(cache),
        cur: None,
        cursor: 0,
    };
    PileupIter::new(cache.file(), start, end, params, source)
}

/// [`pileup_region_cached`] over a **precomputed block window** from a
/// run-level [`ultravc_bamlite::IoPlan`]: the iterator touches exactly
/// the window's blocks (its region's own blocks plus shared boundary
/// blocks) instead of re-deriving the overlap from the index — the
/// region-scoped payload window the prefetch planner schedules I/O
/// around. The window must have been planned for this cache's file;
/// a window from another file's plan names unrelated blocks.
pub fn pileup_region_windowed(
    cache: &Arc<SharedBlockCache>,
    window: &BlockWindow,
    params: PileupParams,
) -> PileupIter {
    let region = window.region();
    debug_assert_eq!(
        window.blocks(),
        cache.file().blocks_overlapping(region.start, region.end),
        "window was planned against a different file"
    );
    let source = Source::Shared {
        cache: Arc::clone(cache),
        cur: None,
        cursor: 0,
    };
    PileupIter::with_blocks(
        cache.file(),
        window.blocks_shared(),
        region.start,
        region.end,
        params,
        source,
    )
}

/// Upper bound on retained spare columns. Larger than any realistic read
/// length (= ring width), so steady state never allocates; small enough
/// that a pathological consumer cannot balloon memory by recycling
/// thousands of columns.
const FREELIST_CAP: usize = 256;

/// Upper bound on retained spare record batches. One batch is in flight at
/// a time, so the freelist cycles a single arena in steady state; the cap
/// only guards against misuse.
const BATCH_FREELIST_CAP: usize = 4;

/// Where decoded records come from.
enum Source {
    /// Owned-`Record` decode (compatibility shim).
    Legacy { buffered: VecDeque<Record> },
    /// Arena batches decoded by this iterator, recycled through a
    /// freelist.
    Batch {
        cur: Option<RecordBatch>,
        cursor: usize,
        spare: Vec<RecordBatch>,
    },
    /// Arena batches decoded at most once per run by whichever sharing
    /// iterator gets there first.
    Shared {
        cache: Arc<SharedBlockCache>,
        cur: Option<Arc<RecordBatch>>,
        cursor: usize,
    },
}

/// Iterator over non-empty pileup columns of a region, in position order.
pub struct PileupIter {
    reader: BalReader,
    blocks: Arc<[usize]>,
    next_block: usize,
    source: Source,
    /// The file's quality dictionary (identity for v1 files).
    dict: Arc<QualityDict>,
    /// Bins `>= bin_cutoff` fail the `min_baseq` filter (the dictionary
    /// is sorted descending, so too-low qualities are a suffix).
    bin_cutoff: u8,
    /// In-flight columns, front = lowest position. Invariant: contiguous
    /// positions `ring[0].pos .. ring[0].pos + ring.len()`.
    ring: VecDeque<PileupColumn>,
    /// Retired column buffers awaiting reuse: uncovered positions the
    /// iterator skipped plus whatever the consumer hands back via
    /// [`PileupIter::recycle`]. In steady state the ring allocates no new
    /// histogram per position.
    free: Vec<PileupColumn>,
    start: u32,
    end: u32,
    params: PileupParams,
    done: bool,
    error: Option<BalError>,
    /// Decode work performed *by this iterator* through a shared cache
    /// (cache hits are someone else's work and are counted separately).
    shared_stats: DecodeStats,
    /// Blocks this iterator consumed from the shared cache without paying
    /// for their decode.
    cache_hits: u64,
}

impl PileupIter {
    fn new(file: &BalFile, start: u32, end: u32, params: PileupParams, source: Source) -> Self {
        let blocks = file.blocks_overlapping(start, end);
        PileupIter::with_blocks(file, blocks.into(), start, end, params, source)
    }

    /// Constructor taking the region's block list as given (the windowed
    /// path, where a run-level plan already computed every overlap).
    fn with_blocks(
        file: &BalFile,
        blocks: Arc<[usize]>,
        start: u32,
        end: u32,
        params: PileupParams,
        source: Source,
    ) -> Self {
        let dict = Arc::clone(file.quality_dict());
        let bin_cutoff = dict.bins_at_least(params.min_baseq);
        PileupIter {
            reader: file.reader(),
            blocks,
            next_block: 0,
            source,
            dict,
            bin_cutoff,
            ring: VecDeque::new(),
            free: Vec::new(),
            start,
            end,
            params,
            done: false,
            error: None,
            shared_stats: DecodeStats::default(),
            cache_hits: 0,
        }
    }

    /// The first decode error, if the iterator stopped on one.
    pub fn error(&self) -> Option<&BalError> {
        self.error.as_ref()
    }

    /// Take ownership of the stored decode error, leaving `None`. The
    /// supervised driver uses this to propagate the *typed* error (an
    /// interruption must stay an interruption, a transient-exhausted `Io`
    /// must stay `Io`) instead of flattening everything to `Corrupt`.
    pub fn take_error(&mut self) -> Option<BalError> {
        self.error.take()
    }

    /// Return an emitted column's buffer for reuse. Consumers that call
    /// this after processing each column make the iterator allocation-free
    /// in steady state; not calling it is also fine (the column is simply
    /// dropped and the ring allocates replacements).
    pub fn recycle(&mut self, column: PileupColumn) {
        if self.free.len() < FREELIST_CAP {
            self.free.push(column);
        }
    }

    /// Decode accounting: blocks this iterator decoded itself (through its
    /// reader or as the first requester of a shared-cache slot). Cache
    /// hits contribute nothing here, which is what lets per-worker stats
    /// sum to the true whole-run decode work.
    pub fn decode_stats(&self) -> DecodeStats {
        let mut stats = self.reader.stats();
        stats.merge(&self.shared_stats);
        stats
    }

    /// Blocks consumed from a shared cache that some other iterator had
    /// already decoded.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Position of the next undelivered record, pulling in blocks as
    /// needed. `None` when the region's records are exhausted (or a decode
    /// error stopped the iterator — see [`PileupIter::error`]).
    fn ensure_record(&mut self) -> Option<u32> {
        loop {
            match &self.source {
                Source::Legacy { buffered } => {
                    if let Some(rec) = buffered.front() {
                        return Some(rec.pos);
                    }
                }
                Source::Batch { cur, cursor, .. } => {
                    if let Some(batch) = cur {
                        if *cursor < batch.len() {
                            return Some(batch.pos(*cursor));
                        }
                    }
                }
                Source::Shared { cur, cursor, .. } => {
                    if let Some(batch) = cur {
                        if *cursor < batch.len() {
                            return Some(batch.pos(*cursor));
                        }
                    }
                }
            }
            if self.next_block >= self.blocks.len() {
                return None;
            }
            let block_id = self.blocks[self.next_block];
            self.next_block += 1;
            if let Err(e) = self.refill(block_id) {
                self.error = Some(e);
                self.done = true;
                return None;
            }
        }
    }

    /// Pull block `block_id` into the source.
    fn refill(&mut self, block_id: usize) -> Result<(), BalError> {
        let Self {
            reader,
            source,
            shared_stats,
            cache_hits,
            ..
        } = self;
        match source {
            Source::Legacy { buffered } => {
                buffered.extend(reader.decode_block(block_id)?);
            }
            Source::Batch { cur, cursor, spare } => {
                // Retire the exhausted batch to the freelist, then decode
                // into a spare arena (or a fresh one on cold start).
                if let Some(prev) = cur.take() {
                    if spare.len() < BATCH_FREELIST_CAP {
                        spare.push(prev);
                    }
                }
                let mut batch = spare.pop().unwrap_or_default();
                reader.decode_batch(block_id, &mut batch)?;
                *cur = Some(batch);
                *cursor = 0;
            }
            Source::Shared { cache, cur, cursor } => {
                let (batch, performed) = cache.get(block_id)?;
                match performed {
                    Some(stats) => shared_stats.merge(&stats),
                    None => *cache_hits += 1,
                }
                *cur = Some(batch);
                *cursor = 0;
            }
        }
        Ok(())
    }

    /// Fold the current record's aligned bases into the ring and advance
    /// past it. Must follow a successful [`PileupIter::ensure_record`].
    fn absorb_current(&mut self) {
        let Self {
            source,
            ring,
            free,
            params,
            start,
            end,
            dict,
            bin_cutoff,
            ..
        } = self;
        match source {
            Source::Legacy { buffered } => {
                let rec = buffered.pop_front().expect("ensured record");
                absorb_record(ring, free, params, *start, *end, &rec);
            }
            Source::Batch { cur, cursor, .. } => {
                let view = cur.as_ref().expect("ensured batch").view(*cursor);
                *cursor += 1;
                absorb_view(ring, free, params, *start, *end, view, dict, *bin_cutoff);
            }
            Source::Shared { cur, cursor, .. } => {
                let view = cur.as_ref().expect("ensured batch").view(*cursor);
                *cursor += 1;
                absorb_view(ring, free, params, *start, *end, view, dict, *bin_cutoff);
            }
        }
    }
}

/// A blank column at `pos`, reusing a retired buffer when available.
fn fresh_column(free: &mut Vec<PileupColumn>, pos: u32) -> PileupColumn {
    match free.pop() {
        Some(mut col) => {
            col.reset(pos);
            col
        }
        None => PileupColumn::new(pos),
    }
}

/// Grow the ring (preserving contiguity) to contain `pos`.
fn ensure_column(ring: &mut VecDeque<PileupColumn>, free: &mut Vec<PileupColumn>, pos: u32) {
    match ring.front() {
        None => {
            let col = fresh_column(free, pos);
            ring.push_back(col);
        }
        Some(front) => {
            let front_pos = front.pos;
            debug_assert!(
                pos >= front_pos,
                "records must not reach behind the emission front"
            );
            let mut next = front_pos + ring.len() as u32;
            while next <= pos {
                let col = fresh_column(free, next);
                ring.push_back(col);
                next += 1;
            }
        }
    }
}

/// Legacy-path absorb: fold an owned record's aligned bases into the ring.
fn absorb_record(
    ring: &mut VecDeque<PileupColumn>,
    free: &mut Vec<PileupColumn>,
    params: &PileupParams,
    start: u32,
    end: u32,
    rec: &Record,
) {
    if params.skip_flagged && rec.flags.is_filtered() {
        return;
    }
    if rec.mapq < params.min_mapq {
        return;
    }
    let reverse = rec.flags.is_reverse();
    for (ref_pos, base, qual) in rec.aligned_bases() {
        if ref_pos < start || ref_pos >= end {
            continue;
        }
        if qual.0 < params.min_baseq {
            continue;
        }
        ensure_column(ring, free, ref_pos);
        let front_pos = ring.front().expect("ensured non-empty").pos;
        let idx = (ref_pos - front_pos) as usize;
        ring[idx].push_slot_capped(
            base.code(),
            reverse,
            qual.0.min(ultravc_genome::phred::MAX_PHRED),
            params.max_depth,
        );
    }
}

/// Batch-path absorb: stack bin indices straight from the arena view. The
/// quality filter is a single comparison against the dictionary cutoff and
/// the push resolves each bin to its histogram slot through the (L1-sized)
/// dictionary — no per-base Phred construction, no clamping.
#[allow(clippy::too_many_arguments)]
fn absorb_view(
    ring: &mut VecDeque<PileupColumn>,
    free: &mut Vec<PileupColumn>,
    params: &PileupParams,
    start: u32,
    end: u32,
    view: RecordView<'_>,
    dict: &QualityDict,
    bin_cutoff: u8,
) {
    if params.skip_flagged && view.flags().is_filtered() {
        return;
    }
    if view.mapq() < params.min_mapq {
        return;
    }
    let reverse = view.flags().is_reverse();
    let slots = dict.quals();
    for (ref_pos, base_code, bin) in view.aligned() {
        if ref_pos < start || ref_pos >= end {
            continue;
        }
        if bin >= bin_cutoff {
            continue;
        }
        ensure_column(ring, free, ref_pos);
        let front_pos = ring.front().expect("ensured non-empty").pos;
        let idx = (ref_pos - front_pos) as usize;
        ring[idx].push_slot_capped(base_code, reverse, slots[bin as usize].0, params.max_depth);
    }
}

impl Iterator for PileupIter {
    type Item = PileupColumn;

    fn next(&mut self) -> Option<PileupColumn> {
        loop {
            if self.done && self.ring.is_empty() {
                return None;
            }
            // Absorb every record that can still touch the front column.
            while !self.done {
                let front_pos = self.ring.front().map(|c| c.pos);
                match self.ensure_record() {
                    None => {
                        self.done = true;
                        break;
                    }
                    Some(p) => {
                        // If the ring is empty, absorb unconditionally to
                        // seed it; otherwise only records at or before the
                        // front column still affect it.
                        if front_pos.is_none() || p <= front_pos.expect("checked") {
                            self.absorb_current();
                        } else {
                            break;
                        }
                    }
                }
            }
            match self.ring.pop_front() {
                None => {
                    if self.done {
                        return None;
                    }
                }
                Some(col) => {
                    if !col.is_empty() {
                        return Some(col);
                    }
                    // Skip uncovered positions silently (mpileup
                    // behaviour), returning the buffer to the freelist.
                    self.recycle(col);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_bamlite::{Cigar, Flags, Record};
    use ultravc_genome::alphabet::Base;
    use ultravc_genome::phred::Phred;
    use ultravc_genome::sequence::Seq;

    fn mk(id: u64, pos: u32, bases: &[u8], q: u8, flags: Flags) -> Record {
        let seq = Seq::from_ascii(bases).unwrap();
        let quals = vec![Phred::new(q); seq.len()];
        Record::full_match(id, pos, 60, flags, seq, quals).unwrap()
    }

    fn file(records: Vec<Record>) -> BalFile {
        BalFile::from_records(records).unwrap()
    }

    #[test]
    fn single_read_single_column_stack() {
        let f = file(vec![mk(0, 10, b"ACGT", 30, Flags::none())]);
        let cols: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].pos, 10);
        assert_eq!(cols[3].pos, 13);
        assert_eq!(cols[0].depth(), 1);
        assert_eq!(cols[0].iter().next().unwrap().base, Base::A);
        assert_eq!(cols[3].iter().next().unwrap().base, Base::T);
    }

    #[test]
    fn overlapping_reads_stack() {
        let f = file(vec![
            mk(0, 0, b"AAAA", 30, Flags::none()),
            mk(1, 2, b"AAAA", 25, Flags::REVERSE),
            mk(2, 4, b"AAAA", 20, Flags::none()),
        ]);
        let cols: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        // Coverage: 0,1 depth1; 2,3 depth2; 4,5 depth2; 6,7 depth1.
        let depths: Vec<(u32, usize)> = cols.iter().map(|c| (c.pos, c.depth())).collect();
        assert_eq!(
            depths,
            vec![
                (0, 1),
                (1, 1),
                (2, 2),
                (3, 2),
                (4, 2),
                (5, 2),
                (6, 1),
                (7, 1)
            ]
        );
        // Strand accounting at column 2: one forward A, one reverse A.
        assert_eq!(cols[2].strand_counts(Base::A), (1, 1));
    }

    #[test]
    fn gap_between_reads_emits_no_empty_columns() {
        let f = file(vec![
            mk(0, 0, b"AC", 30, Flags::none()),
            mk(1, 10, b"GT", 30, Flags::none()),
        ]);
        let cols: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![0, 1, 10, 11]);
    }

    #[test]
    fn region_bounds_clip_columns() {
        let f = file(vec![mk(0, 5, b"ACGTACGT", 30, Flags::none())]);
        let cols: Vec<_> = pileup_region(&f, 7, 10, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![7, 8, 9]);
    }

    #[test]
    fn mapq_and_flag_filters() {
        let mut low_mapq = mk(0, 0, b"AC", 30, Flags::none());
        low_mapq.mapq = 5;
        let f = file(vec![
            low_mapq,
            mk(1, 0, b"AC", 30, Flags::DUPLICATE),
            mk(2, 0, b"AC", 30, Flags::none()),
        ]);
        let cols: Vec<_> = pileup_region(&f, 0, 10, PileupParams::default()).collect();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].depth(), 1, "only the clean read survives");
    }

    #[test]
    fn baseq_filter_drops_bases_not_reads() {
        let seq = Seq::from_ascii(b"ACGT").unwrap();
        let quals = vec![Phred::new(2), Phred::new(30), Phred::new(2), Phred::new(30)];
        let rec = Record::full_match(0, 0, 60, Flags::none(), seq, quals).unwrap();
        let f = file(vec![rec]);
        let cols: Vec<_> = pileup_region(&f, 0, 10, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![1, 3], "Q2 bases filtered by min_baseq=3");
    }

    #[test]
    fn depth_cap_enforced() {
        let records: Vec<Record> = (0..50).map(|i| mk(i, 0, b"A", 30, Flags::none())).collect();
        let f = file(records);
        let params = PileupParams {
            max_depth: 10,
            ..PileupParams::default()
        };
        let cols: Vec<_> = pileup_region(&f, 0, 10, params).collect();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].depth(), 10);
        assert!(cols[0].truncated());
    }

    #[test]
    fn deletion_skips_columns() {
        let seq = Seq::from_ascii(b"AAAA").unwrap();
        let quals = vec![Phred::new(30); 4];
        let rec = Record::new(
            0,
            0,
            60,
            Flags::none(),
            seq,
            quals,
            Cigar::parse("2M3D2M").unwrap(),
        )
        .unwrap();
        let f = file(vec![rec]);
        let cols: Vec<_> = pileup_region(&f, 0, 10, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![0, 1, 5, 6]);
    }

    #[test]
    fn empty_file_and_empty_region() {
        let f = file(vec![]);
        assert_eq!(
            pileup_region(&f, 0, 100, PileupParams::default()).count(),
            0
        );
        let f2 = file(vec![mk(0, 0, b"AC", 30, Flags::none())]);
        assert_eq!(
            pileup_region(&f2, 50, 60, PileupParams::default()).count(),
            0
        );
        assert_eq!(pileup_region(&f2, 5, 5, PileupParams::default()).count(), 0);
    }

    #[test]
    fn recycled_columns_change_nothing() {
        // Consuming with recycling must produce exactly the same columns
        // as consuming without, and recycled buffers must come back blank.
        let mut records = Vec::new();
        for i in 0..60u64 {
            records.push(mk(i, (i % 11) as u32 * 3, b"ACGTAC", 30, Flags::none()));
        }
        records.sort_by_key(|r| r.pos);
        for (i, r) in records.iter_mut().enumerate() {
            r.id = i as u64;
        }
        let f = file(records);
        let plain: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        let mut recycled = Vec::new();
        let mut iter = pileup_region(&f, 0, 100, PileupParams::default());
        while let Some(col) = iter.next() {
            recycled.push(col.clone());
            iter.recycle(col);
        }
        assert_eq!(plain, recycled);
        assert!(!iter.free.is_empty(), "recycled buffers retained");
    }

    #[test]
    fn freelist_is_bounded() {
        let f = file(vec![mk(0, 0, b"AC", 30, Flags::none())]);
        let mut iter = pileup_region(&f, 0, 10, PileupParams::default());
        for _ in 0..(FREELIST_CAP + 50) {
            iter.recycle(PileupColumn::new(0));
        }
        assert_eq!(iter.free.len(), FREELIST_CAP);
    }

    #[test]
    fn columns_partition_across_regions() {
        // Pileup of [0,mid) + pileup of [mid,end) must equal pileup of
        // [0,end) — the invariant the parallel caller relies on.
        let mut records = Vec::new();
        for i in 0..200u64 {
            records.push(mk(i, (i % 37) as u32 * 2, b"ACGTACGT", 30, Flags::none()));
        }
        records.sort_by_key(|r| r.pos);
        for (i, r) in records.iter_mut().enumerate() {
            r.id = i as u64;
        }
        let f = file(records);
        let whole: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        let mut split: Vec<_> = pileup_region(&f, 0, 40, PileupParams::default()).collect();
        split.extend(pileup_region(&f, 40, 100, PileupParams::default()));
        assert_eq!(whole, split);
    }

    /// A mixed workload: overlapping reads, strand variety, deletion and
    /// soft-clip CIGARs, low-quality bases, sub-threshold mapq, flagged
    /// reads.
    fn varied_records() -> Vec<Record> {
        let mut records = Vec::new();
        for i in 0..120u64 {
            let pos = (i % 23) as u32 * 4;
            let q = 2 + (i % 40) as u8;
            let flags = match i % 7 {
                0 => Flags::REVERSE,
                1 => Flags::DUPLICATE,
                _ => Flags::none(),
            };
            let mut rec = mk(i, pos, b"ACGTACGTACGT", q, flags);
            if i % 5 == 0 {
                rec = Record::new(
                    i,
                    pos,
                    60,
                    flags,
                    Seq::from_ascii(b"ACGTACGTACGT").unwrap(),
                    (0..12)
                        .map(|j| Phred::new(2 + ((i as usize + j) % 40) as u8))
                        .collect(),
                    Cigar::parse("2S4M3D5M1S").unwrap(),
                )
                .unwrap();
            }
            if i % 11 == 0 {
                rec.mapq = 5;
            }
            records.push(rec);
        }
        records.sort_by_key(|r| r.pos);
        for (i, r) in records.iter_mut().enumerate() {
            r.id = i as u64;
        }
        records
    }

    #[test]
    fn batch_and_legacy_ingest_are_bitwise_identical() {
        let f = file(varied_records());
        for params in [
            PileupParams::default(),
            PileupParams {
                max_depth: 7,
                min_baseq: 20,
                ..PileupParams::default()
            },
            PileupParams {
                min_mapq: 0,
                min_baseq: 0,
                skip_flagged: false,
                ..PileupParams::default()
            },
        ] {
            let batch: Vec<_> = pileup_region(
                &f,
                0,
                200,
                PileupParams {
                    ingest: IngestMode::Batch,
                    ..params
                },
            )
            .collect();
            let legacy: Vec<_> = pileup_region(
                &f,
                0,
                200,
                PileupParams {
                    ingest: IngestMode::Legacy,
                    ..params
                },
            )
            .collect();
            assert_eq!(batch, legacy, "{params:?}");
        }
    }

    #[test]
    fn v1_and_v2_files_pile_identically() {
        let records = varied_records();
        let v2 = BalFile::from_records(records.clone()).unwrap();
        let v1 = BalFile::from_records_legacy(records).unwrap();
        for ingest in [IngestMode::Batch, IngestMode::Legacy] {
            let params = PileupParams {
                ingest,
                ..PileupParams::default()
            };
            let a: Vec<_> = pileup_region(&v2, 0, 200, params).collect();
            let b: Vec<_> = pileup_region(&v1, 0, 200, params).collect();
            assert_eq!(a, b, "{ingest:?}");
        }
    }

    #[test]
    fn cached_pileup_matches_uncached() {
        let f = file(varied_records());
        let cache = Arc::new(SharedBlockCache::new(f.clone()));
        let params = PileupParams::default();
        let plain: Vec<_> = pileup_region(&f, 0, 200, params).collect();
        let cached: Vec<_> = pileup_region_cached(&cache, 0, 200, params).collect();
        assert_eq!(plain, cached);
        // A second overlapping pass hits the cache instead of re-decoding.
        let mut second = pileup_region_cached(&cache, 0, 200, params);
        let again: Vec<_> = second.by_ref().collect();
        assert_eq!(again, plain);
        assert_eq!(second.decode_stats().blocks, 0, "all blocks were hits");
        assert_eq!(second.cache_hits() as usize, f.n_blocks());
    }

    #[test]
    fn cached_split_regions_decode_each_block_once() {
        let f = file(varied_records());
        let cache = Arc::new(SharedBlockCache::new(f.clone()));
        let params = PileupParams::default();
        let whole: Vec<_> = pileup_region(&f, 0, 200, params).collect();
        let mut iters: Vec<_> = [(0u32, 30u32), (30, 60), (60, 200)]
            .iter()
            .map(|&(s, e)| pileup_region_cached(&cache, s, e, params))
            .collect();
        let mut split = Vec::new();
        for it in &mut iters {
            split.extend(it.by_ref());
        }
        assert_eq!(whole, split);
        let total_decodes: u64 = iters.iter().map(|it| it.decode_stats().blocks).sum();
        assert_eq!(
            total_decodes,
            f.n_blocks() as u64,
            "boundary blocks decoded exactly once across regions"
        );
        assert!(
            iters.iter().map(|it| it.cache_hits()).sum::<u64>() > 0,
            "overlapping regions must have produced cache hits"
        );
    }

    #[test]
    fn windowed_pileup_matches_cached_and_plain() {
        use ultravc_bamlite::IoPlan;
        let f = file(varied_records());
        let params = PileupParams::default();
        let whole: Vec<_> = pileup_region(&f, 0, 200, params).collect();
        let regions = vec![0u32..30, 30..60, 60..200];
        let plan = IoPlan::for_regions(&f, &regions);
        let cache = Arc::new(SharedBlockCache::for_plan(f.clone(), &plan));
        let mut iters: Vec<_> = plan
            .windows()
            .iter()
            .map(|w| pileup_region_windowed(&cache, w, params))
            .collect();
        let mut split = Vec::new();
        for it in &mut iters {
            split.extend(it.by_ref());
        }
        assert_eq!(whole, split, "windows partition identically to regions");
        let total_decodes: u64 = iters.iter().map(|it| it.decode_stats().blocks).sum();
        assert_eq!(
            total_decodes,
            f.n_blocks() as u64,
            "windowed iterators keep decode-once"
        );
    }

    #[test]
    fn push_slot_equals_entry_push() {
        let mut a = PileupColumn::new(0);
        let mut b = PileupColumn::new(0);
        for (base, q, rev) in [
            (Base::A, 30u8, false),
            (Base::G, 2, true),
            (Base::T, 93, false),
        ] {
            a.push_capped(
                PileupEntry {
                    base,
                    qual: Phred::new(q),
                    reverse: rev,
                },
                10,
            );
            b.push_slot_capped(base.code(), rev, q, 10);
        }
        assert_eq!(a, b);
        // Cap behaviour matches too.
        for _ in 0..20 {
            a.push_capped(
                PileupEntry {
                    base: Base::C,
                    qual: Phred::new(10),
                    reverse: false,
                },
                4,
            );
            b.push_slot_capped(Base::C.code(), false, 10, 4);
        }
        assert_eq!(a, b);
        assert!(b.truncated());
    }

    #[test]
    fn ingest_mode_resolution() {
        assert_eq!(IngestMode::Batch.resolved(), ResolvedIngest::Batch);
        assert_eq!(IngestMode::Legacy.resolved(), ResolvedIngest::Legacy);
        // Auto resolves to one of the two (depending on the environment).
        let auto = IngestMode::Auto.resolved();
        assert!(matches!(
            auto,
            ResolvedIngest::Batch | ResolvedIngest::Legacy
        ));
    }
}
