//! The streaming pileup iterator.
//!
//! Records arrive position-sorted from a [`BalReader`] (blocks decoded
//! lazily); a ring of in-flight columns receives bases from every read that
//! overlaps them; a column is emitted as soon as no unread record can still
//! touch it (i.e. the next record starts past it). Peak memory is
//! `O(read_len × depth_cap)` packed entries, independent of file size.

use crate::column::{PileupColumn, PileupEntry};
use std::collections::VecDeque;
use ultravc_bamlite::{BalError, BalFile, BalReader, Record};

/// Pileup configuration, mirroring LoFreq's relevant defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PileupParams {
    /// Depth cap per column (LoFreq default: 1 000 000; the paper's Table I
    /// footnote depends on it).
    pub max_depth: usize,
    /// Minimum mapping quality; reads below are skipped entirely.
    pub min_mapq: u8,
    /// Minimum base quality; bases below are not stacked.
    pub min_baseq: u8,
    /// Skip reads flagged secondary/duplicate/QC-fail.
    pub skip_flagged: bool,
}

impl Default for PileupParams {
    fn default() -> Self {
        PileupParams {
            max_depth: 1_000_000,
            min_mapq: 13,
            min_baseq: 3,
            skip_flagged: true,
        }
    }
}

/// Stream pileup columns for `[start, end)` of the given file.
///
/// Every worker thread calls this with its own region; the readers share the
/// file bytes but decode independently.
pub fn pileup_region(file: &BalFile, start: u32, end: u32, params: PileupParams) -> PileupIter {
    let blocks = file.blocks_overlapping(start, end);
    PileupIter {
        reader: file.reader(),
        blocks,
        next_block: 0,
        buffered: VecDeque::new(),
        ring: VecDeque::new(),
        free: Vec::new(),
        start,
        end,
        params,
        done: false,
        error: None,
    }
}

/// Upper bound on retained spare columns. Larger than any realistic read
/// length (= ring width), so steady state never allocates; small enough
/// that a pathological consumer cannot balloon memory by recycling
/// thousands of columns.
const FREELIST_CAP: usize = 256;

/// Iterator over non-empty pileup columns of a region, in position order.
pub struct PileupIter {
    reader: BalReader,
    blocks: Vec<usize>,
    next_block: usize,
    buffered: VecDeque<Record>,
    /// In-flight columns, front = lowest position. Invariant: contiguous
    /// positions `ring[0].pos .. ring[0].pos + ring.len()`.
    ring: VecDeque<PileupColumn>,
    /// Retired column buffers awaiting reuse: uncovered positions the
    /// iterator skipped plus whatever the consumer hands back via
    /// [`PileupIter::recycle`]. In steady state the ring allocates no new
    /// histogram per position.
    free: Vec<PileupColumn>,
    start: u32,
    end: u32,
    params: PileupParams,
    done: bool,
    error: Option<BalError>,
}

impl PileupIter {
    /// The first decode error, if the iterator stopped on one.
    pub fn error(&self) -> Option<&BalError> {
        self.error.as_ref()
    }

    /// Return an emitted column's buffer for reuse. Consumers that call
    /// this after processing each column make the iterator allocation-free
    /// in steady state; not calling it is also fine (the column is simply
    /// dropped and the ring allocates replacements).
    pub fn recycle(&mut self, column: PileupColumn) {
        if self.free.len() < FREELIST_CAP {
            self.free.push(column);
        }
    }

    /// A blank column at `pos`, reusing a retired buffer when available.
    fn fresh_column(&mut self, pos: u32) -> PileupColumn {
        match self.free.pop() {
            Some(mut col) => {
                col.reset(pos);
                col
            }
            None => PileupColumn::new(pos),
        }
    }

    /// Decode accounting from the underlying reader.
    pub fn decode_stats(&self) -> ultravc_bamlite::DecodeStats {
        self.reader.stats()
    }

    fn next_record(&mut self) -> Option<Record> {
        loop {
            if let Some(rec) = self.buffered.pop_front() {
                return Some(rec);
            }
            if self.next_block >= self.blocks.len() {
                return None;
            }
            let block_id = self.blocks[self.next_block];
            self.next_block += 1;
            match self.reader.decode_block(block_id) {
                Ok(records) => {
                    self.buffered.extend(records);
                }
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    return None;
                }
            }
        }
    }

    fn peek_pos(&mut self) -> Option<u32> {
        if self.buffered.is_empty() {
            // Force one block in.
            if let Some(rec) = self.next_record() {
                self.buffered.push_front(rec);
            }
        }
        self.buffered.front().map(|r| r.pos)
    }

    /// Fold a record's aligned bases into the ring.
    fn absorb(&mut self, rec: Record) {
        if self.params.skip_flagged && rec.flags.is_filtered() {
            return;
        }
        if rec.mapq < self.params.min_mapq {
            return;
        }
        let reverse = rec.flags.is_reverse();
        for (ref_pos, base, qual) in rec.aligned_bases() {
            if ref_pos < self.start || ref_pos >= self.end {
                continue;
            }
            if qual.0 < self.params.min_baseq {
                continue;
            }
            self.ensure_column(ref_pos);
            let front_pos = self.ring.front().expect("ensured non-empty").pos;
            let idx = (ref_pos - front_pos) as usize;
            self.ring[idx].push_capped(
                PileupEntry {
                    base,
                    qual,
                    reverse,
                },
                self.params.max_depth,
            );
        }
    }

    /// Grow the ring (preserving contiguity) to contain `pos`.
    fn ensure_column(&mut self, pos: u32) {
        match self.ring.front() {
            None => {
                let col = self.fresh_column(pos);
                self.ring.push_back(col);
            }
            Some(front) => {
                let front_pos = front.pos;
                debug_assert!(
                    pos >= front_pos,
                    "records must not reach behind the emission front"
                );
                let mut next = front_pos + self.ring.len() as u32;
                while next <= pos {
                    let col = self.fresh_column(next);
                    self.ring.push_back(col);
                    next += 1;
                }
            }
        }
    }
}

impl Iterator for PileupIter {
    type Item = PileupColumn;

    fn next(&mut self) -> Option<PileupColumn> {
        loop {
            if self.done && self.ring.is_empty() {
                return None;
            }
            // Absorb every record that can still touch the front column.
            while !self.done {
                let front_pos = self.ring.front().map(|c| c.pos);
                match self.peek_pos() {
                    None => {
                        self.done = true;
                        break;
                    }
                    Some(p) => {
                        // If the ring is empty, absorb unconditionally to
                        // seed it; otherwise only records at or before the
                        // front column still affect it.
                        if front_pos.is_none() || p <= front_pos.expect("checked") {
                            let rec = self.buffered.pop_front().expect("peeked");
                            self.absorb(rec);
                        } else {
                            break;
                        }
                    }
                }
            }
            match self.ring.pop_front() {
                None => {
                    if self.done {
                        return None;
                    }
                }
                Some(col) => {
                    if !col.is_empty() {
                        return Some(col);
                    }
                    // Skip uncovered positions silently (mpileup
                    // behaviour), returning the buffer to the freelist.
                    self.recycle(col);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultravc_bamlite::{Flags, Record};
    use ultravc_genome::alphabet::Base;
    use ultravc_genome::phred::Phred;
    use ultravc_genome::sequence::Seq;

    fn mk(id: u64, pos: u32, bases: &[u8], q: u8, flags: Flags) -> Record {
        let seq = Seq::from_ascii(bases).unwrap();
        let quals = vec![Phred::new(q); seq.len()];
        Record::full_match(id, pos, 60, flags, seq, quals).unwrap()
    }

    fn file(records: Vec<Record>) -> BalFile {
        BalFile::from_records(records).unwrap()
    }

    #[test]
    fn single_read_single_column_stack() {
        let f = file(vec![mk(0, 10, b"ACGT", 30, Flags::none())]);
        let cols: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].pos, 10);
        assert_eq!(cols[3].pos, 13);
        assert_eq!(cols[0].depth(), 1);
        assert_eq!(cols[0].iter().next().unwrap().base, Base::A);
        assert_eq!(cols[3].iter().next().unwrap().base, Base::T);
    }

    #[test]
    fn overlapping_reads_stack() {
        let f = file(vec![
            mk(0, 0, b"AAAA", 30, Flags::none()),
            mk(1, 2, b"AAAA", 25, Flags::REVERSE),
            mk(2, 4, b"AAAA", 20, Flags::none()),
        ]);
        let cols: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        // Coverage: 0,1 depth1; 2,3 depth2; 4,5 depth2; 6,7 depth1.
        let depths: Vec<(u32, usize)> = cols.iter().map(|c| (c.pos, c.depth())).collect();
        assert_eq!(
            depths,
            vec![
                (0, 1),
                (1, 1),
                (2, 2),
                (3, 2),
                (4, 2),
                (5, 2),
                (6, 1),
                (7, 1)
            ]
        );
        // Strand accounting at column 2: one forward A, one reverse A.
        assert_eq!(cols[2].strand_counts(Base::A), (1, 1));
    }

    #[test]
    fn gap_between_reads_emits_no_empty_columns() {
        let f = file(vec![
            mk(0, 0, b"AC", 30, Flags::none()),
            mk(1, 10, b"GT", 30, Flags::none()),
        ]);
        let cols: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![0, 1, 10, 11]);
    }

    #[test]
    fn region_bounds_clip_columns() {
        let f = file(vec![mk(0, 5, b"ACGTACGT", 30, Flags::none())]);
        let cols: Vec<_> = pileup_region(&f, 7, 10, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![7, 8, 9]);
    }

    #[test]
    fn mapq_and_flag_filters() {
        let mut low_mapq = mk(0, 0, b"AC", 30, Flags::none());
        low_mapq.mapq = 5;
        let f = file(vec![
            low_mapq,
            mk(1, 0, b"AC", 30, Flags::DUPLICATE),
            mk(2, 0, b"AC", 30, Flags::none()),
        ]);
        let cols: Vec<_> = pileup_region(&f, 0, 10, PileupParams::default()).collect();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].depth(), 1, "only the clean read survives");
    }

    #[test]
    fn baseq_filter_drops_bases_not_reads() {
        let seq = Seq::from_ascii(b"ACGT").unwrap();
        let quals = vec![Phred::new(2), Phred::new(30), Phred::new(2), Phred::new(30)];
        let rec = Record::full_match(0, 0, 60, Flags::none(), seq, quals).unwrap();
        let f = file(vec![rec]);
        let cols: Vec<_> = pileup_region(&f, 0, 10, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![1, 3], "Q2 bases filtered by min_baseq=3");
    }

    #[test]
    fn depth_cap_enforced() {
        let records: Vec<Record> = (0..50).map(|i| mk(i, 0, b"A", 30, Flags::none())).collect();
        let f = file(records);
        let params = PileupParams {
            max_depth: 10,
            ..PileupParams::default()
        };
        let cols: Vec<_> = pileup_region(&f, 0, 10, params).collect();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].depth(), 10);
        assert!(cols[0].truncated());
    }

    #[test]
    fn deletion_skips_columns() {
        use ultravc_bamlite::Cigar;
        let seq = Seq::from_ascii(b"AAAA").unwrap();
        let quals = vec![Phred::new(30); 4];
        let rec = Record::new(
            0,
            0,
            60,
            Flags::none(),
            seq,
            quals,
            Cigar::parse("2M3D2M").unwrap(),
        )
        .unwrap();
        let f = file(vec![rec]);
        let cols: Vec<_> = pileup_region(&f, 0, 10, PileupParams::default()).collect();
        let positions: Vec<u32> = cols.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![0, 1, 5, 6]);
    }

    #[test]
    fn empty_file_and_empty_region() {
        let f = file(vec![]);
        assert_eq!(
            pileup_region(&f, 0, 100, PileupParams::default()).count(),
            0
        );
        let f2 = file(vec![mk(0, 0, b"AC", 30, Flags::none())]);
        assert_eq!(
            pileup_region(&f2, 50, 60, PileupParams::default()).count(),
            0
        );
        assert_eq!(pileup_region(&f2, 5, 5, PileupParams::default()).count(), 0);
    }

    #[test]
    fn recycled_columns_change_nothing() {
        // Consuming with recycling must produce exactly the same columns
        // as consuming without, and recycled buffers must come back blank.
        let mut records = Vec::new();
        for i in 0..60u64 {
            records.push(mk(i, (i % 11) as u32 * 3, b"ACGTAC", 30, Flags::none()));
        }
        records.sort_by_key(|r| r.pos);
        for (i, r) in records.iter_mut().enumerate() {
            r.id = i as u64;
        }
        let f = file(records);
        let plain: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        let mut recycled = Vec::new();
        let mut iter = pileup_region(&f, 0, 100, PileupParams::default());
        while let Some(col) = iter.next() {
            recycled.push(col.clone());
            iter.recycle(col);
        }
        assert_eq!(plain, recycled);
        assert!(!iter.free.is_empty(), "recycled buffers retained");
    }

    #[test]
    fn freelist_is_bounded() {
        let f = file(vec![mk(0, 0, b"AC", 30, Flags::none())]);
        let mut iter = pileup_region(&f, 0, 10, PileupParams::default());
        for _ in 0..(FREELIST_CAP + 50) {
            iter.recycle(PileupColumn::new(0));
        }
        assert_eq!(iter.free.len(), FREELIST_CAP);
    }

    #[test]
    fn columns_partition_across_regions() {
        // Pileup of [0,mid) + pileup of [mid,end) must equal pileup of
        // [0,end) — the invariant the parallel caller relies on.
        let mut records = Vec::new();
        for i in 0..200u64 {
            records.push(mk(i, (i % 37) as u32 * 2, b"ACGTACGT", 30, Flags::none()));
        }
        records.sort_by_key(|r| r.pos);
        for (i, r) in records.iter_mut().enumerate() {
            r.id = i as u64;
        }
        let f = file(records);
        let whole: Vec<_> = pileup_region(&f, 0, 100, PileupParams::default()).collect();
        let mut split: Vec<_> = pileup_region(&f, 0, 40, PileupParams::default()).collect();
        split.extend(pileup_region(&f, 40, 100, PileupParams::default()));
        assert_eq!(whole, split);
    }
}
