//! # ultravc-pileup
//!
//! The pileup engine: turns a position-sorted alignment store into a stream
//! of per-column base/quality stacks — the unit of work of the entire
//! LoFreq algorithm ("operates by iterating through each pileup column
//! checking for SNVs", §II.B of the paper).
//!
//! Design constraints inherited from the paper:
//!
//! * **Depth cap.** LoFreq limits columns to 1 000 000 reads by default
//!   (Table I's footnote: the 25 GB file's true depth was ~5 M but LoFreq
//!   capped it); [`PileupParams::max_depth`] reproduces that.
//! * **Streaming.** Ultra-deep columns are huge (a 1 000 000× column is
//!   megabytes of qualities), so the engine holds only the ring of columns
//!   still receiving bases from overlapping reads — never the whole file.
//! * **Region queries.** Each parallel worker pileups its own partition via
//!   an independent [`ultravc_bamlite::BalReader`], matching the paper's
//!   one-reader-per-thread OpenMP design; [`partition`] provides the
//!   contiguous split (script mode) and chunked split (dynamic scheduling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod engine;
pub mod partition;

pub use column::{PileupColumn, PileupEntry, QualityBins};
pub use engine::{
    pileup_region, pileup_region_cached, pileup_region_windowed, IngestMode, PileupIter,
    PileupParams, ResolvedIngest,
};
pub use partition::{chunk_ranges, split_ranges};
