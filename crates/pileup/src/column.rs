//! Pileup columns: the per-position stack of observed bases and qualities.
//!
//! Entries are packed to two bytes (quality byte + base/strand meta byte) so
//! that an ultra-deep column stays cache-compact: the paper's discussion
//! attributes much of its speedup to the working set of the hot loop, and a
//! 2-byte entry keeps a 100 000× column in ~200 KB instead of ~2 MB.

use serde::{Deserialize, Serialize};
use ultravc_genome::alphabet::Base;
use ultravc_genome::phred::Phred;

/// One observed base in a column (unpacked view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PileupEntry {
    /// The observed base.
    pub base: Base,
    /// Its Phred quality.
    pub qual: Phred,
    /// Whether the carrying read aligned to the reverse strand.
    pub reverse: bool,
}

/// Packed storage: `(qual, meta)` with meta bits `0..2` = base code,
/// bit `2` = reverse strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Packed(u8, u8);

impl Packed {
    #[inline]
    fn pack(e: PileupEntry) -> Packed {
        Packed(e.qual.0, e.base.code() | ((e.reverse as u8) << 2))
    }

    #[inline]
    fn unpack(self) -> PileupEntry {
        PileupEntry {
            base: Base::from_code(self.1 & 0b11),
            qual: Phred(self.0),
            reverse: self.1 & 0b100 != 0,
        }
    }
}

/// A complete pileup column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PileupColumn {
    /// 0-based reference position.
    pub pos: u32,
    entries: Vec<Packed>,
    truncated: bool,
}

impl PileupColumn {
    /// Empty column at a position.
    pub fn new(pos: u32) -> PileupColumn {
        PileupColumn {
            pos,
            entries: Vec::new(),
            truncated: false,
        }
    }

    /// Append an entry, enforcing the depth cap. Returns whether the entry
    /// was kept.
    pub fn push_capped(&mut self, e: PileupEntry, max_depth: usize) -> bool {
        if self.entries.len() >= max_depth {
            self.truncated = true;
            return false;
        }
        self.entries.push(Packed::pack(e));
        true
    }

    /// Append without a cap (tests, small columns).
    pub fn push(&mut self, e: PileupEntry) {
        self.entries.push(Packed::pack(e));
    }

    /// Number of bases stacked on this column (after capping).
    #[inline]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the depth cap discarded reads.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Iterate entries in arrival (read-position) order.
    pub fn iter(&self) -> impl Iterator<Item = PileupEntry> + '_ {
        self.entries.iter().map(|p| p.unpack())
    }

    /// Per-base counts `[A, C, G, T]`.
    pub fn base_counts(&self) -> [u32; 4] {
        let mut c = [0u32; 4];
        for p in &self.entries {
            c[(p.1 & 0b11) as usize] += 1;
        }
        c
    }

    /// Forward/reverse counts of one base — the strand-bias contingency
    /// inputs.
    pub fn strand_counts(&self, base: Base) -> (u32, u32) {
        let (mut fwd, mut rev) = (0u32, 0u32);
        for p in &self.entries {
            if p.1 & 0b11 == base.code() {
                if p.1 & 0b100 != 0 {
                    rev += 1;
                } else {
                    fwd += 1;
                }
            }
        }
        (fwd, rev)
    }

    /// Count of bases differing from the reference base — the `K` of the
    /// paper's tail test.
    pub fn mismatch_count(&self, ref_base: Base) -> u32 {
        let counts = self.base_counts();
        self.depth() as u32 - counts[ref_base.code() as usize]
    }

    /// The most frequent non-reference base, if any mismatch exists.
    pub fn top_alt(&self, ref_base: Base) -> Option<(Base, u32)> {
        let counts = self.base_counts();
        Base::ALL
            .iter()
            .filter(|b| **b != ref_base)
            .map(|b| (*b, counts[b.code() as usize]))
            .filter(|(_, n)| *n > 0)
            .max_by_key(|(_, n)| *n)
    }

    /// Per-read error probabilities implied by the qualities, in arrival
    /// order — the `{p_i}` of the Poisson-binomial.
    pub fn error_probs(&self) -> Vec<f64> {
        self.entries
            .iter()
            .map(|p| ultravc_genome::phred::phred_to_prob(p.0))
            .collect()
    }

    /// `λ = Σ p_i` without materializing the probability vector — the
    /// `O(d)` accumulation the approximation shortcut runs on every column.
    pub fn lambda(&self) -> f64 {
        self.entries
            .iter()
            .map(|p| ultravc_genome::phred::phred_to_prob(p.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(base: Base, q: u8, reverse: bool) -> PileupEntry {
        PileupEntry {
            base,
            qual: Phred::new(q),
            reverse,
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for base in Base::ALL {
            for q in [0u8, 20, 41, 93] {
                for rev in [false, true] {
                    let entry = e(base, q, rev);
                    assert_eq!(Packed::pack(entry).unpack(), entry);
                }
            }
        }
    }

    #[test]
    fn counts_and_mismatches() {
        let mut col = PileupColumn::new(7);
        for _ in 0..10 {
            col.push(e(Base::A, 30, false));
        }
        for _ in 0..3 {
            col.push(e(Base::G, 25, true));
        }
        col.push(e(Base::T, 20, false));
        assert_eq!(col.depth(), 14);
        assert_eq!(col.base_counts(), [10, 0, 3, 1]);
        assert_eq!(col.mismatch_count(Base::A), 4);
        assert_eq!(col.mismatch_count(Base::G), 11);
        assert_eq!(col.top_alt(Base::A), Some((Base::G, 3)));
        assert_eq!(col.top_alt(Base::G).map(|(b, _)| b), Some(Base::A));
    }

    #[test]
    fn top_alt_none_when_pure() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::C, 30, false));
        assert_eq!(col.top_alt(Base::C), None);
    }

    #[test]
    fn strand_counts() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::G, 30, false));
        col.push(e(Base::G, 30, true));
        col.push(e(Base::G, 30, true));
        col.push(e(Base::A, 30, false));
        assert_eq!(col.strand_counts(Base::G), (1, 2));
        assert_eq!(col.strand_counts(Base::A), (1, 0));
        assert_eq!(col.strand_counts(Base::T), (0, 0));
    }

    #[test]
    fn depth_cap_truncates() {
        let mut col = PileupColumn::new(0);
        for i in 0..5 {
            let kept = col.push_capped(e(Base::A, 30, false), 3);
            assert_eq!(kept, i < 3);
        }
        assert_eq!(col.depth(), 3);
        assert!(col.truncated());
        let mut uncapped = PileupColumn::new(0);
        uncapped.push_capped(e(Base::A, 30, false), 10);
        assert!(!uncapped.truncated());
    }

    #[test]
    fn lambda_matches_error_probs_sum() {
        let mut col = PileupColumn::new(0);
        for q in [10u8, 20, 30, 40] {
            col.push(e(Base::A, q, false));
        }
        let direct: f64 = col.error_probs().iter().sum();
        assert!((col.lambda() - direct).abs() < 1e-15);
        assert!((col.lambda() - 0.111_1).abs() < 1e-3);
    }

    #[test]
    fn iter_preserves_order() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::A, 10, false));
        col.push(e(Base::C, 20, true));
        let got: Vec<_> = col.iter().collect();
        assert_eq!(got[0].base, Base::A);
        assert_eq!(got[1].base, Base::C);
        assert!(got[1].reverse);
    }
}
