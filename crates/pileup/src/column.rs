//! Pileup columns: the per-position stack of observed bases and qualities.
//!
//! # Representation: a quality histogram, not an entry list
//!
//! A column stores **counts indexed by (base, strand, quality)** instead of
//! one packed entry per read. Phred qualities are a `u8` with at most
//! [`QUAL_SLOTS`](crate::column) distinct values (and far fewer in real
//! data — Illumina instruments emit a handful of quality plateaus), so a
//! 1 000 000× ultra-deep column collapses to a fixed ~3 KB histogram
//! instead of a 2 MB entry vector.
//!
//! That changes the complexity class of every per-column quantity:
//!
//! * `depth`, `base_counts`, `strand_counts`, `mismatch_count`, `top_alt`
//!   are sums over a fixed number of bins — `O(1)` in depth;
//! * `lambda` (`λ = Σ p_i`, the input of the paper's `O(d)` Poisson screen)
//!   becomes `Σ count(q) · p(q)` over the Phred table — `O(#slots)`, i.e.
//!   **independent of depth**;
//! * the exact Poisson-binomial kernels consume the [`QualityBins`] view —
//!   `(error probability, multiplicity)` pairs — and fold each bin of `m`
//!   identical Bernoulli trials in `O(K·min(m, K))` instead of `m` scalar
//!   DP steps (see `ultravc_stats::poisson_binomial`), for a total
//!   per-column cost of `O(#bins · K²)` instead of `O(d · K)`.
//!
//! The fixed-shape reductions over the histogram (`lambda`,
//! `base_counts`, the bin aggregation) run through the
//! `ultravc_simd` runtime-dispatched kernel table, so on AVX2/NEON hosts
//! they execute as vector loops — with bitwise-identical results on the
//! scalar fallback (`ULTRAVC_FORCE_SCALAR=1`).
//!
//! The paper's Table I attributes its wins to shrinking the hot loop's
//! working set; the histogram is that insight applied to the column
//! representation itself. The trade-off is that per-read arrival order is
//! not representable: [`PileupColumn::iter`] yields entries grouped by
//! (strand, base, quality). No caller depends on arrival order — the
//! Poisson-binomial is exchangeable in its trials.

use serde::{Deserialize, Serialize};
use ultravc_genome::alphabet::Base;
use ultravc_genome::phred::{phred_prob_table, phred_to_prob, Phred, MAX_PHRED};

/// Number of representable Phred scores (`0..=MAX_PHRED`).
pub const QUAL_SLOTS: usize = MAX_PHRED as usize + 1;

/// Number of (base, strand) groups: 4 bases × 2 strands.
const GROUPS: usize = 8;

/// One observed base in a column (unpacked view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PileupEntry {
    /// The observed base.
    pub base: Base,
    /// Its Phred quality.
    pub qual: Phred,
    /// Whether the carrying read aligned to the reverse strand.
    pub reverse: bool,
}

impl PileupEntry {
    /// Histogram group index: base code in bits `0..2`, strand in bit `2`.
    #[inline]
    fn group(self) -> usize {
        (self.base.code() | ((self.reverse as u8) << 2)) as usize
    }
}

/// A complete pileup column: a (base, strand, quality) count histogram.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct PileupColumn {
    /// 0-based reference position.
    pub pos: u32,
    /// `counts[group * QUAL_SLOTS + qual]`, group = base code | strand << 2.
    counts: Box<[u32; GROUPS * QUAL_SLOTS]>,
    depth: u32,
    truncated: bool,
}

impl PileupColumn {
    /// Empty column at a position.
    pub fn new(pos: u32) -> PileupColumn {
        PileupColumn {
            pos,
            counts: Box::new([0u32; GROUPS * QUAL_SLOTS]),
            depth: 0,
            truncated: false,
        }
    }

    /// Reset to an empty column at a new position, keeping the histogram
    /// allocation. This is what makes the pileup engine's column freelist
    /// allocation-free in steady state.
    pub fn reset(&mut self, pos: u32) {
        self.pos = pos;
        self.counts.fill(0);
        self.depth = 0;
        self.truncated = false;
    }

    /// Append an entry, enforcing the depth cap. Returns whether the entry
    /// was kept.
    #[inline]
    pub fn push_capped(&mut self, e: PileupEntry, max_depth: usize) -> bool {
        if self.depth as usize >= max_depth {
            self.truncated = true;
            return false;
        }
        self.push(e);
        true
    }

    /// Append without a cap (tests, small columns).
    #[inline]
    pub fn push(&mut self, e: PileupEntry) {
        let qual = (e.qual.0 as usize).min(MAX_PHRED as usize);
        self.counts[e.group() * QUAL_SLOTS + qual] += 1;
        self.depth += 1;
    }

    /// Append by raw base code and pre-resolved quality slot, enforcing
    /// the depth cap — the **bin-indexed** push the batch ingest path
    /// uses. `slot` is the histogram row a `QualityDict` bin resolves to
    /// (its clamped Phred score), so stacking performs no per-base
    /// Phred→probability work and no clamping. Exactly equivalent to
    /// [`Self::push_capped`] with the corresponding `PileupEntry`.
    #[inline]
    pub fn push_slot_capped(
        &mut self,
        base_code: u8,
        reverse: bool,
        slot: u8,
        max_depth: usize,
    ) -> bool {
        if self.depth as usize >= max_depth {
            self.truncated = true;
            return false;
        }
        debug_assert!(base_code < 4, "base code out of range");
        debug_assert!((slot as usize) < QUAL_SLOTS, "quality slot out of range");
        let group = (base_code | ((reverse as u8) << 2)) as usize;
        self.counts[group * QUAL_SLOTS + slot as usize] += 1;
        self.depth += 1;
        true
    }

    /// Number of bases stacked on this column (after capping).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Whether the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Whether the depth cap discarded reads.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Iterate the stacked entries. Entries are yielded grouped by
    /// (strand, base, quality) — ascending group index, then ascending
    /// quality, each repeated by its multiplicity. Per-read arrival order
    /// is not representable in the histogram (and nothing statistical
    /// depends on it: the trials are exchangeable).
    pub fn iter(&self) -> impl Iterator<Item = PileupEntry> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .flat_map(|(idx, &n)| {
                let entry = PileupEntry {
                    base: Base::from_code((idx / QUAL_SLOTS) as u8 & 0b11),
                    qual: Phred((idx % QUAL_SLOTS) as u8),
                    reverse: idx / QUAL_SLOTS >= 4,
                };
                std::iter::repeat_n(entry, n as usize)
            })
    }

    /// Per-base counts `[A, C, G, T]`. A sum over the fixed histogram —
    /// `O(1)` in depth — through the dispatched SIMD reduction.
    pub fn base_counts(&self) -> [u32; 4] {
        let kr = ultravc_simd::kernels();
        let mut c = [0u32; 4];
        for (group, chunk) in self.counts.chunks_exact(QUAL_SLOTS).enumerate() {
            let base = group & 0b11;
            // Group totals sum to the (u32) depth, so the u64→u32
            // narrowing cannot truncate.
            c[base] += (kr.sum_u32)(chunk) as u32;
        }
        c
    }

    /// Forward/reverse counts of one base — the strand-bias contingency
    /// inputs.
    pub fn strand_counts(&self, base: Base) -> (u32, u32) {
        let kr = ultravc_simd::kernels();
        let fwd_group = base.code() as usize;
        let rev_group = fwd_group + 4;
        let sum = |g: usize| -> u32 {
            (kr.sum_u32)(&self.counts[g * QUAL_SLOTS..(g + 1) * QUAL_SLOTS]) as u32
        };
        (sum(fwd_group), sum(rev_group))
    }

    /// Count of bases differing from the reference base — the `K` of the
    /// paper's tail test.
    pub fn mismatch_count(&self, ref_base: Base) -> u32 {
        let counts = self.base_counts();
        self.depth - counts[ref_base.code() as usize]
    }

    /// The most frequent non-reference base, if any mismatch exists.
    pub fn top_alt(&self, ref_base: Base) -> Option<(Base, u32)> {
        let counts = self.base_counts();
        Base::ALL
            .iter()
            .filter(|b| **b != ref_base)
            .map(|b| (*b, counts[b.code() as usize]))
            .filter(|(_, n)| *n > 0)
            .max_by_key(|(_, n)| *n)
    }

    /// Per-read error probabilities implied by the qualities, expanded from
    /// the histogram in [`Self::iter`] order — the `{p_i}` of the
    /// Poisson-binomial.
    ///
    /// This materializes `O(depth)` memory; the calling hot path uses
    /// [`Self::fill_quality_bins`] instead and never expands. Retained for
    /// tests, ablations, and the per-trial reference kernels.
    pub fn error_probs(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.depth as usize);
        for (idx, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                let p = phred_to_prob((idx % QUAL_SLOTS) as u8);
                out.extend(std::iter::repeat_n(p, n as usize));
            }
        }
        out
    }

    /// `λ = Σ p_i`, computed as `Σ count(q)·p(q)` over the quality
    /// histogram — `O(QUAL_SLOTS)`, independent of depth. This feeds the
    /// paper's `O(d)` Poisson screen, which the histogram upgrades to
    /// `O(1)` in depth.
    pub fn lambda(&self) -> f64 {
        let table = phred_prob_table();
        let kr = ultravc_simd::kernels();
        // One count(q)·p(q) dot product per (base, strand) group; the
        // kernel's fixed blocked reduction keeps the sum deterministic
        // across dispatch backends.
        self.counts
            .chunks_exact(QUAL_SLOTS)
            .map(|chunk| (kr.dot_u32_f64)(chunk, table))
            .sum()
    }

    /// Number of distinct quality values present — the bin count of the
    /// grouped-trial DP's outer loop.
    pub fn distinct_quals(&self) -> usize {
        let mut present = [false; QUAL_SLOTS];
        for (idx, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                present[idx % QUAL_SLOTS] = true;
            }
        }
        present.iter().filter(|&&p| p).count()
    }

    /// Fill `out` with this column's quality bins (see [`QualityBins`]),
    /// reusing its allocation. The calling path's replacement for
    /// [`Self::error_probs`]: no per-column heap allocation once the
    /// buffer has warmed up.
    pub fn fill_quality_bins(&self, out: &mut QualityBins) {
        out.clear();
        let table = phred_prob_table();
        let kr = ultravc_simd::kernels();
        // Aggregate the 8 (base, strand) group rows into one per-quality
        // histogram — an element-wise vector add per row. No overflow:
        // the grand total is the column depth, itself a u32.
        let mut per_qual = [0u32; QUAL_SLOTS];
        for chunk in self.counts.chunks_exact(QUAL_SLOTS) {
            (kr.accumulate_u32)(&mut per_qual, chunk);
        }
        // Descending quality = ascending error probability.
        for q in (0..QUAL_SLOTS).rev() {
            let n = per_qual[q];
            if n > 0 {
                out.bins.push((table[q], n));
                out.depth += n as u64;
            }
        }
    }

    /// Allocating convenience wrapper over [`Self::fill_quality_bins`].
    pub fn quality_bins(&self) -> QualityBins {
        let mut out = QualityBins::default();
        self.fill_quality_bins(&mut out);
        out
    }
}

impl std::fmt::Debug for PileupColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, c, g, t] = self.base_counts();
        f.debug_struct("PileupColumn")
            .field("pos", &self.pos)
            .field("depth", &self.depth)
            .field("acgt", &[a, c, g, t])
            .field("distinct_quals", &self.distinct_quals())
            .field("truncated", &self.truncated)
            .finish()
    }
}

/// A column's error-probability spectrum: `(probability, multiplicity)`
/// pairs sorted by ascending probability, aggregated over bases and
/// strands.
///
/// This is the interchange type between the pileup layer and the
/// grouped-trial Poisson-binomial kernels: a 1M-deep column with ~40
/// distinct qualities is 40 pairs, so the exact-DP working set is a few
/// hundred bytes regardless of depth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityBins {
    bins: Vec<(f64, u32)>,
    depth: u64,
}

impl QualityBins {
    /// Remove all bins, keeping the allocation.
    pub fn clear(&mut self) {
        self.bins.clear();
        self.depth = 0;
    }

    /// The `(error probability, multiplicity)` pairs, probability
    /// ascending — the shape the stats kernels consume.
    #[inline]
    pub fn as_slice(&self) -> &[(f64, u32)] {
        &self.bins
    }

    /// Number of bins (distinct qualities).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether there are no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Total trial count `Σ multiplicity` (= column depth).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// `λ = Σ pᵢ·mᵢ` over the bins.
    pub fn lambda(&self) -> f64 {
        self.bins.iter().map(|&(p, m)| p * m as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(base: Base, q: u8, reverse: bool) -> PileupEntry {
        PileupEntry {
            base,
            qual: Phred::new(q),
            reverse,
        }
    }

    #[test]
    fn histogram_roundtrips_entries() {
        let mut col = PileupColumn::new(3);
        let entries = [
            e(Base::A, 20, false),
            e(Base::A, 20, false),
            e(Base::G, 41, true),
            e(Base::T, 0, false),
            e(Base::C, 93, true),
        ];
        for entry in entries {
            col.push(entry);
        }
        let mut got: Vec<_> = col.iter().collect();
        let mut want = entries.to_vec();
        let key = |x: &PileupEntry| (x.reverse, x.base.code(), x.qual.0);
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }

    #[test]
    fn counts_and_mismatches() {
        let mut col = PileupColumn::new(7);
        for _ in 0..10 {
            col.push(e(Base::A, 30, false));
        }
        for _ in 0..3 {
            col.push(e(Base::G, 25, true));
        }
        col.push(e(Base::T, 20, false));
        assert_eq!(col.depth(), 14);
        assert_eq!(col.base_counts(), [10, 0, 3, 1]);
        assert_eq!(col.mismatch_count(Base::A), 4);
        assert_eq!(col.mismatch_count(Base::G), 11);
        assert_eq!(col.top_alt(Base::A), Some((Base::G, 3)));
        assert_eq!(col.top_alt(Base::G).map(|(b, _)| b), Some(Base::A));
    }

    #[test]
    fn top_alt_none_when_pure() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::C, 30, false));
        assert_eq!(col.top_alt(Base::C), None);
    }

    #[test]
    fn strand_counts() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::G, 30, false));
        col.push(e(Base::G, 30, true));
        col.push(e(Base::G, 30, true));
        col.push(e(Base::A, 30, false));
        assert_eq!(col.strand_counts(Base::G), (1, 2));
        assert_eq!(col.strand_counts(Base::A), (1, 0));
        assert_eq!(col.strand_counts(Base::T), (0, 0));
    }

    #[test]
    fn depth_cap_truncates() {
        let mut col = PileupColumn::new(0);
        for i in 0..5 {
            let kept = col.push_capped(e(Base::A, 30, false), 3);
            assert_eq!(kept, i < 3);
        }
        assert_eq!(col.depth(), 3);
        assert!(col.truncated());
        let mut uncapped = PileupColumn::new(0);
        uncapped.push_capped(e(Base::A, 30, false), 10);
        assert!(!uncapped.truncated());
    }

    #[test]
    fn lambda_matches_error_probs_sum() {
        let mut col = PileupColumn::new(0);
        for q in [10u8, 20, 30, 40] {
            col.push(e(Base::A, q, false));
        }
        let direct: f64 = col.error_probs().iter().sum();
        assert!((col.lambda() - direct).abs() < 1e-15);
        assert!((col.lambda() - 0.111_1).abs() < 1e-3);
    }

    #[test]
    fn quality_bins_sorted_and_complete() {
        let mut col = PileupColumn::new(0);
        // Mixed bases/strands sharing qualities: bins aggregate across both.
        for _ in 0..100 {
            col.push(e(Base::A, 30, false));
        }
        for _ in 0..50 {
            col.push(e(Base::G, 30, true));
        }
        for _ in 0..7 {
            col.push(e(Base::C, 20, false));
        }
        col.push(e(Base::T, 41, true));
        let bins = col.quality_bins();
        assert_eq!(bins.len(), 3, "three distinct qualities");
        assert_eq!(bins.depth(), 158);
        assert_eq!(col.distinct_quals(), 3);
        let slice = bins.as_slice();
        // Ascending probability: Q41 < Q30 < Q20.
        assert!(slice.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(slice[0].1, 1); // Q41
        assert_eq!(slice[1].1, 150); // Q30 across A-fwd and G-rev
        assert_eq!(slice[2].1, 7); // Q20
        assert!((bins.lambda() - col.lambda()).abs() < 1e-12);
    }

    #[test]
    fn fill_reuses_allocation() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::A, 30, false));
        let mut bins = QualityBins::default();
        col.fill_quality_bins(&mut bins);
        let cap = bins.bins.capacity();
        col.fill_quality_bins(&mut bins);
        assert_eq!(bins.bins.capacity(), cap);
        assert_eq!(bins.len(), 1);
        bins.clear();
        assert!(bins.is_empty());
        assert_eq!(bins.depth(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut col = PileupColumn::new(5);
        for _ in 0..4 {
            col.push_capped(e(Base::G, 25, true), 2);
        }
        assert!(col.truncated());
        col.reset(9);
        assert_eq!(col.pos, 9);
        assert_eq!(col.depth(), 0);
        assert!(col.is_empty());
        assert!(!col.truncated());
        assert_eq!(col.base_counts(), [0, 0, 0, 0]);
        assert_eq!(col, PileupColumn::new(9));
    }

    #[test]
    fn iter_groups_by_strand_base_quality() {
        let mut col = PileupColumn::new(0);
        col.push(e(Base::C, 20, true));
        col.push(e(Base::A, 10, false));
        col.push(e(Base::A, 30, false));
        let got: Vec<_> = col.iter().collect();
        // Forward strand first (group order), then quality ascending.
        assert_eq!(got[0], e(Base::A, 10, false));
        assert_eq!(got[1], e(Base::A, 30, false));
        assert_eq!(got[2], e(Base::C, 20, true));
    }

    #[test]
    fn qualities_above_max_clamp() {
        let mut col = PileupColumn::new(0);
        col.push(PileupEntry {
            base: Base::A,
            qual: Phred(200), // bypasses Phred::new clamping
            reverse: false,
        });
        assert_eq!(col.depth(), 1);
        let bins = col.quality_bins();
        assert_eq!(bins.as_slice()[0].0, phred_to_prob(MAX_PHRED));
    }
}
