//! Region partitioning for parallel drivers.
//!
//! Two shapes, matching the paper's two parallelization strategies:
//!
//! * [`split_ranges`] — partition the genome into `n` equal contiguous
//!   pieces. This is what the original LoFreq *script* does before spawning
//!   one process per piece (§II.B).
//! * [`chunk_ranges`] — cut the genome into many fixed-size chunks for a
//!   dynamically-scheduled parallel-for, the OpenMP strategy the paper
//!   replaces the script with (and the smaller-trailing-partition idea its
//!   discussion suggests).

/// Split `[start, end)` into `n` contiguous near-equal ranges (the first
/// `len % n` ranges get the extra column). Empty ranges are omitted, so
/// fewer than `n` ranges come back when the region is shorter than `n`.
pub fn split_ranges(start: u32, end: u32, n: usize) -> Vec<std::ops::Range<u32>> {
    assert!(n > 0, "cannot split into zero parts");
    if start >= end {
        return Vec::new();
    }
    let len = (end - start) as usize;
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n.min(len));
    let mut cursor = start;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        let next = cursor + size as u32;
        out.push(cursor..next);
        cursor = next;
    }
    debug_assert_eq!(cursor, end);
    out
}

/// Cut `[start, end)` into fixed-size chunks (the final chunk may be
/// short). Chunks are the scheduling unit of the dynamic parallel-for.
pub fn chunk_ranges(start: u32, end: u32, chunk: u32) -> Vec<std::ops::Range<u32>> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::new();
    let mut cursor = start;
    while cursor < end {
        let next = cursor.saturating_add(chunk).min(end);
        out.push(cursor..next);
        cursor = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(ranges: &[std::ops::Range<u32>], start: u32, end: u32) {
        assert_eq!(ranges.first().map(|r| r.start), Some(start));
        assert_eq!(ranges.last().map(|r| r.end), Some(end));
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile contiguously");
        }
        for r in ranges {
            assert!(r.start < r.end, "no empty ranges");
        }
    }

    #[test]
    fn split_even_division() {
        let r = split_ranges(0, 100, 4);
        assert_eq!(r.len(), 4);
        covers(&r, 0, 100);
        assert!(r.iter().all(|x| x.len() == 25));
    }

    #[test]
    fn split_uneven_division() {
        let r = split_ranges(0, 10, 3);
        assert_eq!(r.len(), 3);
        covers(&r, 0, 10);
        let sizes: Vec<usize> = r.iter().map(|x| x.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn split_more_parts_than_columns() {
        let r = split_ranges(5, 8, 10);
        assert_eq!(r.len(), 3);
        covers(&r, 5, 8);
    }

    #[test]
    fn split_empty_region() {
        assert!(split_ranges(7, 7, 3).is_empty());
        assert!(split_ranges(8, 7, 3).is_empty());
    }

    #[test]
    fn chunks_tile_with_short_tail() {
        let r = chunk_ranges(0, 103, 25);
        assert_eq!(r.len(), 5);
        covers(&r, 0, 103);
        assert_eq!(r[4].len(), 3);
    }

    #[test]
    fn chunks_exact_fit_and_oversized() {
        covers(&chunk_ranges(10, 60, 25), 10, 60);
        let one = chunk_ranges(0, 10, 100);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], 0..10);
        assert!(chunk_ranges(5, 5, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_zero_parts_panics() {
        let _ = split_ranges(0, 10, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chunk_zero_size_panics() {
        let _ = chunk_ranges(0, 10, 0);
    }
}
