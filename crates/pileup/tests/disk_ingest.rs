//! On-disk ingest parity: a BAL file written to disk and reopened
//! through every [`SourceTier`] must pile up bitwise identically to the
//! in-memory original, in every ingest mode (batch, legacy, shared
//! cache). This is the tempfile-roundtrip suite CI's on-disk legs run
//! under each `ULTRAVC_BAL_SOURCE` pin.

use std::sync::Arc;
use ultravc_bamlite::{BalFile, Cigar, Flags, Record, SharedBlockCache, SourceTier};
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;
use ultravc_pileup::{pileup_region, pileup_region_cached, IngestMode, PileupParams};

fn mk(id: u64, pos: u32, bases: &[u8], q: u8, flags: Flags) -> Record {
    let seq = Seq::from_ascii(bases).unwrap();
    let quals = vec![Phred::new(q); seq.len()];
    Record::full_match(id, pos, 60, flags, seq, quals).unwrap()
}

/// Mixed workload: overlaps, strands, deletions, soft clips, low-quality
/// bases, sub-threshold mapq, flagged reads (mirrors the engine tests).
fn varied_records() -> Vec<Record> {
    let mut records = Vec::new();
    for i in 0..150u64 {
        let pos = (i % 29) as u32 * 4;
        let q = 2 + (i % 40) as u8;
        let flags = match i % 7 {
            0 => Flags::REVERSE,
            1 => Flags::DUPLICATE,
            _ => Flags::none(),
        };
        let mut rec = mk(i, pos, b"ACGTACGTACGT", q, flags);
        if i % 5 == 0 {
            rec = Record::new(
                i,
                pos,
                60,
                flags,
                Seq::from_ascii(b"ACGTACGTACGT").unwrap(),
                (0..12)
                    .map(|j| Phred::new(2 + ((i as usize + j) % 40) as u8))
                    .collect(),
                Cigar::parse("2S4M3D5M1S").unwrap(),
            )
            .unwrap();
        }
        if i % 11 == 0 {
            rec.mapq = 5;
        }
        records.push(rec);
    }
    records.sort_by_key(|r| r.pos);
    for (i, r) in records.iter_mut().enumerate() {
        r.id = i as u64;
    }
    records
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ultravc-disk-ingest-{}-{tag}.bal",
        std::process::id()
    ))
}

const TIERS: [SourceTier; 3] = [SourceTier::Mem, SourceTier::Mmap, SourceTier::Stream];

#[test]
fn disk_tiers_pile_identically_in_every_ingest_mode() {
    for (tag, file) in [
        ("v2", BalFile::from_records(varied_records()).unwrap()),
        (
            "v1",
            BalFile::from_records_legacy(varied_records()).unwrap(),
        ),
    ] {
        let path = temp_path(tag);
        file.write_to(&path).unwrap();
        for params in [
            PileupParams::default(),
            PileupParams {
                max_depth: 7,
                min_baseq: 20,
                ..PileupParams::default()
            },
        ] {
            let baseline: Vec<_> = pileup_region(&file, 0, 600, params).collect();
            assert!(!baseline.is_empty(), "workload must cover columns");
            for tier in TIERS {
                let disk = BalFile::open_with(&path, tier).unwrap();
                for ingest in [IngestMode::Batch, IngestMode::Legacy] {
                    let got: Vec<_> =
                        pileup_region(&disk, 0, 600, PileupParams { ingest, ..params }).collect();
                    assert_eq!(got, baseline, "{tag} {tier:?} {ingest:?}");
                }
                // Shared-cache (decode-once) mode over the disk-backed file.
                let cache = Arc::new(SharedBlockCache::new(disk.clone()));
                let cached: Vec<_> = pileup_region_cached(&cache, 0, 600, params).collect();
                assert_eq!(cached, baseline, "{tag} {tier:?} shared cache");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn disk_backed_shared_cache_still_decodes_once_across_regions() {
    let file = BalFile::from_records(varied_records()).unwrap();
    let path = temp_path("cache-regions");
    file.write_to(&path).unwrap();
    let params = PileupParams::default();
    let whole: Vec<_> = pileup_region(&file, 0, 600, params).collect();
    for tier in TIERS {
        let disk = BalFile::open_with(&path, tier).unwrap();
        let cache = Arc::new(SharedBlockCache::new(disk.clone()));
        let mut iters: Vec<_> = [(0u32, 40u32), (40, 90), (90, 600)]
            .iter()
            .map(|&(s, e)| pileup_region_cached(&cache, s, e, params))
            .collect();
        let mut split = Vec::new();
        for it in &mut iters {
            split.extend(it.by_ref());
        }
        assert_eq!(split, whole, "{tier:?}");
        let total_decodes: u64 = iters.iter().map(|it| it.decode_stats().blocks).sum();
        assert_eq!(
            total_decodes,
            disk.n_blocks() as u64,
            "{tier:?}: boundary blocks must decode exactly once"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn auto_tier_honors_env_contract() {
    // Whatever ULTRAVC_BAL_SOURCE says (CI pins mem/mmap/stream in its
    // on-disk legs), BalFile::open must parse and pile identically.
    let file = BalFile::from_records(varied_records()).unwrap();
    let path = temp_path("auto");
    file.write_to(&path).unwrap();
    let baseline: Vec<_> = pileup_region(&file, 0, 600, PileupParams::default()).collect();
    let disk = BalFile::open(&path).unwrap();
    let got: Vec<_> = pileup_region(&disk, 0, 600, PileupParams::default()).collect();
    assert_eq!(got, baseline, "tier {}", disk.source().tier_name());
    std::fs::remove_file(&path).ok();
}
