//! Property tests of the pileup engine against a brute-force oracle: for
//! arbitrary read sets, the streaming column iterator must agree exactly
//! with a naive per-column scan, and region splits must compose.

use proptest::prelude::*;
use std::sync::Arc;
use ultravc_bamlite::{BalFile, Flags, Record, SharedBlockCache};
use ultravc_genome::alphabet::Base;
use ultravc_genome::phred::Phred;
use ultravc_genome::sequence::Seq;
use ultravc_pileup::{pileup_region, pileup_region_cached, IngestMode, PileupParams};

fn record_strategy() -> impl Strategy<Value = (u32, Vec<u8>, u8, bool)> {
    (
        0u32..300,
        prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 1..40),
        2u8..=41,
        any::<bool>(),
    )
}

fn build(raw: Vec<(u32, Vec<u8>, u8, bool)>) -> Vec<Record> {
    let mut rows = raw;
    rows.sort_by_key(|(pos, ..)| *pos);
    rows.into_iter()
        .enumerate()
        .map(|(id, (pos, bases, q, rev))| {
            let seq = Seq::from_ascii(&bases).unwrap();
            let quals = vec![Phred::new(q); seq.len()];
            let flags = if rev { Flags::REVERSE } else { Flags::none() };
            Record::full_match(id as u64, pos, 60, flags, seq, quals).unwrap()
        })
        .collect()
}

/// Naive oracle: per column, scan every record.
fn oracle_depths(records: &[Record], start: u32, end: u32, min_baseq: u8) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    for pos in start..end {
        let mut depth = 0usize;
        for r in records {
            for (rp, _base, q) in r.aligned_bases() {
                if rp == pos && q.0 >= min_baseq {
                    depth += 1;
                }
            }
        }
        if depth > 0 {
            out.push((pos, depth));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streaming_matches_oracle(raw in prop::collection::vec(record_strategy(), 0..60)) {
        let records = build(raw);
        let file = BalFile::from_records(records.clone()).unwrap();
        let params = PileupParams::default();
        let got: Vec<(u32, usize)> = pileup_region(&file, 0, 400, params)
            .map(|c| (c.pos, c.depth()))
            .collect();
        let want = oracle_depths(&records, 0, 400, params.min_baseq);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn base_counts_match_oracle(raw in prop::collection::vec(record_strategy(), 1..50)) {
        let records = build(raw);
        let file = BalFile::from_records(records.clone()).unwrap();
        let params = PileupParams::default();
        for col in pileup_region(&file, 0, 400, params) {
            let counts = col.base_counts();
            for base in Base::ALL {
                let want = records
                    .iter()
                    .flat_map(|r| r.aligned_bases())
                    .filter(|(rp, b, q)| {
                        *rp == col.pos && *b == base && q.0 >= params.min_baseq
                    })
                    .count() as u32;
                prop_assert_eq!(counts[base.code() as usize], want,
                    "pos {} base {}", col.pos, base);
            }
        }
    }

    #[test]
    fn region_splits_compose(raw in prop::collection::vec(record_strategy(), 0..60),
                             split_at in 1u32..399) {
        let records = build(raw);
        let file = BalFile::from_records(records).unwrap();
        let params = PileupParams::default();
        let whole: Vec<_> = pileup_region(&file, 0, 400, params).collect();
        let mut parts: Vec<_> = pileup_region(&file, 0, split_at, params).collect();
        parts.extend(pileup_region(&file, split_at, 400, params));
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn depth_cap_is_exact(raw in prop::collection::vec(record_strategy(), 1..80),
                          cap in 1usize..20) {
        let records = build(raw);
        let file = BalFile::from_records(records).unwrap();
        let params = PileupParams { max_depth: cap, ..PileupParams::default() };
        for col in pileup_region(&file, 0, 400, params) {
            prop_assert!(col.depth() <= cap);
        }
    }

    #[test]
    fn lambda_equals_sum_of_error_probs(raw in prop::collection::vec(record_strategy(), 1..40)) {
        let records = build(raw);
        let file = BalFile::from_records(records).unwrap();
        for col in pileup_region(&file, 0, 400, PileupParams::default()) {
            let direct: f64 = col.error_probs().iter().sum();
            prop_assert!((col.lambda() - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn ingest_paths_agree_with_depth_caps(
        raw in prop::collection::vec(record_strategy(), 0..80),
        cap in 1usize..25,
        min_baseq in 0u8..30,
    ) {
        // Batch ingest (bin-indexed, arena decode) must be bitwise
        // identical to the legacy per-record path on arbitrary read sets,
        // including depth-cap truncation order and the base-quality
        // filter — over both v1 and v2 files, and through the shared
        // decode-once cache.
        let records = build(raw);
        let params = PileupParams {
            max_depth: cap,
            min_baseq,
            ..PileupParams::default()
        };
        for file in [
            BalFile::from_records(records.clone()).unwrap(),
            BalFile::from_records_legacy(records.clone()).unwrap(),
        ] {
            let legacy: Vec<_> = pileup_region(&file, 0, 400, PileupParams {
                ingest: IngestMode::Legacy,
                ..params
            }).collect();
            let batch: Vec<_> = pileup_region(&file, 0, 400, PileupParams {
                ingest: IngestMode::Batch,
                ..params
            }).collect();
            prop_assert_eq!(&legacy, &batch, "v{} file", file.version());
            let cache = Arc::new(SharedBlockCache::new(file.clone()));
            let cached: Vec<_> = pileup_region_cached(&cache, 0, 400, params).collect();
            prop_assert_eq!(&legacy, &cached, "cached, v{} file", file.version());
        }
    }

    #[test]
    fn quality_bins_agree_with_expanded_probs(raw in prop::collection::vec(record_strategy(), 1..40)) {
        // The binned view must be a lossless regrouping of the per-read
        // probabilities: same total count, same multiset, sorted ascending,
        // one bin per distinct quality.
        let records = build(raw);
        let file = BalFile::from_records(records).unwrap();
        let mut bins = ultravc_pileup::QualityBins::default();
        for col in pileup_region(&file, 0, 400, PileupParams::default()) {
            col.fill_quality_bins(&mut bins);
            prop_assert_eq!(bins.depth(), col.depth());
            prop_assert_eq!(bins.len(), col.distinct_quals());
            prop_assert!((bins.lambda() - col.lambda()).abs() < 1e-12);
            let slice = bins.as_slice();
            prop_assert!(slice.windows(2).all(|w| w[0].0 < w[1].0), "sorted ascending");
            let mut expanded: Vec<f64> = Vec::new();
            for &(p, m) in slice {
                expanded.extend(std::iter::repeat_n(p, m as usize));
            }
            let mut direct = col.error_probs();
            direct.sort_by(f64::total_cmp);
            prop_assert_eq!(expanded, direct);
        }
    }
}
