//! Self-tests for the model-checking scheduler: the detector must detect.
//!
//! Each test drives a tiny hand-written protocol with a known property
//! (mutual exclusion, a known deadlock, a known lost wakeup, ...) and
//! asserts the explorer's verdict — including that failing schedules come
//! with a trace that replays to the same failure.

#![cfg(feature = "model")]

use std::sync::atomic::Ordering;
use std::time::Duration;

use ultravc_sync::model::{Explorer, FailureKind};
use ultravc_sync::{atomic::AtomicU32, thread, Arc, Condvar, Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> ultravc_sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn mutual_exclusion_holds_under_exhaustive_exploration() {
    let report = Explorer::new("mutual_exclusion_holds_under_exhaustive_exploration")
        .preemption_bound(3)
        .explore(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                handles.push(thread::spawn(move || {
                    let mut g = lock(&c);
                    let v = *g;
                    *g = v + 1;
                }));
            }
            for h in handles {
                h.join().expect("model thread panicked");
            }
            assert_eq!(*lock(&counter), 2, "lost update under mutex");
        });
    assert!(report.dfs_complete, "tiny state space must be exhausted");
    assert!(
        report.schedules > 1,
        "must explore more than one interleaving"
    );
}

#[test]
fn distinct_interleavings_are_enumerated() {
    let report = Explorer::new("distinct_interleavings_are_enumerated")
        .preemption_bound(8)
        .explore(|| {
            let a = Arc::new(AtomicU32::new(0));
            let b = Arc::new(a.clone());
            let t1 = {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                    a.fetch_add(1, Ordering::SeqCst);
                })
            };
            let t2 = {
                let a = Arc::clone(&b);
                thread::spawn(move || {
                    a.fetch_add(10, Ordering::SeqCst);
                    a.fetch_add(10, Ordering::SeqCst);
                })
            };
            t1.join().expect("t1");
            t2.join().expect("t2");
            assert_eq!(a.load(Ordering::SeqCst), 22);
        });
    // Two threads with two visible ops each admit C(4,2) = 6 op
    // interleavings; spawn/join points add more. All must be reached.
    assert!(report.dfs_complete);
    assert!(
        report.distinct >= 6,
        "only {} distinct schedules",
        report.distinct
    );
}

#[test]
fn abba_deadlock_is_detected_with_replayable_trace() {
    let build =
        || Explorer::new("abba_deadlock_is_detected_with_replayable_trace").preemption_bound(3);
    let body = || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let t1 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = lock(&a);
                let _gb = lock(&b);
            })
        };
        let t2 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _gb = lock(&b);
                let _ga = lock(&a);
            })
        };
        let _ = t1.join();
        let _ = t2.join();
    };
    let (_, failure) = build().explore_result(body);
    let failure = failure.expect("AB-BA deadlock must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{}", failure.message);
    assert!(
        !failure.trace.is_empty(),
        "deadlock must carry a schedule trace"
    );

    // The recorded trace must reproduce the same failure in one run.
    let (replay_report, replay_failure) = build().replay_trace(&failure.trace).explore_result(body);
    assert_eq!(replay_report.schedules, 1);
    let replay_failure = replay_failure.expect("replayed schedule must fail again");
    assert_eq!(replay_failure.kind, FailureKind::Deadlock);
}

#[test]
fn racing_notify_is_classified_as_lost_wakeup() {
    let pair = || Arc::new((Mutex::new(false), Condvar::new()));
    let (_, failure) = Explorer::new("racing_notify_is_classified_as_lost_wakeup")
        .preemption_bound(3)
        .explore_result(move || {
            let p = pair();
            let notifier = {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    // Bug under test: notify without holding the lock or
                    // setting the predicate — can race the wait entry.
                    p.1.notify_one();
                })
            };
            let waiter = {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let g = lock(&p.0);
                    // Bug under test: unconditional wait (no predicate).
                    let _g = p.1.wait(g).unwrap_or_else(PoisonError::into_inner);
                })
            };
            let _ = notifier.join();
            let _ = waiter.join();
        });
    let failure = failure.expect("lost wakeup must be found");
    assert_eq!(failure.kind, FailureKind::LostWakeup, "{}", failure.message);
    assert!(!failure.trace.is_empty());
}

#[test]
fn timed_wait_only_fires_on_global_stall() {
    let report = Explorer::new("timed_wait_only_fires_on_global_stall")
        .preemption_bound(3)
        .explore(|| {
            let p = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    // Sets the predicate but (deliberately) never notifies:
                    // the waiter can only make progress via its timeout.
                    *lock(&p.0) = true;
                })
            };
            let waiter = {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let mut g = lock(&p.0);
                    while !*g {
                        let (ng, _r) =
                            p.1.wait_timeout(g, Duration::from_millis(1))
                                .unwrap_or_else(PoisonError::into_inner);
                        g = ng;
                    }
                })
            };
            setter.join().expect("setter");
            waiter.join().expect("waiter");
        });
    assert!(
        report.stalls > 0,
        "some schedule must have needed the timeout"
    );
    assert!(report.dfs_complete);
}

#[test]
fn fail_on_stall_flags_protocols_that_need_their_timeout() {
    let (_, failure) = Explorer::new("fail_on_stall_flags_protocols_that_need_their_timeout")
        .preemption_bound(3)
        .fail_on_stall(true)
        .explore_result(|| {
            let p = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    *lock(&p.0) = true;
                })
            };
            let waiter = {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let mut g = lock(&p.0);
                    while !*g {
                        let (ng, _r) =
                            p.1.wait_timeout(g, Duration::from_millis(1))
                                .unwrap_or_else(PoisonError::into_inner);
                        g = ng;
                    }
                })
            };
            let _ = setter.join();
            let _ = waiter.join();
        });
    let failure = failure.expect("stall must be flagged under fail_on_stall");
    assert_eq!(failure.kind, FailureKind::Stall, "{}", failure.message);
}

#[test]
fn leaked_threads_are_flagged_when_forbidden() {
    let (_, failure) = Explorer::new("leaked_threads_are_flagged_when_forbidden")
        .forbid_leaked(true)
        .explore_result(|| {
            let a = Arc::new(AtomicU32::new(0));
            let a2 = Arc::clone(&a);
            // Never joined: some schedule has it still pending at root exit.
            let _h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
        });
    let failure = failure.expect("leak must be found");
    assert_eq!(failure.kind, FailureKind::Leak, "{}", failure.message);
}

#[test]
fn assertion_failures_surface_as_panic_with_trace() {
    let build =
        || Explorer::new("assertion_failures_surface_as_panic_with_trace").preemption_bound(3);
    let body = || {
        let a = Arc::new(AtomicU32::new(0));
        let t1 = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                a.store(1, Ordering::SeqCst);
            })
        };
        let t2 = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                // Fails only under schedules where t1's store lands first.
                assert_eq!(a.load(Ordering::SeqCst), 0, "observed racing store");
            })
        };
        let _ = t1.join();
        let _ = t2.join();
    };
    let (_, failure) = build().explore_result(body);
    let failure = failure.expect("racy assertion must be reachable");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("observed racing store"),
        "{}",
        failure.message
    );

    let (_, replayed) = build().replay_trace(&failure.trace).explore_result(body);
    assert_eq!(replayed.expect("replay must fail").kind, FailureKind::Panic);
}

#[test]
fn rwlock_and_oncelock_protocols_explore_clean() {
    let report = Explorer::new("rwlock_and_oncelock_protocols_explore_clean")
        .preemption_bound(2)
        .explore(|| {
            let rw = Arc::new(ultravc_sync::RwLock::new(0u32));
            let once = Arc::new(ultravc_sync::OnceLock::<u32>::new());
            let writer = {
                let rw = Arc::clone(&rw);
                thread::spawn(move || {
                    *rw.write().unwrap_or_else(PoisonError::into_inner) = 7;
                })
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let rw = Arc::clone(&rw);
                    let once = Arc::clone(&once);
                    thread::spawn(move || {
                        let v = *rw.read().unwrap_or_else(PoisonError::into_inner);
                        assert!(v == 0 || v == 7, "torn read through RwLock");
                        *once.get_or_init(|| v)
                    })
                })
                .collect();
            writer.join().expect("writer");
            let vals: Vec<u32> = readers
                .into_iter()
                .map(|h| h.join().expect("reader"))
                .collect();
            // Decide-once: both readers must agree on the initialized value.
            assert_eq!(vals[0], vals[1], "OnceLock initialized twice");
        });
    assert!(report.schedules > 1);
}
