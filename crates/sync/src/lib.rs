//! # ultravc-sync — synchronization facade with a model-checking mode
//!
//! Every concurrent crate in the workspace imports its sync primitives from
//! here instead of `std::sync`. The crate has two personalities:
//!
//! * **std path (default):** pure re-exports of `std::sync` and
//!   `std::thread`. Zero cost, zero behavior change — the types *are* the
//!   std types, pinned by the workspace's bitwise-identity suites.
//! * **model path (`--features model`):** the same API surface backed by
//!   instrumented primitives driven by a deterministic cooperative
//!   scheduler ([`model::Explorer`]). Every lock, condvar operation,
//!   atomic access, spawn, and join becomes a scheduling point; the
//!   explorer enumerates thread interleavings (bounded-exhaustive DFS with
//!   a preemption bound, then seeded random sampling), detecting
//!   deadlocks, lost wakeups, stalls, and leaked threads, and printing a
//!   replayable schedule trace on failure.
//!
//! Even on the model path, code that runs *outside* an active exploration
//! (ordinary tests, binaries) transparently delegates to `std`: the
//! instrumented types only intercept operations on threads registered
//! with a running [`model::Explorer`].
//!
//! ## Facade usage rules
//!
//! * Import `Mutex`/`Condvar`/`RwLock`/`OnceLock` and the `atomic` module
//!   from `ultravc_sync`, never from `std::sync`. `Arc`, `mpsc`, and the
//!   poison types stay std on both paths (re-exported here for one-stop
//!   imports).
//! * Spawn long-lived workers with `ultravc_sync::thread::spawn`.
//!   Scoped threads (`std::thread::scope`) borrow stack data and cannot be
//!   modeled; code that needs them (e.g. `parfor::team`) keeps using std
//!   directly and is exercised by the model suite through its lock-free
//!   protocol objects instead.
//! * Don't block a model thread on anything the scheduler can't see
//!   (channel `recv`, real I/O, real sleeps) inside a model test.

#![forbid(unsafe_code)]

#[cfg(feature = "model")]
pub mod model;

// ---------------------------------------------------------------------------
// std path: pure re-exports.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "model"))]
pub use std::sync::{
    atomic, mpsc, Arc, Barrier, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError,
    RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult, WaitTimeoutResult,
    Weak,
};

/// Thread spawning and management (std path: re-export of `std::thread`).
#[cfg(not(feature = "model"))]
pub mod thread {
    pub use std::thread::*;
}

// ---------------------------------------------------------------------------
// model path: instrumented primitives + std types that stay uninstrumented.
// ---------------------------------------------------------------------------

#[cfg(feature = "model")]
pub use std::sync::{
    mpsc, Arc, Barrier, LockResult, PoisonError, TryLockError, TryLockResult, Weak,
};

#[cfg(feature = "model")]
pub use model::prims::{
    Condvar, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

/// Atomic types (model path: instrumented, sequentially consistent).
#[cfg(feature = "model")]
pub mod atomic {
    pub use crate::model::prims::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

/// Thread spawning and management (model path: instrumented spawn/join).
#[cfg(feature = "model")]
pub mod thread {
    pub use crate::model::prims::{sleep, spawn, yield_now, Builder, JoinHandle};
    // Scoped threads and introspection helpers stay std: they are only used
    // on paths that the model suite does not drive (see crate docs).
    pub use std::thread::{available_parallelism, scope, Scope, ScopedJoinHandle};
}
